//! The Navy: restructuring a class hierarchy with virtual classes.
//!
//! Reproduces §4's running example: generalization (`class Merchant_Vessel
//! includes Tanker, Trawler`), the inferred insertion of virtual classes
//! *into the middle* of the hierarchy, upward inheritance of `Cargo`
//! (§4.3), behavioral generalization (`like` — §4.1), and schizophrenia
//! with its resolution policies.
//!
//! Run with: `cargo run --example navy`

use objects_and_views::prelude::*;

fn main() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Navy;
        class Ship type [Name: string, Tonnage: integer];
        class Tanker inherits Ship type [Cargo: string, Price: float, Discount: integer];
        class Trawler inherits Ship type [Cargo: string];
        class Frigate inherits Ship type [Armament: string];
        class Cruiser inherits Ship type [Armament: string];
        class For_Sale_Spec type [Price: float, Discount: integer];
        object #1 in Tanker value [Name: "Erika", Tonnage: 37000, Cargo: "oil",
                                   Price: 1000000.0, Discount: 15];
        object #2 in Trawler value [Name: "Nellie", Tonnage: 900, Cargo: "fish"];
        object #3 in Frigate value [Name: "Surprise", Tonnage: 1200, Armament: "cannon"];
        object #4 in Cruiser value [Name: "Aurora", Tonnage: 6700, Armament: "guns"];
        "#,
    )
    .expect("navy loads");

    let view = ViewDef::from_script(
        r#"
        create view Fleet;
        import all classes from database Navy;
        class Merchant_Vessel includes Tanker, Trawler;
        class Military_Vessel includes Frigate, Cruiser;
        class Boat includes Merchant_Vessel, Military_Vessel;
        class On_Sale includes like For_Sale_Spec;
        attribute Description in class Merchant_Vessel has value
            self.Name ++ " carrying " ++ self.Cargo;
        attribute Description in class Military_Vessel has value
            self.Name ++ " armed with " ++ self.Armament;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();

    println!("== inferred hierarchy (rules R1/R2, §4.2) ==");
    for class in ["Merchant_Vessel", "Military_Vessel", "Boat", "On_Sale"] {
        println!(
            "{class:18} parents: {:?}",
            view.parents_of(sym(class)).unwrap()
        );
    }
    println!(
        "Tanker ⊑ Merchant_Vessel: {}",
        view.is_subclass_by_name(sym("Tanker"), sym("Merchant_Vessel"))
            .unwrap()
    );

    println!("\n== populations ==");
    for class in ["Merchant_Vessel", "Military_Vessel", "Boat", "On_Sale"] {
        println!(
            "{class:18} {}",
            view.query(&format!("select V.Name from V in {class}"))
                .unwrap()
        );
    }

    println!("\n== upward inheritance (§4.3): Cargo on Merchant_Vessel ==");
    println!(
        "cargos: {}",
        view.query("select V.Cargo from V in Merchant_Vessel")
            .unwrap()
    );
    println!(
        "Armament on Merchant_Vessel: {:?}",
        view.query("select V.Armament from V in Merchant_Vessel")
            .map_err(|e| e.to_string())
    );

    println!("\n== overloaded virtual attribute Description ==");
    println!(
        "{}",
        view.query("select B.Description from B in Boat").unwrap()
    );

    // Schizophrenia: Erika is both a Merchant_Vessel and (say) in a virtual
    // class of heavy ships that also defines Description.
    let overlapping = ViewDef::from_script(
        r#"
        create view Conflicted;
        import all classes from database Navy;
        class Merchant_Vessel includes Tanker, Trawler;
        class Heavy includes (select S from Ship where S.Tonnage > 10000);
        attribute Description in class Merchant_Vessel has value "merchant";
        attribute Description in class Heavy has value "heavy";
        "#,
    )
    .unwrap();
    println!("\n== schizophrenia (§4.3): Erika is merchant AND heavy ==");
    let strict = overlapping
        .binder(&sys)
        .options(ViewOptions::builder().policy(ConflictPolicy::Error).build())
        .bind()
        .unwrap();
    println!(
        "strict policy: {}",
        strict
            .query(r#"select the S.Description from S in Ship where S.Name = "Erika""#)
            .map(|v| v.to_string())
            .unwrap_or_else(|e| format!("rejected: {e}"))
    );
    let prioritized = overlapping
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .policy(ConflictPolicy::Priority(vec![sym("Heavy")]))
                .build(),
        )
        .bind()
        .unwrap();
    println!(
        "priority(Heavy): {}",
        prioritized
            .query(r#"select the S.Description from S in Ship where S.Name = "Erika""#)
            .unwrap()
    );
}
