//! A tour of the performance machinery: materialization policies,
//! incremental maintenance, and index pushdown.
//!
//! These are this repository's extensions around the paper's §4.2
//! "Implementation Issues" and §6's remark that materialized views
//! "acquire a new dimension in the context of objects."
//!
//! Run with: `cargo run --release --example performance_tour`

use std::time::Instant;

use objects_and_views::prelude::*;

fn time<R>(label: &str, mut f: impl FnMut() -> R) -> R {
    // One warmup, then a measured run.
    f();
    let start = Instant::now();
    let r = f();
    println!("{label:<46} {:>12.1?}", start.elapsed());
    r
}

fn main() {
    let n = 50_000;
    println!("people database with {n} objects\n");

    let build = |population| {
        let mut sys = objects_and_views::oodb::System::new();
        objects_and_views::query::execute_script(
            &mut sys,
            "database Staff; class Person type [Name: string, Age: integer, City: string];",
        )
        .unwrap();
        {
            let db = sys.database(sym("Staff")).unwrap();
            let mut db = db.write();
            let person = db.schema.class_by_name(sym("Person")).unwrap();
            for i in 0..n {
                db.create_object(
                    person,
                    Value::tuple([
                        ("Name", Value::str(&format!("p{i}"))),
                        ("Age", Value::Int((i % 100) as i64)),
                        (
                            "City",
                            Value::str(["London", "Paris", "Roma", "Oslo"][i % 4]),
                        ),
                    ]),
                )
                .unwrap();
            }
        }
        let view = ViewDef::from_script(
            r#"
            create view V;
            import all classes from database Staff;
            class Adult includes (select P from Person where P.Age >= 21);
            class Londoner includes (select P from Person where P.City = "London");
            "#,
        )
        .unwrap()
        .binder(&sys)
        .options(ViewOptions::builder().population(population).build())
        .bind()
        .unwrap();
        (sys, view)
    };

    println!("== materialization policies (Adult population) ==");
    let (_sys, recompute) = build(Materialization::AlwaysRecompute);
    time("AlwaysRecompute: extent", || {
        recompute.extent_of(sym("Adult")).unwrap().len()
    });
    let (_sys, cached) = build(Materialization::Cached);
    cached.extent_of(sym("Adult")).unwrap();
    time("Cached: repeated extent", || {
        cached.extent_of(sym("Adult")).unwrap().len()
    });

    println!("\n== update-heavy access: cache invalidation vs delta maintenance ==");
    let update_then_read =
        |sys: &objects_and_views::oodb::System, view: &objects_and_views::views::View, i: i64| {
            let db = sys.database(sym("Staff")).unwrap();
            let victim = {
                let d = db.read();
                let person = d.schema.class_by_name(sym("Person")).unwrap();
                d.deep_extent(person)[0]
            };
            db.write()
                .set_attr(victim, sym("Age"), Value::Int(i % 100))
                .unwrap();
            view.extent_of(sym("Adult")).unwrap().len()
        };
    let (sys_c, cached) = build(Materialization::Cached);
    cached.extent_of(sym("Adult")).unwrap();
    let mut i = 0;
    time("Cached: update + extent (full recompute)", || {
        i += 1;
        update_then_read(&sys_c, &cached, i)
    });
    let (sys_i, incremental) = build(Materialization::Incremental);
    incremental.extent_of(sym("Adult")).unwrap();
    time("Incremental: update + extent (delta)", || {
        i += 1;
        update_then_read(&sys_i, &incremental, i)
    });

    println!("\n== index pushdown (Londoner population, 1/4 selectivity) ==");
    let (sys_s, scan_view) = build(Materialization::AlwaysRecompute);
    time("scan: extent", || {
        scan_view.extent_of(sym("Londoner")).unwrap().len()
    });
    {
        let db = sys_s.database(sym("Staff")).unwrap();
        let mut db = db.write();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        db.create_index(person, sym("City")).unwrap();
    }
    time("indexed: extent (same view, index added)", || {
        scan_view.extent_of(sym("Londoner")).unwrap().len()
    });
}
