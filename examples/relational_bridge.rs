//! An object-oriented view of a relational database.
//!
//! The first application the paper lists for imaginary objects (§5):
//! relation rows become imaginary objects with stable identity. Built on
//! the `ov-relational` substrate and its bridge.
//!
//! Run with: `cargo run --example relational_bridge`

use objects_and_views::prelude::*;

fn main() {
    // 1. A small relational database.
    let mut rdb = RelationalDb::new(sym("Payroll"));
    rdb.create_relation(Relation::new(
        sym("Emp"),
        vec![
            (sym("EName"), Type::Str),
            (sym("Dept"), Type::Str),
            (sym("Salary"), Type::Int),
        ],
    ))
    .unwrap();
    rdb.create_relation(Relation::new(
        sym("Dept"),
        vec![(sym("DName"), Type::Str), (sym("Head"), Type::Str)],
    ))
    .unwrap();
    for (n, d, s) in [("Tony", "DB", 100), ("Ann", "OS", 120), ("Zoe", "DB", 90)] {
        rdb.insert(
            sym("Emp"),
            vec![Value::str(n), Value::str(d), Value::Int(s)],
        )
        .unwrap();
    }
    rdb.insert(sym("Dept"), vec![Value::str("DB"), Value::str("Ann")])
        .unwrap();

    // 2. Stage it into the object world and generate the view.
    let (sys, _) = bridge::stage(&rdb).unwrap();
    println!(
        "== generated view DDL ==\n{}",
        bridge::view_script(&rdb).unwrap()
    );
    let view = bridge::object_view(&rdb, &sys).unwrap();

    // 3. Rows are now imaginary objects queryable in the object language.
    println!("== queries over imaginary objects ==");
    println!(
        "well-paid: {}",
        view.query("select E.EName from E in Emp where E.Salary > 95")
            .unwrap()
    );
    println!(
        "who works for Ann: {}",
        view.query(
            "select E.EName from E in Emp, D in Dept \
             where E.Dept = D.DName and D.Head = \"Ann\""
        )
        .unwrap()
    );
    let before = view.extent_of(sym("Emp")).unwrap();
    println!("Emp object oids: {before:?} (all imaginary)");

    // 4. Identity is stable across re-staging: add a row, refresh.
    rdb.insert(
        sym("Emp"),
        vec![Value::str("Raj"), Value::str("OS"), Value::Int(105)],
    )
    .unwrap();
    bridge::restage(&rdb, &sys).unwrap();
    let after = view.extent_of(sym("Emp")).unwrap();
    println!("\n== after inserting Raj and re-staging ==");
    println!("Emp object oids: {after:?}");
    println!(
        "pre-existing rows kept their oids: {}",
        before.iter().all(|o| after.contains(o))
    );
}
