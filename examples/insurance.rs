//! Example 6: a poorly designed view, and its fix.
//!
//! The paper's cautionary tale (§5.1): making `Address` a *core* attribute
//! of an imaginary `Client` class ties client identity to the address — so
//! when Maggy moves, "as far as the system is concerned, Maggy before
//! moving and after moving are two different clients." The fix is to make
//! `Address` a virtual attribute instead.
//!
//! Run with: `cargo run --example insurance`

use objects_and_views::prelude::*;

fn main() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Insurance;
        class Policy type [Policy_Number: integer, Coverage: string, Cost: integer,
                           PName: string, PAddress: string, PAge: integer, SS: integer];
        object #1 in Policy value [Policy_Number: 1, Coverage: "life", Cost: 120,
                                   PName: "Maggy", PAddress: "10 Downing St",
                                   PAge: 66, SS: 1111];
        object #2 in Policy value [Policy_Number: 2, Coverage: "home", Cost: 80,
                                   PName: "Denis", PAddress: "10 Downing St",
                                   PAge: 70, SS: 2222];
        name maggys_policy = #1;
        "#,
    )
    .expect("insurance loads");

    // The paper's poorly designed view: Address is a core attribute.
    let poor = ViewDef::from_script(
        r#"
        create view My_Clients;
        import all classes from database Insurance;
        class Client includes imaginary
            (select [CName: P.PName, CAge: P.PAge, SS: P.SS,
                     CAddress: P.PAddress, Policy: P]
             from P in Policy);
        attribute Person in class Policy has value
            (select the C from C in Client where C.Policy = self);
        hide attributes PName, PAge, PAddress, SS in class Policy;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();

    // The fixed design: Address is a virtual attribute of Client.
    let fixed = ViewDef::from_script(
        r#"
        create view My_Clients_Fixed;
        import all classes from database Insurance;
        class Client includes imaginary
            (select [CName: P.PName, SS: P.SS, Policy: P] from P in Policy);
        attribute CAddress in class Client has value self.Policy.PAddress;
        attribute CAge in class Client has value self.Policy.PAge;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();

    let show = |label: &str, view: &objects_and_views::views::View| {
        let clients = view.extent_of(sym("Client")).unwrap();
        println!(
            "{label}: {} client objects, oids {:?}, identity-table size {}",
            clients.len(),
            clients,
            view.identity_table_len(sym("Client"))
        );
    };

    println!("== before the move ==");
    show("poor ", &poor);
    show("fixed", &fixed);

    // Maggy moves: update the base Policy relation.
    {
        let ins = sys.database(sym("Insurance")).unwrap();
        let mut ins = ins.write();
        let p = ins.named(sym("maggys_policy")).unwrap();
        ins.set_attr(p, sym("PAddress"), Value::str("Hambledon Place"))
            .unwrap();
    }

    println!("\n== after Maggy's address is updated ==");
    show("poor ", &poor);
    show("fixed", &fixed);
    println!(
        "\npoor view: the identity table grew — the old Maggy-client is gone and a\n\
         new client object exists: \"Maggy before moving and after moving are two\n\
         different clients.\" (§5.1, Example 6)"
    );
    println!(
        "fixed view: same client objects; the virtual CAddress now reads {}",
        fixed
            .query(r#"select the C.CAddress from C in Client where C.CName = "Maggy""#)
            .unwrap()
    );
}
