//! Imaginary objects: families over people, addresses as shared objects.
//!
//! Reproduces §5 end to end: the `Family` imaginary class, the crucial
//! "two seemingly equivalent queries" of §5.1 (stable identity vs. the
//! naive fresh-oid semantics), and Example 5's value→object conversion
//! with sharing.
//!
//! Run with: `cargo run --example families`

use objects_and_views::prelude::*;

fn main() {
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Registry;
        class Person type [Name: string, Age: integer, Sex: string,
                           City: string, Street: string,
                           Spouse: Person, Children: {Person}, Kids: integer];
        object #1 in Person value [Name: "Denis", Age: 24, Sex: "male", Spouse: #2,
                                   City: "London", Street: "10 Downing",
                                   Children: {#5}, Kids: 6];
        object #2 in Person value [Name: "Maggy", Age: 66, Sex: "female", Spouse: #1,
                                   City: "London", Street: "10 Downing"];
        object #3 in Person value [Name: "Ron",   Age: 50, Sex: "male", Spouse: #4,
                                   City: "Washington", Street: "Penn Ave", Kids: 7];
        object #4 in Person value [Name: "Nancy", Age: 48, Sex: "female", Spouse: #3,
                                   City: "Washington", Street: "Penn Ave"];
        object #5 in Person value [Name: "Mark",  Age: 12, Sex: "male",
                                   City: "London", Street: "10 Downing"];
        name maggy = #2;
        name denis = #1;
        "#,
    )
    .expect("registry loads");

    // --- §5: the Family imaginary class --------------------------------
    let families = ViewDef::from_script(
        r#"
        create view Families;
        import all classes from database Registry;
        class Family includes imaginary
            (select [Husband: H, Wife: H.Spouse, Size: H.Kids]
             from H in Person where H.Sex = "male" and H.Spouse != null);
        attribute Children in class Family has value
            (select C from C in self.Husband.Children);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();

    println!("== families as imaginary objects (§5) ==");
    println!(
        "families: {}",
        families
            .query("select [H: F.Husband.Name, W: F.Wife.Name] from F in Family")
            .unwrap()
    );
    println!(
        "children of the Downing St family: {}",
        families
            .query(r#"select C.Name from F in Family, C in F.Children"#)
            .unwrap()
    );

    // --- §5.1: the two "seemingly equivalent" queries -------------------
    let flat = "select F from F in Family where F.Size > 5 and F.Husband.Age < 25";
    let nested = "select F from F in Family where F.Size > 5 \
                  and F in (select G from G in Family where G.Husband.Age < 25)";
    println!("\n== §5.1: identity across invocations ==");
    println!(
        "flat query:   {} object(s)",
        families.query(flat).unwrap().as_set().unwrap().len()
    );
    println!(
        "nested query: {} object(s)  (same objects — identity tables at work)",
        families.query(nested).unwrap().as_set().unwrap().len()
    );

    // The naive implementation the paper warns about.
    let naive = ViewDef::from_script(
        r#"
        create view Naive_Families;
        import all classes from database Registry;
        class Family includes imaginary
            (select [Husband: H, Wife: H.Spouse, Size: H.Kids]
             from H in Person where H.Sex = "male" and H.Spouse != null);
        "#,
    )
    .unwrap()
    .binder(&sys)
    .options(
        ViewOptions::builder()
            .identity_mode(IdentityMode::Fresh)
            .population(Population::AlwaysRecompute)
            .build(),
    )
    .bind()
    .unwrap();
    println!(
        "nested query under FRESH oids: {} object(s)  (\"we may obtain an empty set\")",
        naive.query(nested).unwrap().as_set().unwrap().len()
    );

    // --- Example 5: values become shared objects ------------------------
    let addresses = ViewDef::from_script(
        r#"
        create view Value_to_Object;
        import all classes from database Registry;
        class Address includes imaginary
            (select [City: P.City, Street: P.Street] from P in Person);
        attribute Location in class Person has value
            (select the A from A in Address
             where A.City = self.City and A.Street = self.Street);
        hide attributes City, Street in class Person;
        "#,
    )
    .unwrap()
    .binder(&sys)
    .bind()
    .unwrap();
    println!("\n== Example 5: addresses as shared objects ==");
    println!(
        "distinct address objects: {}",
        addresses.query("count(Address)").unwrap()
    );
    let m = addresses.query("maggy.Location").unwrap();
    let d = addresses.query("denis.Location").unwrap();
    println!(
        "maggy.Location = {m}  denis.Location = {d}  (shared: {})",
        m == d
    );

    // Maggy moves (base update); her address becomes a *new* object, the
    // old one survives for Denis.
    {
        let reg = sys.database(sym("Registry")).unwrap();
        let mut reg = reg.write();
        let maggy = reg.named(sym("maggy")).unwrap();
        reg.set_attr(maggy, sym("City"), Value::str("Dulwich"))
            .unwrap();
        reg.set_attr(maggy, sym("Street"), Value::str("Hambledon Place"))
            .unwrap();
    }
    println!("\nafter Maggy moves:");
    println!(
        "maggy.Location = {}  (new object)",
        addresses.query("maggy.Location").unwrap()
    );
    println!(
        "denis.Location = {}  (the old address object survives)",
        addresses.query("denis.Location").unwrap()
    );
    println!(
        "distinct address objects: {}",
        addresses.query("count(Address)").unwrap()
    );
}
