//! Quickstart: build a database, define a view, query it.
//!
//! Covers the basics of the paper in one sitting: schema + data loading
//! through the DDL, a virtual attribute (§2 Example 1), an `import`/`hide`
//! view (§3), and a virtual class populated by specialization (§4.1).
//!
//! Run with: `cargo run --example quickstart`

use objects_and_views::prelude::*;

fn main() {
    // 1. A base database, loaded from DDL text.
    let mut sys = System::new();
    execute_script(
        &mut sys,
        r#"
        database Staff;
        class Person type [Name: string, Age: integer,
                           City: string, Street: string, Zip_Code: string];
        class Employee inherits Person type [Salary: integer];
        object #1 in Person value [Name: "Maggy", Age: 66,
                                   City: "London", Street: "10 Downing", Zip_Code: "SW1"];
        object #2 in Person value [Name: "Mark", Age: 12,
                                   City: "London", Street: "10 Downing", Zip_Code: "SW1"];
        object #3 in Employee value [Name: "Tony", Age: 30, Salary: 50000,
                                     City: "Paris", Street: "Rivoli", Zip_Code: "75001"];
        name maggy = #1;
        "#,
    )
    .expect("base database loads");

    // 2. A view: merge the address components into one virtual attribute
    //    (paper §2, Example 1), hide salaries (§3), and carve out the
    //    virtual class Adult (§4.1).
    let view = ViewDef::from_script(
        r#"
        create view Front_Desk;
        import all classes from database Staff;
        attribute Address in class Person has value
            [City: self.City, Street: self.Street, Zip_Code: self.Zip_Code];
        class Adult includes (select P from Person where P.Age >= 21);
        hide attribute Salary in class Employee;
        "#,
    )
    .expect("view definition parses")
    .binder(&sys)
    .bind()
    .expect("view binds");

    // 3. Query the view exactly like a database.
    println!("== the same dot notation for stored and computed attributes ==");
    println!("maggy.City    = {}", view.query("maggy.City").unwrap());
    println!("maggy.Address = {}", view.query("maggy.Address").unwrap());

    println!("\n== the virtual class Adult, inferred below Person ==");
    println!(
        "Adult's inferred superclasses: {:?}",
        view.parents_of(sym("Adult")).unwrap()
    );
    println!(
        "adults: {}",
        view.query("select A.Name from A in Adult").unwrap()
    );

    println!("\n== hiding Salary in Employee (and all its subclasses) ==");
    match view.query("select E.Salary from E in Employee") {
        Err(e) => println!("as expected, rejected: {e}"),
        Ok(v) => println!("UNEXPECTED: {v}"),
    }

    // 4. Base updates flow through: Mark grows up.
    let staff = sys.database(sym("Staff")).unwrap();
    {
        let mut staff = staff.write();
        let mark = staff
            .deep_extent(staff.schema.class_by_name(sym("Person")).unwrap())
            .into_iter()
            .find(|&o| {
                staff.stored_attr(o, sym("Name")).unwrap()
                    == &objects_and_views::oodb::Value::str("Mark")
            })
            .unwrap();
        staff
            .set_attr(mark, sym("Age"), objects_and_views::oodb::Value::Int(21))
            .unwrap();
    }
    println!("\n== after Mark turns 21, the view tracks the base ==");
    println!(
        "adults: {}",
        view.query("select A.Name from A in Adult").unwrap()
    );
}
