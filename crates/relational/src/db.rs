//! A named, versioned collection of relations.

use std::collections::BTreeMap;

use ov_oodb::{Symbol, Value};

use crate::relation::{RelError, Relation};

/// A relational database: named relations plus a mutation counter (the
/// bridge uses the counter to know when to re-stage).
#[derive(Clone, Debug)]
pub struct RelationalDb {
    /// The database's name.
    pub name: Symbol,
    relations: BTreeMap<Symbol, Relation>,
    version: u64,
}

impl RelationalDb {
    /// An empty relational database called `name`.
    pub fn new(name: Symbol) -> RelationalDb {
        RelationalDb {
            name,
            relations: BTreeMap::new(),
            version: 0,
        }
    }

    /// Registers a relation (must be in first normal form).
    pub fn create_relation(&mut self, relation: Relation) -> Result<(), RelError> {
        relation.check_first_normal_form()?;
        if self.relations.contains_key(&relation.name) {
            return Err(RelError::DuplicateRelation(relation.name));
        }
        self.relations.insert(relation.name, relation);
        self.version += 1;
        Ok(())
    }

    /// The relation called `name`.
    pub fn relation(&self, name: Symbol) -> Result<&Relation, RelError> {
        self.relations
            .get(&name)
            .ok_or(RelError::UnknownRelation(name))
    }

    /// Mutable access; bumps the version.
    pub fn relation_mut(&mut self, name: Symbol) -> Result<&mut Relation, RelError> {
        self.version += 1;
        self.relations
            .get_mut(&name)
            .ok_or(RelError::UnknownRelation(name))
    }

    /// Inserts a row into `relation`.
    pub fn insert(&mut self, relation: Symbol, row: Vec<Value>) -> Result<(), RelError> {
        self.relation_mut(relation)?.insert(row)
    }

    /// All relation names, sorted.
    pub fn relation_names(&self) -> Vec<Symbol> {
        self.relations.keys().copied().collect()
    }

    /// Mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::{sym, Type};

    #[test]
    fn create_and_query_relations() {
        let mut db = RelationalDb::new(sym("R"));
        db.create_relation(Relation::new(sym("T"), vec![(sym("X"), Type::Int)]))
            .unwrap();
        db.insert(sym("T"), vec![Value::Int(1)]).unwrap();
        assert_eq!(db.relation(sym("T")).unwrap().len(), 1);
        assert!(db.relation(sym("Nope")).is_err());
    }

    #[test]
    fn duplicate_relations_rejected() {
        let mut db = RelationalDb::new(sym("R"));
        db.create_relation(Relation::new(sym("T"), vec![])).unwrap();
        assert!(matches!(
            db.create_relation(Relation::new(sym("T"), vec![])),
            Err(RelError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn versions_bump_on_mutation() {
        let mut db = RelationalDb::new(sym("R"));
        let v0 = db.version();
        db.create_relation(Relation::new(sym("T"), vec![(sym("X"), Type::Int)]))
            .unwrap();
        assert!(db.version() > v0);
        let v1 = db.version();
        db.insert(sym("T"), vec![Value::Int(1)]).unwrap();
        assert!(db.version() > v1);
    }

    #[test]
    fn non_1nf_relations_rejected() {
        let mut db = RelationalDb::new(sym("R"));
        assert!(db
            .create_relation(Relation::new(
                sym("Bad"),
                vec![(sym("S"), Type::set(Type::Int))],
            ))
            .is_err());
    }
}
