//! Relations: typed schemas and tuple storage.

use std::fmt;

use ov_oodb::{Symbol, Type, Value};

/// Errors from the relational layer.
#[derive(Clone, PartialEq, Debug)]
pub enum RelError {
    /// No relation with this name.
    UnknownRelation(Symbol),
    /// A relation with this name already exists.
    DuplicateRelation(Symbol),
    /// The relation has no such column.
    UnknownColumn {
        /// The relation.
        relation: Symbol,
        /// The missing column.
        column: Symbol,
    },
    /// Wrong number of values for the relation's arity.
    Arity {
        /// The relation.
        relation: Symbol,
        /// Its column count.
        expected: usize,
        /// The number of values supplied.
        got: usize,
    },
    /// A value did not inhabit its column type.
    TypeMismatch {
        /// The relation.
        relation: Symbol,
        /// The offending column.
        column: Symbol,
        /// The declared type.
        expected: String,
        /// The offending value's kind.
        found: String,
    },
    /// Only atomic column types are allowed (first normal form).
    NonAtomicColumn {
        /// The relation.
        relation: Symbol,
        /// The non-atomic column.
        column: Symbol,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            RelError::DuplicateRelation(r) => write!(f, "relation `{r}` already exists"),
            RelError::UnknownColumn { relation, column } => {
                write!(f, "relation `{relation}` has no column `{column}`")
            }
            RelError::Arity {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, got {got} values"
            ),
            RelError::TypeMismatch {
                relation,
                column,
                expected,
                found,
            } => write!(
                f,
                "column `{column}` of `{relation}`: expected {expected}, found {found}"
            ),
            RelError::NonAtomicColumn { relation, column } => write!(
                f,
                "column `{column}` of `{relation}` must have an atomic type (1NF)"
            ),
        }
    }
}

impl std::error::Error for RelError {}

/// A named relation: a column schema plus a multiset of rows.
#[derive(Clone, Debug)]
pub struct Relation {
    /// The relation's name.
    pub name: Symbol,
    columns: Vec<(Symbol, Type)>,
    rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Creates an empty relation with the given columns.
    pub fn new(name: Symbol, columns: Vec<(Symbol, Type)>) -> Relation {
        Relation {
            name,
            columns,
            rows: Vec::new(),
        }
    }

    /// Column names and types, in declaration order.
    pub fn columns(&self) -> &[(Symbol, Type)] {
        &self.columns
    }

    /// Validates that all column types are atomic (first normal form).
    pub fn check_first_normal_form(&self) -> Result<(), RelError> {
        for (col, ty) in &self.columns {
            if !matches!(ty, Type::Bool | Type::Int | Type::Float | Type::Str) {
                return Err(RelError::NonAtomicColumn {
                    relation: self.name,
                    column: *col,
                });
            }
        }
        Ok(())
    }

    /// The index of column `name`.
    pub fn column_index(&self, name: Symbol) -> Result<usize, RelError> {
        self.columns
            .iter()
            .position(|(c, _)| *c == name)
            .ok_or(RelError::UnknownColumn {
                relation: self.name,
                column: name,
            })
    }

    fn check_row(&self, row: &[Value]) -> Result<(), RelError> {
        if row.len() != self.columns.len() {
            return Err(RelError::Arity {
                relation: self.name,
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for ((col, ty), v) in self.columns.iter().zip(row) {
            let ok = matches!(
                (v, ty),
                (Value::Null, _)
                    | (Value::Bool(_), Type::Bool)
                    | (Value::Int(_), Type::Int)
                    | (Value::Int(_), Type::Float)
                    | (Value::Float(_), Type::Float)
                    | (Value::Str(_), Type::Str)
            );
            if !ok {
                return Err(RelError::TypeMismatch {
                    relation: self.name,
                    column: *col,
                    expected: format!("{ty:?}"),
                    found: v.kind().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Appends a row (typechecked).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), RelError> {
        self.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates all rows.
    pub fn scan(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Rows satisfying `pred`.
    pub fn select<'a>(
        &'a self,
        pred: impl Fn(&[Value]) -> bool + 'a,
    ) -> impl Iterator<Item = &'a [Value]> {
        self.scan().filter(move |r| pred(r))
    }

    /// Projects rows onto the named columns.
    pub fn project(&self, cols: &[Symbol]) -> Result<Vec<Vec<Value>>, RelError> {
        let idx: Vec<usize> = cols
            .iter()
            .map(|&c| self.column_index(c))
            .collect::<Result<_, _>>()?;
        Ok(self
            .scan()
            .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
            .collect())
    }

    /// Updates, in place, every row satisfying `pred`, setting `column` to
    /// `value`. Returns the number of rows changed.
    pub fn update(
        &mut self,
        pred: impl Fn(&[Value]) -> bool,
        column: Symbol,
        value: Value,
    ) -> Result<usize, RelError> {
        let i = self.column_index(column)?;
        // Type-check once against a probe row shape.
        let probe: Vec<Value> = self
            .columns
            .iter()
            .enumerate()
            .map(|(j, _)| if j == i { value.clone() } else { Value::Null })
            .collect();
        self.check_row(&probe)?;
        let mut n = 0;
        for row in &mut self.rows {
            if pred(row) {
                row[i] = value.clone();
                n += 1;
            }
        }
        Ok(n)
    }

    /// Deletes every row satisfying `pred`; returns the number removed.
    pub fn delete(&mut self, pred: impl Fn(&[Value]) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        before - self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    fn emp() -> Relation {
        let mut r = Relation::new(
            sym("Emp"),
            vec![
                (sym("Name"), Type::Str),
                (sym("Dept"), Type::Str),
                (sym("Salary"), Type::Int),
            ],
        );
        r.insert(vec![Value::str("Tony"), Value::str("DB"), Value::Int(100)])
            .unwrap();
        r.insert(vec![Value::str("Ann"), Value::str("OS"), Value::Int(120)])
            .unwrap();
        r
    }

    #[test]
    fn insert_scan_roundtrip() {
        let r = emp();
        assert_eq!(r.len(), 2);
        assert_eq!(r.scan().count(), 2);
    }

    #[test]
    fn arity_and_type_checked() {
        let mut r = emp();
        assert!(matches!(
            r.insert(vec![Value::str("X")]),
            Err(RelError::Arity { .. })
        ));
        assert!(matches!(
            r.insert(vec![Value::Int(1), Value::str("D"), Value::Int(1)]),
            Err(RelError::TypeMismatch { .. })
        ));
        // Nulls are allowed anywhere.
        r.insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
    }

    #[test]
    fn select_and_project() {
        let r = emp();
        let rich: Vec<_> = r.select(|row| row[2] >= Value::Int(110)).collect();
        assert_eq!(rich.len(), 1);
        let names = r.project(&[sym("Name")]).unwrap();
        assert_eq!(
            names,
            vec![vec![Value::str("Tony")], vec![Value::str("Ann")]]
        );
        assert!(r.project(&[sym("Ghost")]).is_err());
    }

    #[test]
    fn update_and_delete() {
        let mut r = emp();
        let n = r
            .update(
                |row| row[1] == Value::str("DB"),
                sym("Salary"),
                Value::Int(150),
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(r.scan().next().unwrap()[2], Value::Int(150));
        assert_eq!(r.delete(|row| row[0] == Value::str("Ann")), 1);
        assert_eq!(r.len(), 1);
        // Update with a badly-typed value is rejected before mutating.
        assert!(r
            .update(|_| true, sym("Salary"), Value::str("lots"))
            .is_err());
    }

    #[test]
    fn first_normal_form_check() {
        let r = Relation::new(sym("Bad"), vec![(sym("Kids"), Type::set(Type::Str))]);
        assert!(matches!(
            r.check_first_normal_form(),
            Err(RelError::NonAtomicColumn { .. })
        ));
        assert!(emp().check_first_normal_form().is_ok());
    }
}
