//! # ov-relational — a minimal relational engine and its object-view bridge
//!
//! The first application the paper lists for imaginary objects (§5) is
//! "creating an object-oriented view of a relational database. Typically,
//! this means creating new objects from database tuples." This crate
//! provides the relational side of that experiment:
//!
//! * [`Relation`] / [`RelationalDb`] — a small, typed, versioned relational
//!   store (schemas, tuples, scan/select/project/update);
//! * [`bridge`] — machinery that stages a relational database into the
//!   object world and generates the view DDL that turns each relation's
//!   tuples into **imaginary objects** with stable identity.
//!
//! ```
//! use ov_oodb::{sym, Value};
//! use ov_relational::{Relation, RelationalDb, bridge};
//! use ov_oodb::Type;
//!
//! let mut rdb = RelationalDb::new(sym("Payroll"));
//! rdb.create_relation(Relation::new(
//!     sym("Emp"),
//!     vec![(sym("Name"), Type::Str), (sym("Dept"), Type::Str)],
//! )).unwrap();
//! rdb.insert(sym("Emp"), vec![Value::str("Tony"), Value::str("DB")]).unwrap();
//!
//! let (sys, _) = bridge::stage(&rdb).unwrap();
//! let view = bridge::object_view(&rdb, &sys).unwrap();
//! let names = view.query("select E.Name from E in Emp").unwrap();
//! assert_eq!(names, Value::set([Value::str("Tony")]));
//! ```

#![warn(missing_docs)]

pub mod bridge;
pub mod db;
pub mod relation;

pub use db::RelationalDb;
pub use relation::{RelError, Relation};
