//! The relational → object bridge.
//!
//! "Creating an object-oriented view of a relational database. Typically,
//! this means creating new objects from database tuples" (§5). The bridge
//! works in two steps:
//!
//! 1. [`stage`] loads the relational database into a *staging* object
//!    database: one class `<R>_Rows` per relation `R`, one (real) object
//!    per row — pure plumbing, invisible to end users;
//! 2. [`object_view`] builds a view over the staging database with, per
//!    relation, one **imaginary class** `R` whose core attributes are the
//!    relation's columns. The §5.1 identity tables then guarantee that the
//!    same row keeps the same object identity across re-staging — the
//!    relational world's value semantics is lifted into object identity
//!    exactly the way the paper prescribes.
//!
//! [`restage`] refreshes the staging database after relational updates;
//! unchanged rows keep their imaginary oids.

use std::fmt::Write as _;

use ov_oodb::{AttrDef, Database, DbHandle, Symbol, System, Tuple, Value};
use ov_views::{View, ViewDef, ViewError};

use crate::db::RelationalDb;
use crate::relation::RelError;

/// Errors from the bridge.
#[derive(Debug)]
pub enum BridgeError {
    /// From the relational layer.
    Rel(RelError),
    /// From the view layer.
    View(ViewError),
    /// From the data-model layer.
    Oodb(ov_oodb::OodbError),
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::Rel(e) => write!(f, "{e}"),
            BridgeError::View(e) => write!(f, "{e}"),
            BridgeError::Oodb(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<RelError> for BridgeError {
    fn from(e: RelError) -> Self {
        BridgeError::Rel(e)
    }
}
impl From<ViewError> for BridgeError {
    fn from(e: ViewError) -> Self {
        BridgeError::View(e)
    }
}
impl From<ov_oodb::OodbError> for BridgeError {
    fn from(e: ov_oodb::OodbError) -> Self {
        BridgeError::Oodb(e)
    }
}

/// The staging database's name for a relational database.
pub fn staging_name(rdb: &RelationalDb) -> Symbol {
    Symbol::new(&format!("{}_Staged", rdb.name))
}

/// The staging class name for relation `r`.
pub fn rows_class(r: Symbol) -> Symbol {
    Symbol::new(&format!("{r}_Rows"))
}

/// Creates a staging object database from `rdb` and registers it in a fresh
/// [`System`]. Returns the system and the staging handle.
pub fn stage(rdb: &RelationalDb) -> Result<(System, DbHandle), BridgeError> {
    let mut sys = System::new();
    let mut db = Database::new(staging_name(rdb));
    load_into(rdb, &mut db)?;
    sys.add_database(db)?;
    let handle = sys.database(staging_name(rdb))?;
    Ok((sys, handle))
}

/// (Re)loads the staging database in `system` from the current contents of
/// `rdb`: existing row objects are deleted and fresh ones inserted. Views
/// over the staging database see the change through their version-keyed
/// caches; imaginary identity tables keep unchanged rows' oids stable.
pub fn restage(rdb: &RelationalDb, system: &System) -> Result<(), BridgeError> {
    let handle = system.database(staging_name(rdb))?;
    let mut db = handle.write();
    // Remove all existing row objects.
    let all: Vec<ov_oodb::Oid> = db.store.sorted_oids();
    for oid in all {
        db.delete_object(oid)?;
    }
    // Reinsert from the relational store (classes already exist).
    for rel_name in rdb.relation_names() {
        let rel = rdb.relation(rel_name)?;
        let class = db.schema.require_class(rows_class(rel_name))?;
        for row in rel.scan() {
            let tuple = row_tuple(rel.columns(), row);
            db.create_object(class, Value::Tuple(tuple))?;
        }
    }
    Ok(())
}

fn load_into(rdb: &RelationalDb, db: &mut Database) -> Result<(), BridgeError> {
    for rel_name in rdb.relation_names() {
        let rel = rdb.relation(rel_name)?;
        let attrs: Vec<AttrDef> = rel
            .columns()
            .iter()
            .map(|(c, t)| AttrDef::stored(*c, t.clone()))
            .collect();
        let class = db.create_class(rows_class(rel_name), &[], attrs)?;
        for row in rel.scan() {
            let tuple = row_tuple(rel.columns(), row);
            db.create_object(class, Value::Tuple(tuple))?;
        }
    }
    Ok(())
}

fn row_tuple(columns: &[(Symbol, ov_oodb::Type)], row: &[Value]) -> Tuple {
    Tuple::from_fields(
        columns
            .iter()
            .zip(row)
            .filter(|(_, v)| !v.is_null())
            .map(|((c, _), v)| (*c, v.clone())),
    )
}

/// Generates the view-definition script that presents each relation as an
/// imaginary class named after it.
pub fn view_script(rdb: &RelationalDb) -> Result<String, BridgeError> {
    let mut out = String::new();
    let _ = writeln!(out, "create view {}_Objects;", rdb.name);
    let _ = writeln!(
        out,
        "import all classes from database {};",
        staging_name(rdb)
    );
    for rel_name in rdb.relation_names() {
        let rel = rdb.relation(rel_name)?;
        let _ = write!(out, "class {rel_name} includes imaginary (select [");
        for (i, (c, _)) in rel.columns().iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            let _ = write!(out, "{c}: T.{c}");
        }
        let _ = writeln!(out, "] from T in {});", rows_class(rel_name));
        // The staging class is plumbing: hide it from view users.
        let _ = writeln!(out, "hide class {};", rows_class(rel_name));
    }
    Ok(out)
}

/// Builds and binds the object view of `rdb` over a system that already
/// contains its staging database (see [`stage`]).
pub fn object_view(rdb: &RelationalDb, system: &System) -> Result<View, BridgeError> {
    let script = view_script(rdb)?;
    let def = ViewDef::from_script(&script)?;
    Ok(def.binder(system).bind()?)
}

/// The inverse direction: flattens an object database into relations
/// (first normal form). Per class, one relation over the class's *stored*
/// attributes with atomic types; object references become integer
/// `<Attr>_oid` columns; set/list/tuple-valued attributes are dropped
/// (they do not fit 1NF — export a materialized view that restructures
/// them first if you need them). Rows come from shallow extents, so the
/// unique-root rule maps to disjoint relations.
pub fn export(db: &Database, name: Symbol) -> Result<RelationalDb, BridgeError> {
    use ov_oodb::{Type, Value};
    let mut rdb = RelationalDb::new(name);
    for class in db.schema.classes() {
        let stored = db.schema.stored_attr_types(class.id);
        let mut columns: Vec<(Symbol, Type)> = Vec::new();
        // (attribute, as-oid-column) in a deterministic order.
        let mut picked: Vec<(Symbol, bool)> = Vec::new();
        for (attr, ty) in &stored {
            match ty {
                Type::Bool | Type::Int | Type::Float | Type::Str => {
                    columns.push((*attr, ty.clone()));
                    picked.push((*attr, false));
                }
                Type::Class(_) | Type::Any => {
                    columns.push((Symbol::new(&format!("{attr}_oid")), Type::Int));
                    picked.push((*attr, true));
                }
                _ => {} // non-1NF: dropped
            }
        }
        rdb.create_relation(crate::relation::Relation::new(class.name, columns))?;
        for oid in db.store.extent(class.id) {
            let obj = db.store.require(oid)?;
            let row: Vec<Value> = picked
                .iter()
                .map(|(attr, as_oid)| {
                    let v = obj.value.get(*attr).cloned().unwrap_or(Value::Null);
                    if *as_oid {
                        match v {
                            Value::Oid(o) => Value::Int(o.0 as i64),
                            _ => Value::Null,
                        }
                    } else {
                        v
                    }
                })
                .collect();
            rdb.insert(class.name, row)?;
        }
    }
    Ok(rdb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use ov_oodb::{sym, Type};

    fn payroll() -> RelationalDb {
        let mut rdb = RelationalDb::new(sym("Payroll"));
        rdb.create_relation(Relation::new(
            sym("Emp"),
            vec![
                (sym("EName"), Type::Str),
                (sym("Dept"), Type::Str),
                (sym("Salary"), Type::Int),
            ],
        ))
        .unwrap();
        rdb.create_relation(Relation::new(
            sym("Dept"),
            vec![(sym("DName"), Type::Str), (sym("Head"), Type::Str)],
        ))
        .unwrap();
        rdb.insert(
            sym("Emp"),
            vec![Value::str("Tony"), Value::str("DB"), Value::Int(100)],
        )
        .unwrap();
        rdb.insert(
            sym("Emp"),
            vec![Value::str("Ann"), Value::str("OS"), Value::Int(120)],
        )
        .unwrap();
        rdb.insert(sym("Dept"), vec![Value::str("DB"), Value::str("Ann")])
            .unwrap();
        rdb
    }

    #[test]
    fn tuples_become_imaginary_objects() {
        let rdb = payroll();
        let (sys, _) = stage(&rdb).unwrap();
        let view = object_view(&rdb, &sys).unwrap();
        let emps = view.extent_of(sym("Emp")).unwrap();
        assert_eq!(emps.len(), 2);
        assert!(emps.iter().all(|o| o.is_imaginary()));
        assert_eq!(
            view.query("select E.EName from E in Emp where E.Salary > 110")
                .unwrap(),
            Value::set([Value::str("Ann")])
        );
        // The staging plumbing is hidden.
        assert!(view.query("select R from R in Emp_Rows").is_err());
    }

    #[test]
    fn identity_stable_across_restaging() {
        let mut rdb = payroll();
        let (sys, _) = stage(&rdb).unwrap();
        let view = object_view(&rdb, &sys).unwrap();
        let before = view.extent_of(sym("Emp")).unwrap();
        // Add a row and re-stage: old rows keep their oids.
        rdb.insert(
            sym("Emp"),
            vec![Value::str("Zoe"), Value::str("DB"), Value::Int(90)],
        )
        .unwrap();
        restage(&rdb, &sys).unwrap();
        let after = view.extent_of(sym("Emp")).unwrap();
        assert_eq!(after.len(), 3);
        for o in &before {
            assert!(after.contains(o), "pre-existing row changed identity");
        }
    }

    #[test]
    fn updated_rows_change_identity() {
        // Row contents *are* the core attributes: updating a row is a new
        // imaginary object — the relational world has value semantics.
        let mut rdb = payroll();
        let (sys, _) = stage(&rdb).unwrap();
        let view = object_view(&rdb, &sys).unwrap();
        let before = view.extent_of(sym("Emp")).unwrap();
        rdb.relation_mut(sym("Emp"))
            .unwrap()
            .update(
                |r| r[0] == Value::str("Tony"),
                sym("Salary"),
                Value::Int(101),
            )
            .unwrap();
        restage(&rdb, &sys).unwrap();
        let after = view.extent_of(sym("Emp")).unwrap();
        assert_eq!(after.len(), 2);
        assert_ne!(before, after);
        // Ann's row is untouched and keeps its oid.
        let ann_kept = before.iter().filter(|o| after.contains(o)).count();
        assert_eq!(ann_kept, 1);
    }

    #[test]
    fn multiple_relations_multiple_classes() {
        let rdb = payroll();
        let (sys, _) = stage(&rdb).unwrap();
        let view = object_view(&rdb, &sys).unwrap();
        assert_eq!(view.extent_of(sym("Dept")).unwrap().len(), 1);
        // Imaginary classes per relation are distinct: no oid overlap.
        let emps = view.extent_of(sym("Emp")).unwrap();
        let depts = view.extent_of(sym("Dept")).unwrap();
        assert!(emps.iter().all(|o| !depts.contains(o)));
    }

    #[test]
    fn joins_across_imaginary_classes() {
        let rdb = payroll();
        let (sys, _) = stage(&rdb).unwrap();
        let view = object_view(&rdb, &sys).unwrap();
        // Who works in a department headed by Ann?
        let v = view
            .query(
                "select E.EName from E in Emp, D in Dept \
                 where E.Dept = D.DName and D.Head = \"Ann\"",
            )
            .unwrap();
        assert_eq!(v, Value::set([Value::str("Tony")]));
    }

    #[test]
    fn export_flattens_objects_to_relations() {
        let mut db = Database::new(sym("Obj"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    ov_oodb::AttrDef::stored(sym("Name"), Type::Str),
                    ov_oodb::AttrDef::stored(sym("Age"), Type::Int),
                    ov_oodb::AttrDef::stored(sym("Spouse"), Type::Class(ov_oodb::ClassId(0))),
                    ov_oodb::AttrDef::stored(sym("Kids"), Type::set(Type::Str)),
                ],
            )
            .unwrap();
        let a = db
            .create_object(
                person,
                Value::tuple([("Name", Value::str("A")), ("Age", Value::Int(1))]),
            )
            .unwrap();
        db.create_object(
            person,
            Value::tuple([
                ("Name", Value::str("B")),
                ("Age", Value::Int(2)),
                ("Spouse", Value::Oid(a)),
            ]),
        )
        .unwrap();
        let rdb = export(&db, sym("Flat")).unwrap();
        let rel = rdb.relation(sym("Person")).unwrap();
        // Kids (a set) is dropped; Spouse becomes Spouse_oid: integer.
        let cols: Vec<&str> = rel.columns().iter().map(|(c, _)| c.as_str()).collect();
        assert_eq!(cols, vec!["Age", "Name", "Spouse_oid"]);
        assert_eq!(rel.len(), 2);
        let b_row: Vec<_> = rel
            .select(|r| r[1] == Value::str("B"))
            .next()
            .unwrap()
            .to_vec();
        assert_eq!(b_row[2], Value::Int(a.0 as i64));
    }

    #[test]
    fn roundtrip_relational_object_relational() {
        let rdb = payroll();
        let (sys, handle) = stage(&rdb).unwrap();
        let _ = sys;
        // Export the staging database back out: same rows.
        let back = export(&handle.read(), sym("Back")).unwrap();
        let rel = back.relation(sym("Emp_Rows")).unwrap();
        assert_eq!(rel.len(), rdb.relation(sym("Emp")).unwrap().len());
        // Every original row survives (column order may differ).
        let names: std::collections::BTreeSet<Value> = rel
            .project(&[sym("EName")])
            .unwrap()
            .into_iter()
            .map(|mut r| r.remove(0))
            .collect();
        assert!(names.contains(&Value::str("Tony")));
        assert!(names.contains(&Value::str("Ann")));
    }

    #[test]
    fn view_script_is_readable_ddl() {
        let rdb = payroll();
        let script = view_script(&rdb).unwrap();
        assert!(script.contains("create view Payroll_Objects;"));
        assert!(script.contains("class Emp includes imaginary"));
        assert!(script.contains("hide class Emp_Rows;"));
    }
}
