//! Cooperative resource governance for query evaluation.
//!
//! The evaluator is a tree walker over user-authored expressions; nothing
//! in the language stops a query (or a virtual-attribute body) from running
//! arbitrarily long or materializing arbitrarily many rows. A [`Budget`] is
//! the caller's contract with the evaluator: a wall-clock **deadline**, a
//! **max-eval-steps** cap, a **max-rows** cap on materialized results, and a
//! **recursion-depth** cap (shared with the parser, which counts its
//! nesting against the same limit). Evaluation checks the budget
//! cooperatively — once per expression node, once per parallel chunk — and
//! surfaces breaches as typed [`QueryError::Cancelled`] /
//! [`QueryError::ResourceExhausted`] errors instead of running away.
//!
//! Installation follows the same thread-local discipline as
//! [`crate::plan`]: threading a budget through every evaluator frame would
//! infect each `DataSource` signature, so the governing caller brackets the
//! work with [`with`] and the evaluator captures the current budget once at
//! construction. Counters (`steps`, `rows`) are shared atomics, so parallel
//! scan workers — which re-install the coordinator's budget via [`current`]
//! — drain one global allowance rather than one per thread.
//!
//! Batched execution does not change the accounting unit: the compiled
//! engine prefetches attribute columns for a chunk of rows at once, but
//! still charges steps and rows **per row, in row order**, so a cap is
//! breached at exactly the same row — with the same error — at every batch
//! width, including width 0 (row-at-a-time).

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::QueryError;

/// How often (in eval steps) the deadline is re-checked. Reading the clock
/// every node would dominate evaluation cost; every 64th step bounds the
/// overshoot to microseconds.
const DEADLINE_STRIDE: u64 = 64;

/// One breached budget dimension — the `source()` of a
/// [`QueryError::Cancelled`] / [`QueryError::ResourceExhausted`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetBreach {
    /// The dimension that was exhausted (`"deadline"`, `"eval steps"`, …).
    pub limit: &'static str,
    /// The configured allowance (milliseconds for the deadline, a count
    /// otherwise).
    pub allowed: u64,
}

impl fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget {} limit exceeded (allowed {})",
            self.limit, self.allowed
        )
    }
}

impl std::error::Error for BudgetBreach {}

/// A cooperative resource budget for one evaluation.
///
/// Cheap to share: counters are relaxed atomics, limits are immutable after
/// construction. Build with the `with_*` methods, install with [`with`].
#[derive(Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    /// The original allowance, for error messages.
    deadline_ms: u64,
    max_steps: Option<u64>,
    max_rows: Option<u64>,
    max_depth: Option<usize>,
    steps: AtomicU64,
    rows: AtomicU64,
}

impl Budget {
    /// An unlimited budget (every check passes).
    pub fn new() -> Budget {
        Budget::default()
    }

    /// Caps wall-clock time, measured from this call.
    pub fn with_deadline_ms(mut self, ms: u64) -> Budget {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self.deadline_ms = ms;
        self
    }

    /// Caps the number of expression nodes evaluated.
    pub fn with_max_steps(mut self, steps: u64) -> Budget {
        self.max_steps = Some(steps);
        self
    }

    /// Caps the number of rows materialized into results.
    pub fn with_max_rows(mut self, rows: u64) -> Budget {
        self.max_rows = Some(rows);
        self
    }

    /// Caps recursion depth — evaluation nesting *and* parser nesting
    /// (tighter than the evaluator's built-in hard cap if lower).
    pub fn with_max_depth(mut self, depth: usize) -> Budget {
        self.max_depth = Some(depth);
        self
    }

    /// Eval steps consumed so far (across all threads sharing this budget).
    pub fn steps_used(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Rows materialized so far (across all threads sharing this budget).
    pub fn rows_used(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }

    /// The recursion-depth cap, if one is set.
    pub fn depth_cap(&self) -> Option<usize> {
        self.max_depth
    }

    /// Accounts one evaluation step at `depth`; errs on any breached
    /// dimension. Called once per expression node, so this is the hot path:
    /// one `fetch_add` plus compares, with the clock read amortized.
    pub fn step(&self, depth: usize) -> Result<(), QueryError> {
        let steps = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_steps {
            if steps > max {
                ov_oodb::metric_counter!("query.budget_exhausted").inc();
                return Err(QueryError::ResourceExhausted(BudgetBreach {
                    limit: "eval steps",
                    allowed: max,
                }));
            }
        }
        if let Some(max) = self.max_depth {
            if depth > max {
                ov_oodb::metric_counter!("query.budget_exhausted").inc();
                return Err(QueryError::ResourceExhausted(BudgetBreach {
                    limit: "recursion depth",
                    allowed: max as u64,
                }));
            }
        }
        if steps.is_multiple_of(DEADLINE_STRIDE) {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Checks the deadline *now* (chunk boundaries, retry loops).
    pub fn check_deadline(&self) -> Result<(), QueryError> {
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                ov_oodb::metric_counter!("query.budget_cancelled").inc();
                return Err(QueryError::Cancelled(BudgetBreach {
                    limit: "deadline",
                    allowed: self.deadline_ms,
                }));
            }
        }
        Ok(())
    }

    /// Accounts `n` materialized rows; errs when the row cap is exceeded.
    pub fn note_rows(&self, n: u64) -> Result<(), QueryError> {
        let rows = self.rows.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.max_rows {
            if rows > max {
                ov_oodb::metric_counter!("query.budget_exhausted").inc();
                return Err(QueryError::ResourceExhausted(BudgetBreach {
                    limit: "rows",
                    allowed: max,
                }));
            }
        }
        Ok(())
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Budget>>> = const { RefCell::new(None) };
}

/// Runs `f` with `budget` installed as this thread's current budget,
/// restoring the previous one after (budgets nest; the innermost governs).
pub fn with<R>(budget: Arc<Budget>, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(budget));
    // Restore on unwind too: a panic mid-query (e.g. an injected one) must
    // not leave a stale budget governing unrelated later work.
    struct Restore(Option<Arc<Budget>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The budget governing this thread, if any. Parallel scan coordinators
/// capture this and re-install it (via [`with`]) on their worker threads so
/// chunks drain the same shared counters.
pub fn current() -> Option<Arc<Budget>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The effective parser nesting cap: the installed budget's depth cap,
/// bounded by `hard_cap` (the parser's own stack-safety limit).
pub fn parse_depth_cap(hard_cap: usize) -> usize {
    current()
        .and_then(|b| b.depth_cap())
        .map_or(hard_cap, |d| d.min(hard_cap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_passes_every_check() {
        let b = Budget::new();
        for d in 0..10_000 {
            b.step(d % 64).unwrap();
        }
        b.note_rows(1 << 40).unwrap();
        b.check_deadline().unwrap();
    }

    #[test]
    fn step_cap_trips_exactly_at_the_limit() {
        let b = Budget::new().with_max_steps(10);
        for _ in 0..10 {
            b.step(0).unwrap();
        }
        match b.step(0) {
            Err(QueryError::ResourceExhausted(breach)) => {
                assert_eq!(breach.limit, "eval steps");
                assert_eq!(breach.allowed, 10);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn row_cap_counts_cumulatively() {
        let b = Budget::new().with_max_rows(100);
        b.note_rows(60).unwrap();
        assert!(matches!(
            b.note_rows(60),
            Err(QueryError::ResourceExhausted(_))
        ));
    }

    #[test]
    fn depth_cap_trips() {
        let b = Budget::new().with_max_depth(5);
        b.step(5).unwrap();
        assert!(matches!(b.step(6), Err(QueryError::ResourceExhausted(_))));
    }

    #[test]
    fn expired_deadline_cancels() {
        let b = Budget::new().with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        match b.check_deadline() {
            Err(QueryError::Cancelled(breach)) => assert_eq!(breach.limit, "deadline"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn install_is_scoped_and_nests() {
        assert!(current().is_none());
        let outer = Arc::new(Budget::new().with_max_steps(1));
        with(outer.clone(), || {
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
            let inner = Arc::new(Budget::new());
            with(inner.clone(), || {
                assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            });
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        });
        assert!(current().is_none());
    }

    #[test]
    fn install_restores_after_panic() {
        let r = std::panic::catch_unwind(|| {
            with(Arc::new(Budget::new()), || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(current().is_none());
    }

    #[test]
    fn shared_counters_govern_across_threads() {
        let b = Arc::new(Budget::new().with_max_steps(100));
        let hit_limit = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        if b.step(0).is_err() {
                            hit_limit.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                });
            }
        });
        assert!(
            hit_limit.load(Ordering::Relaxed),
            "4×50 steps must breach 100"
        );
    }

    #[test]
    fn parse_depth_cap_is_min_of_budget_and_hard_cap() {
        assert_eq!(parse_depth_cap(96), 96);
        with(Arc::new(Budget::new().with_max_depth(10)), || {
            assert_eq!(parse_depth_cap(96), 10);
        });
        with(Arc::new(Budget::new().with_max_depth(500)), || {
            assert_eq!(parse_depth_cap(96), 96);
        });
    }
}
