//! The compiled predicate engine.
//!
//! The tree-walking evaluator pays per row for work that is invariant
//! across a scan: expression-tree dispatch, environment pushes/pops and
//! reverse-scan variable lookups, and — dominating everything on view
//! scans — re-running attribute *resolution* (`DataSource::resolve`) for
//! every object even though objects of one class resolve identically.
//! This module lowers an expression once, before the scan, into a flat
//! instruction stream over a small value stack:
//!
//! * scan variables become **registers** (`Reg`), written once per row;
//! * `And`/`Or`/`if` short-circuiting becomes **jump threading**, decided
//!   at compile time instead of re-discovered per row;
//! * attribute accesses become **slots** carrying a per-scan inline cache
//!   of `resolve` results keyed by the object's presentation class, used
//!   only where the source vouches (via
//!   [`DataSource::resolution_is_class_pure`]) that resolution depends on
//!   the class alone;
//! * **computed-attribute bodies compile too**: when a slot's cached
//!   resolution is class-pure and the body is in the covered subset, the
//!   body is lowered once into its own [`Program`] (`self` in register 0,
//!   parameters after it, bracketed by `EnterBody`/`ExitBody`
//!   instructions) and invoked as a bytecode frame instead of
//!   round-tripping through `Evaluator::run_computed` per row;
//! * scans execute over **columnar batches**: [`Scan::begin_batch`]
//!   prefetches the (class, raw field) probes for every attribute access
//!   that reads the batched register — one lock acquisition and one object
//!   lookup per row for the whole batch, instead of one per access.
//!
//! The contract is **bit-identical observable behavior** with the
//! interpreter: same values, same error variants and messages, same
//! [`crate::Budget`] step/row accounting (a `Step` instruction is
//! emitted exactly where `eval_depth` would charge a step, at the same
//! depth — batching amortizes lookups, *never* budget charges, so a
//! breach stops at the exact row the interpreter would), same depth-limit
//! behavior, and uncovered computed bodies still delegate to the
//! interpreter (`Evaluator::run_computed`). Expressions outside the
//! covered subset (`Lit`, scan variables, `self` in bodies, `Attr`,
//! tuple/set/list constructors, `Unary`, `Binary`, `If`) simply fail to
//! compile and the caller falls back to the interpreter, recording the
//! scan as interpreted in EXPLAIN output ([`crate::plan::Engine`]).
//!
//! **Consistency model.** A batch's prefetched probes are a snapshot
//! taken at [`Scan::begin_batch`]. Scans hold `&Database` (immutable) or
//! run against a `View` whose raw class/field probes for existing objects
//! do not change mid-scan, so the snapshot cannot be observed stale; a
//! probe is only used when the receiver equals the batched row's object,
//! and anything else falls through to the per-row path. Slot caches are
//! additionally guarded by [`DataSource::resolution_generation`]: a
//! source that invalidates scan-visible resolution state (a view opening
//! or closing a population bracket, template instantiation) bumps its
//! generation and the scan drops its cached verdicts.

use std::cell::Cell;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use ov_oodb::{BinOp, ClassId, Expr, Oid, SelectExpr, Symbol, UnOp, Value};

use crate::budget::{self, Budget};
use crate::error::{QueryError, Result};
use crate::eval::{self, truthy, Evaluator};
use crate::source::{DataSource, ResolvedAttr};

// --- engine selection -----------------------------------------------------

/// Which engine scan paths should use. There is a process-wide default
/// (set once at startup by tooling) and a thread-scoped override
/// ([`with_engine_mode`]) so concurrent sessions — and parallel tests —
/// can pick engines independently without racing on the global.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Compile where the expression is covered, fall back otherwise
    /// (the default).
    Auto,
    /// Compile when covered like [`EngineMode::Auto`], but *count* every
    /// top-level query that still falls back to the interpreter in the
    /// `compile.fallbacks` metric (surfaced by ovq `.engine`) — forcing
    /// the engine makes coverage regressions visible instead of silent.
    Compiled,
    /// Never compile; every scan runs the tree-walking interpreter.
    Interp,
}

impl EngineMode {
    /// The ovq-facing spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineMode::Auto => "auto",
            EngineMode::Compiled => "compiled",
            EngineMode::Interp => "interp",
        }
    }

    /// Parses the ovq-facing spelling.
    pub fn parse(s: &str) -> Option<EngineMode> {
        match s {
            "auto" => Some(EngineMode::Auto),
            "compiled" => Some(EngineMode::Compiled),
            "interp" => Some(EngineMode::Interp),
            _ => None,
        }
    }
}

static ENGINE_MODE: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static TLS_ENGINE: Cell<Option<EngineMode>> = const { Cell::new(None) };
}

/// Sets the process-wide *default* engine mode. Scopes that need a
/// different engine without affecting concurrent sessions should use
/// [`with_engine_mode`] instead.
pub fn set_engine_mode(mode: EngineMode) {
    let v = match mode {
        EngineMode::Auto => 0,
        EngineMode::Compiled => 1,
        EngineMode::Interp => 2,
    };
    ENGINE_MODE.store(v, Ordering::Relaxed);
}

/// The engine mode governing this thread: the innermost
/// [`with_engine_mode`] override if one is active, else the process-wide
/// default.
pub fn engine_mode() -> EngineMode {
    if let Some(m) = TLS_ENGINE.with(|c| c.get()) {
        return m;
    }
    match ENGINE_MODE.load(Ordering::Relaxed) {
        1 => EngineMode::Compiled,
        2 => EngineMode::Interp,
        _ => EngineMode::Auto,
    }
}

/// Runs `f` with `mode` as this thread's engine mode, restoring the
/// previous override on the way out (also on unwind). This is how
/// per-`Session` engine selection works without racing the global:
/// nothing outside the closure — other threads, other sessions — sees
/// the override. Note that scans dispatched to *worker* threads inside
/// `f` (parallel chunk scans, background populations) consult their own
/// thread's mode, i.e. the process default; both engines are
/// bit-identical, so this affects performance characteristics only.
pub fn with_engine_mode<R>(mode: EngineMode, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<EngineMode>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TLS_ENGINE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TLS_ENGINE.with(|c| c.replace(Some(mode))));
    f()
}

/// Should scan paths attempt compiled execution at all?
pub fn compiled_enabled() -> bool {
    engine_mode() != EngineMode::Interp
}

/// Interpreter fallbacks observed while the engine was forced to
/// [`EngineMode::Compiled`]: top-level queries the compiler could not
/// cover. Zero under a healthy forced-compiled workload; a growing count
/// is a coverage regression.
pub fn compile_fallbacks() -> u64 {
    ov_oodb::metric_counter!("compile.fallbacks").get()
}

/// Records one forced-mode interpreter fallback (only called when
/// [`engine_mode`] is [`EngineMode::Compiled`]).
fn note_fallback() {
    ov_oodb::metric_counter!("compile.fallbacks").inc();
}

// --- batch sizing ---------------------------------------------------------

/// Default number of rows per columnar batch. Large enough to amortize
/// lock acquisition and (after the first batch warms the slot caches)
/// body-program discovery; small enough that prefetched probe columns
/// stay cache-resident.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

thread_local! {
    static BATCH_ROWS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The batch size governing this thread's compiled scans: the innermost
/// [`with_batch_rows`] override, else [`DEFAULT_BATCH_ROWS`]. `0` means
/// row-at-a-time execution (no prefetch) — the baseline the bench
/// harness's E16 compares against.
pub fn batch_rows() -> usize {
    BATCH_ROWS.with(|c| c.get()).unwrap_or(DEFAULT_BATCH_ROWS)
}

/// Runs `f` with compiled scans batching `rows` rows at a time (`0`
/// disables batching), restoring the previous setting on the way out.
/// Batching is a pure execution strategy: results, errors, and budget
/// accounting are identical at every setting.
pub fn with_batch_rows<R>(rows: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BATCH_ROWS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(BATCH_ROWS.with(|c| c.replace(Some(rows))));
    f()
}

// --- programs -------------------------------------------------------------

/// One instruction. The stream is laid out in evaluation order: every
/// instruction that corresponds to an expression node is preceded by the
/// node's [`Inst::Step`], so the sequence of budget charges (and the depth
/// each is charged at) is exactly the interpreter's.
#[derive(Clone, Copy, Debug)]
enum Inst {
    /// Expression-node entry: recursion-depth check plus one budget step at
    /// `base + rel` (mirrors `eval_depth`'s prologue).
    Step { rel: usize },
    /// Push a constant (from the program's pool).
    Const(usize),
    /// Push a register: a scan variable, or — in a body program — `self`
    /// (register 0) or a parameter.
    Reg(usize),
    /// Pop `nargs` arguments and a receiver; perform attribute access via
    /// resolution slot `slot` (mirrors `Evaluator::access`/`attr_of`,
    /// including the second depth-check + step for object receivers).
    Attr {
        slot: usize,
        nargs: usize,
        rel: usize,
    },
    /// Pop one operand, apply a unary operator.
    Unary(UnOp),
    /// Pop two operands, apply a non-short-circuit binary operator.
    Binary(BinOp),
    /// `And` threading: pop the lhs; if falsy, push `false` and jump to
    /// `to` (past the rhs). Otherwise fall through into the rhs.
    AndShort { to: usize },
    /// `Or` threading: pop the lhs; if truthy, push `true` and jump.
    OrShort { to: usize },
    /// Pop a value, push its truthiness (normalizes an `And`/`Or` rhs).
    Booleanize,
    /// Pop the `if` condition; jump to `to` (the else arm) when falsy.
    BranchFalsy { to: usize },
    /// Unconditional jump (end of an `if` then-arm).
    Jump { to: usize },
    /// Pop the shape's field count of values, build a tuple in field order
    /// (mirrors `Expr::TupleCons`: later duplicates overwrite).
    MakeTuple { shape: usize },
    /// Pop `n` values, build a set.
    MakeSet { n: usize },
    /// Pop `n` values, build a list.
    MakeList { n: usize },
    /// Run sub-select `sub` (of the program's [`Program::subs`] table) as
    /// a subroutine at depth `base + rel`, pushing its result: a set (or
    /// bare element for `select the`), or a boolean for `exists`. The
    /// subroutine drives its binding loops row-at-a-time with the
    /// interpreter's exact depth/step charges.
    Select { sub: usize, rel: usize },
    /// Frame entry of a compiled computed-attribute body: the
    /// `DataSource::enter_body` bracket the interpreter's `run_computed`
    /// opens before evaluating the body.
    EnterBody,
    /// …and the matching `exit_body`. Skipped when the body errors; the
    /// frame driver ([`Scan::run_body`]) re-balances, exactly like
    /// `run_computed` exiting on the error path.
    ExitBody,
}

/// A compiled expression: flat instructions, a constant pool, and one
/// resolution slot per attribute-access site. Compile once per scan (or
/// once per view bind), execute per row via [`Scan`].
#[derive(Clone, Debug)]
pub struct Program {
    insts: Vec<Inst>,
    consts: Vec<Value>,
    /// Attribute name per resolution slot, in slot order.
    slots: Vec<Symbol>,
    /// For each slot, the register its receiver reads directly (the
    /// receiver expression is that register and nothing else) — the
    /// accesses a columnar batch can prefetch. `None` for computed
    /// receivers (path tails like `P.Spouse.Name`).
    slot_recv: Vec<Option<usize>>,
    /// Field-name shapes for `MakeTuple`, in shape order.
    shapes: Vec<Vec<Symbol>>,
    /// Compiled sub-selects, indexed by [`Inst::Select`].
    subs: Vec<Arc<SubSelect>>,
    n_regs: usize,
}

/// How a sub-select binding's collection is produced, once per enclosing
/// iteration (the interpreter re-evaluates collections each time the
/// outer bindings advance, and so does the compiled form).
#[derive(Debug)]
enum CollPlan {
    /// A compiled collection expression (a variable path, a constructed
    /// set, an earlier binding's attribute, …).
    Prog(Arc<Program>),
    /// A free name, resolved per iteration exactly like the evaluator's
    /// `resolve_name` tail: named object first, then class extent, else
    /// the unknown-name error — so mid-scan rebinds and repopulations
    /// behave identically to the interpreter.
    Free(Symbol),
}

/// One `var in collection` binding of a compiled sub-select.
#[derive(Debug)]
struct SubBinding {
    var: Symbol,
    /// The frame-relative register the variable binds into (past the
    /// enclosing program's registers; the file grows on demand).
    reg: usize,
    coll: CollPlan,
}

/// A nested `select` (or `exists`) compiled as a subroutine: collection
/// plans per binding, a compiled filter, and a compiled projection —
/// `None` for `exists`, which only probes for a first match.
#[derive(Debug)]
struct SubSelect {
    the: bool,
    bindings: Vec<SubBinding>,
    filter: Option<Arc<Program>>,
    proj: Option<Arc<Program>>,
}

impl Program {
    /// Number of registers (scan variables; in a body program, `self`
    /// plus the parameters).
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }
}

/// Lowers `expr` to a [`Program`] with the scan variables `vars` mapped to
/// registers `0..vars.len()` (innermost binding wins, like `Env::lookup`).
/// Returns `None` when `expr` uses any construct outside the covered subset
/// — the caller falls back to the interpreter.
pub fn compile_predicate(expr: &Expr, vars: &[Symbol]) -> Option<Program> {
    let mut c = Compiler {
        insts: Vec::new(),
        consts: Vec::new(),
        slots: Vec::new(),
        slot_recv: Vec::new(),
        shapes: Vec::new(),
        subs: Vec::new(),
        vars: vars.to_vec(),
        reg_base: 0,
        self_reg: None,
    };
    c.emit(expr, 0)?;
    Some(c.finish())
}

/// Lowers a computed-attribute body to a [`Program`] with `self` in
/// register 0 and `params` in registers `1..`, bracketed by
/// `EnterBody`/`ExitBody` so the body-privilege window and its budget
/// charges land exactly where `Evaluator::run_computed` puts them.
/// `None` when the body uses anything outside the covered subset — the
/// scan then falls back to `run_computed` for that slot.
fn compile_body(params: &[Symbol], body: &Expr) -> Option<Program> {
    let mut c = Compiler {
        insts: vec![Inst::EnterBody],
        consts: Vec::new(),
        slots: Vec::new(),
        slot_recv: Vec::new(),
        shapes: Vec::new(),
        subs: Vec::new(),
        vars: params.to_vec(),
        reg_base: 1,
        self_reg: Some(0),
    };
    c.emit(body, 0)?;
    c.insts.push(Inst::ExitBody);
    Some(c.finish())
}

struct Compiler {
    insts: Vec<Inst>,
    consts: Vec<Value>,
    slots: Vec<Symbol>,
    slot_recv: Vec<Option<usize>>,
    shapes: Vec<Vec<Symbol>>,
    subs: Vec<Arc<SubSelect>>,
    /// In-scope variables, innermost last: the program's own scan
    /// variables (or body parameters), extended transiently with
    /// sub-select binding variables while their filter/projection
    /// compile.
    vars: Vec<Symbol>,
    /// First register for `vars` (1 in body programs, where register 0 is
    /// `self`).
    reg_base: usize,
    /// The register holding `self`, when compiling a body.
    self_reg: Option<usize>,
}

impl Compiler {
    /// Seals the compiled state into a [`Program`]. `n_regs` counts only
    /// the program's *own* registers — sub-select variables bind past
    /// this count into a register file that grows on demand and is
    /// truncated back at every [`Scan::run`].
    fn finish(self) -> Program {
        Program {
            insts: self.insts,
            consts: self.consts,
            slots: self.slots,
            slot_recv: self.slot_recv,
            shapes: self.shapes,
            subs: self.subs,
            n_regs: self.reg_base + self.vars.len(),
        }
    }

    /// Compiles `e` as a standalone child [`Program`] (a sub-select
    /// collection, filter, or projection) sharing this compiler's
    /// frame-relative register layout: same `reg_base`/`self_reg`, and
    /// the current variable scope — including enclosing sub-select
    /// variables — resolves to the same registers.
    fn compile_child(&self, e: &Expr) -> Option<Program> {
        let mut c = Compiler {
            insts: Vec::new(),
            consts: Vec::new(),
            slots: Vec::new(),
            slot_recv: Vec::new(),
            shapes: Vec::new(),
            subs: Vec::new(),
            vars: self.vars.clone(),
            reg_base: self.reg_base,
            self_reg: self.self_reg,
        };
        c.emit(e, 0)?;
        Some(c.finish())
    }

    /// Compiles a nested `select`/`exists` into a [`SubSelect`] table
    /// entry. Binding collections compile before their variable enters
    /// scope (matching `iterate_bindings`: later collections may refer
    /// to earlier variables); the filter and projection see every
    /// binding. Any uncovered piece fails the whole enclosing compile.
    fn compile_sub(&mut self, q: &SelectExpr, exists: bool) -> Option<usize> {
        let outer = self.vars.len();
        let mut bindings = Vec::with_capacity(q.bindings.len());
        for (var, coll) in &q.bindings {
            let plan = match coll {
                // A name not bound by any in-scope variable resolves at
                // runtime (named object / class extent), per iteration.
                Expr::Name(n) if !self.vars.contains(n) => CollPlan::Free(*n),
                _ => CollPlan::Prog(Arc::new(self.compile_child(coll)?)),
            };
            let reg = self.reg_base + self.vars.len();
            self.vars.push(*var);
            bindings.push(SubBinding {
                var: *var,
                reg,
                coll: plan,
            });
        }
        let filter = match q.filter.as_deref() {
            Some(f) => Some(Arc::new(self.compile_child(f)?)),
            None => None,
        };
        let proj = if exists {
            None
        } else {
            Some(Arc::new(self.compile_child(&q.proj)?))
        };
        self.vars.truncate(outer);
        self.subs.push(Arc::new(SubSelect {
            the: q.the,
            bindings,
            filter,
            proj,
        }));
        Some(self.subs.len() - 1)
    }

    /// The register `e` reads directly, if `e` is exactly a register read.
    fn reg_of(&self, e: &Expr) -> Option<usize> {
        match e {
            Expr::Name(n) => self
                .vars
                .iter()
                .rposition(|v| v == n)
                .map(|i| self.reg_base + i),
            Expr::SelfRef => self.self_reg,
            _ => None,
        }
    }

    /// Emits code for `e` at depth `rel` relative to the program root.
    /// Every covered node nets exactly one value on the stack.
    fn emit(&mut self, e: &Expr, rel: usize) -> Option<()> {
        self.insts.push(Inst::Step { rel });
        match e {
            Expr::Lit(v) => {
                let idx = self.consts.len();
                self.consts.push(v.clone());
                self.insts.push(Inst::Const(idx));
            }
            Expr::Name(n) => {
                // Only scan variables compile; free names (named objects,
                // class extents) can be rebound or repopulated mid-scan, so
                // freezing them at compile time would diverge from the
                // interpreter. Innermost binding wins, like `Env::lookup`.
                let reg = self.vars.iter().rposition(|v| v == n)?;
                self.insts.push(Inst::Reg(self.reg_base + reg));
            }
            Expr::SelfRef => {
                // `self` is a register only inside a body program.
                let r = self.self_reg?;
                self.insts.push(Inst::Reg(r));
            }
            Expr::Attr { recv, name, args } => {
                let recv_reg = self.reg_of(recv);
                self.emit(recv, rel + 1)?;
                for a in args {
                    self.emit(a, rel + 1)?;
                }
                let slot = self.slots.len();
                self.slots.push(*name);
                self.slot_recv.push(recv_reg);
                self.insts.push(Inst::Attr {
                    slot,
                    nargs: args.len(),
                    rel,
                });
            }
            Expr::TupleCons(fields) => {
                for (_, fe) in fields {
                    self.emit(fe, rel + 1)?;
                }
                let shape = self.shapes.len();
                self.shapes.push(fields.iter().map(|(n, _)| *n).collect());
                self.insts.push(Inst::MakeTuple { shape });
            }
            Expr::SetCons(items) => {
                for it in items {
                    self.emit(it, rel + 1)?;
                }
                self.insts.push(Inst::MakeSet { n: items.len() });
            }
            Expr::ListCons(items) => {
                for it in items {
                    self.emit(it, rel + 1)?;
                }
                self.insts.push(Inst::MakeList { n: items.len() });
            }
            Expr::Unary { op, expr } => {
                self.emit(expr, rel + 1)?;
                self.insts.push(Inst::Unary(*op));
            }
            Expr::Binary {
                op: op @ (BinOp::And | BinOp::Or),
                lhs,
                rhs,
            } => {
                self.emit(lhs, rel + 1)?;
                let patch = self.insts.len();
                self.insts.push(match op {
                    BinOp::And => Inst::AndShort { to: 0 },
                    _ => Inst::OrShort { to: 0 },
                });
                self.emit(rhs, rel + 1)?;
                self.insts.push(Inst::Booleanize);
                let end = self.insts.len();
                self.insts[patch] = match op {
                    BinOp::And => Inst::AndShort { to: end },
                    _ => Inst::OrShort { to: end },
                };
            }
            Expr::Binary { op, lhs, rhs } => {
                self.emit(lhs, rel + 1)?;
                self.emit(rhs, rel + 1)?;
                self.insts.push(Inst::Binary(*op));
            }
            Expr::If { cond, then, els } => {
                self.emit(cond, rel + 1)?;
                let branch = self.insts.len();
                self.insts.push(Inst::BranchFalsy { to: 0 });
                self.emit(then, rel + 1)?;
                let jump = self.insts.len();
                self.insts.push(Inst::Jump { to: 0 });
                let else_start = self.insts.len();
                self.insts[branch] = Inst::BranchFalsy { to: else_start };
                self.emit(els, rel + 1)?;
                let end = self.insts.len();
                self.insts[jump] = Inst::Jump { to: end };
            }
            Expr::Select(q) => {
                let sub = self.compile_sub(q, false)?;
                self.insts.push(Inst::Select { sub, rel });
            }
            Expr::Exists(q) => {
                let sub = self.compile_sub(q, true)?;
                self.insts.push(Inst::Select { sub, rel });
            }
            // Everything else — aggregates, free names, `isa`, `Apply` —
            // is interpreter territory.
            _ => return None,
        }
        Some(())
    }
}

// --- execution ------------------------------------------------------------

/// Per-class verdict for one resolution slot, decided lazily on the first
/// object of each class the scan meets.
#[derive(Debug)]
enum SlotEntry {
    /// Resolution is class-pure here: reuse this result for every object
    /// of the class for the rest of the scan. For computed attributes
    /// whose body is in the covered subset, `body` carries the
    /// compiled-once body program.
    Pure {
        res: Arc<ResolvedAttr>,
        body: Option<Arc<Program>>,
    },
    /// The source couldn't vouch for purity: re-resolve every row (and
    /// run computed bodies through the interpreter — compiling per row
    /// would cost more than it saves).
    Impure,
}

/// Columnar prefetch state for one batch of rows.
struct BatchState {
    /// The row currently executing (set by [`Scan::run_row`]).
    row: usize,
    /// The batched rows' object ids (`None` for non-object rows). A
    /// prefetched probe is used only when the receiver equals this row's
    /// oid, so mixing batched and ad-hoc receivers is always safe.
    oids: Vec<Option<Oid>>,
    /// Prefetched column index per global slot (`None`: slot not
    /// prefetchable). Indexed by the slots allocated when the batch began;
    /// slots added later (newly discovered body programs) simply miss
    /// until the next batch.
    cols: Vec<Option<usize>>,
    /// Fused (class, raw field) probes, column-major: `data[col][row]`.
    /// `None` entries fall through to the per-row probe path.
    data: Vec<Vec<Option<(ClassId, Value)>>>,
    /// Attribute name per column (parallel to `data`), kept so the
    /// statistics plane can attribute prefetched values.
    names: Vec<Symbol>,
}

/// A per-scan executor for one [`Program`]: the reusable value stack, the
/// register file, the captured [`Budget`], the per-slot resolution caches,
/// and — when batching — the columnar prefetch state. Create one per scan
/// (or per parallel chunk — caches are not shared across threads), then
/// `bind` + `run` per row, or `begin_batch` + `bind` + `run_row` over
/// columnar chunks.
pub struct Scan<'a> {
    prog: &'a Program,
    src: &'a dyn DataSource,
    /// Delegate for uncovered computed-attribute bodies (captures the same
    /// budget).
    ev: Evaluator<'a>,
    budget: Option<Arc<Budget>>,
    /// Register file: the outer program's registers first, then one frame
    /// per in-flight body invocation (`self`, params).
    regs: Vec<Value>,
    stack: Vec<Value>,
    /// Resolution caches, one per *global* slot: the outer program's slots
    /// first, then a contiguous range per registered body program. Body
    /// slots get their own entries (never shared with outer slots of the
    /// same name) because resolution inside a body-privilege bracket can
    /// legitimately differ from resolution outside it.
    caches: Vec<HashMap<ClassId, SlotEntry>>,
    /// Registered body programs, keyed by `Arc` address: the program and
    /// its global-slot base. The `Arc` is kept in the value so the address
    /// cannot be reused while registered.
    body_bases: HashMap<usize, (Arc<Program>, usize)>,
    /// In-flight `EnterBody` brackets, so an error unwinding past
    /// `ExitBody` instructions can be re-balanced exactly like
    /// `run_computed`'s exit-on-error.
    open_bodies: usize,
    /// The source's resolution generation when the caches were last
    /// (re)filled; a bump drops every cached verdict.
    gen: u64,
    batch: Option<BatchState>,
    /// Columnar batches begun (prefetch actually armed). Plain local
    /// integer; drained by the driver via [`Scan::take_actuals`].
    n_batches: u64,
    /// Resolution-slot cache hits (see [`Scan::take_actuals`]).
    cache_hits: u64,
    /// Resolution-slot cache misses (see [`Scan::take_actuals`]).
    cache_misses: u64,
}

impl<'a> Scan<'a> {
    /// An executor for `prog` over `src`, governed by the thread's current
    /// budget (captured once, like `Evaluator::new`).
    pub fn new(prog: &'a Program, src: &'a dyn DataSource) -> Scan<'a> {
        Scan {
            prog,
            src,
            ev: Evaluator::new(src),
            budget: budget::current(),
            regs: vec![Value::Null; prog.n_regs],
            stack: Vec::with_capacity(8),
            caches: prog.slots.iter().map(|_| HashMap::new()).collect(),
            body_bases: HashMap::new(),
            open_bodies: 0,
            gen: src.resolution_generation(),
            batch: None,
            n_batches: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Drains the executor's measured diagnostics — batches begun,
    /// resolution-cache hits/misses — as a [`ScanActuals`](crate::plan::ScanActuals)
    /// fragment (the row counters stay zero: drivers count rows
    /// themselves). Resets the internal counters.
    pub fn take_actuals(&mut self) -> crate::plan::ScanActuals {
        let a = crate::plan::ScanActuals {
            batches: self.n_batches,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            ..Default::default()
        };
        self.n_batches = 0;
        self.cache_hits = 0;
        self.cache_misses = 0;
        a
    }

    /// Feeds the live batch's prefetched columns into the process-wide
    /// statistics plane under `class`. Call sites sample (a few batches
    /// per scan) and gate on
    /// [`profiling_enabled`](ov_oodb::metrics::profiling_enabled); a no-op
    /// when no batch is armed.
    pub fn feed_batch_stats(&self, class: Symbol) {
        let Some(b) = &self.batch else {
            return;
        };
        let stats = ov_oodb::stats::stats().class(class);
        for (col, name) in b.names.iter().enumerate() {
            stats.observe_column(
                self.gen,
                *name,
                b.data[col].iter().map(|e| e.as_ref().map(|(_, v)| v)),
            );
        }
    }

    /// Writes the scan variable in register `reg` for the next `run`.
    pub fn bind(&mut self, reg: usize, v: Value) {
        self.regs[reg] = v;
    }

    /// Writes a register, growing the file as needed — sub-select
    /// variables live past the program's own `n_regs` (and past any body
    /// frame in flight) and are dropped by the truncation in
    /// [`Scan::run`] / [`Scan::run_body`].
    fn set_reg(&mut self, reg: usize, v: Value) {
        if reg >= self.regs.len() {
            self.regs.resize(reg + 1, Value::Null);
        }
        self.regs[reg] = v;
    }

    /// One interpreter-equivalent expression-node entry *outside* the
    /// program: the depth-limit check plus one budget step at `depth`.
    /// Scan drivers use this to account for the surrounding nodes they
    /// execute themselves (the `select` node, the collection name) exactly
    /// as the tree walker would.
    pub fn step(&self, depth: usize) -> Result<()> {
        if depth > eval::MAX_DEPTH {
            return Err(eval::depth_error());
        }
        if let Some(b) = &self.budget {
            b.step(depth)?;
        }
        Ok(())
    }

    /// Starts a columnar batch over `rows`, which the caller will bind to
    /// register `reg` one at a time: prefetches the fused (class, raw
    /// field) probes for every attribute access that reads `reg` directly
    /// — in the outer program and in every body program discovered so far
    /// (whose receiver register is `self`) — in one pass over the source.
    /// Budget charges are untouched: prefetching amortizes *lookups*, and
    /// each row still pays its exact interpreter charges in `run_row`.
    /// A no-op (per-row fallback) when nothing is prefetchable or the
    /// source does not support prefetch.
    pub fn begin_batch(&mut self, reg: usize, rows: &[Value]) {
        self.batch = None;
        if rows.is_empty() {
            return;
        }
        // Plan the columns: one per distinct attribute name read directly
        // off the batched register (outer program) or off `self` (body
        // programs run the batched object as their receiver; the
        // oid-equality guard in `attr` rejects the prefetched probe when a
        // body runs against some other object).
        let mut names: Vec<Symbol> = Vec::new();
        let mut slot_cols: Vec<(usize, usize)> = Vec::new();
        let mut plan = |prog: &Program, base: usize, recv: usize| {
            for (i, r) in prog.slot_recv.iter().enumerate() {
                if *r == Some(recv) {
                    let name = prog.slots[i];
                    let col = names.iter().position(|n| *n == name).unwrap_or_else(|| {
                        names.push(name);
                        names.len() - 1
                    });
                    slot_cols.push((base + i, col));
                }
            }
        };
        plan(self.prog, 0, reg);
        for (prog, base) in self.body_bases.values() {
            plan(prog, *base, 0);
        }
        if slot_cols.is_empty() {
            return;
        }
        // From here the batch does real work (one pass over the source);
        // the span shows Chrome-trace readers where batched scans spend
        // their prefetch time.
        let _span = ov_oodb::span!("scan.batch_prefetch", rows = rows.len());
        let oids: Vec<Option<Oid>> = rows
            .iter()
            .map(|v| match v {
                Value::Oid(o) => Some(*o),
                _ => None,
            })
            .collect();
        if oids.iter().all(|o| o.is_none()) {
            return;
        }
        let Some(data) = self.src.prefetch_attr_columns(&oids, &names) else {
            return;
        };
        let mut cols = vec![None; self.caches.len()];
        for (gslot, col) in slot_cols {
            cols[gslot] = Some(col);
        }
        self.n_batches += 1;
        self.batch = Some(BatchState {
            row: 0,
            oids,
            cols,
            data,
            names,
        });
    }

    /// Ends the current batch (subsequent rows take the per-row path).
    pub fn end_batch(&mut self) {
        self.batch = None;
    }

    /// Executes the program for row `idx` of the current batch (the caller
    /// has already `bind`-ed the row's value). Identical to [`Scan::run`]
    /// except prefetched probes for this row become visible.
    pub fn run_row(&mut self, base: usize, idx: usize) -> Result<Value> {
        if let Some(b) = &mut self.batch {
            b.row = idx;
        }
        self.run(base)
    }

    /// Executes the program with the expression root at depth `base`
    /// (matching the depth the interpreter would evaluate the same
    /// expression at in this position).
    pub fn run(&mut self, base: usize) -> Result<Value> {
        let prog = self.prog;
        self.stack.clear();
        self.regs.truncate(prog.n_regs);
        self.exec(prog, base, 0, 0)
    }

    /// The bytecode loop. `frame` is the base of this invocation's
    /// registers, `slot_base` the base of its resolution slots; the outer
    /// program runs at (0, 0), body programs at their pushed frame and
    /// registered slot range.
    fn exec(
        &mut self,
        prog: &Program,
        base: usize,
        frame: usize,
        slot_base: usize,
    ) -> Result<Value> {
        let mut pc = 0;
        while pc < prog.insts.len() {
            match prog.insts[pc] {
                Inst::Step { rel } => self.step(base + rel)?,
                Inst::Const(i) => self.stack.push(prog.consts[i].clone()),
                Inst::Reg(i) => self.stack.push(self.regs[frame + i].clone()),
                Inst::Attr { slot, nargs, rel } => {
                    let args = self.stack.split_off(self.stack.len() - nargs);
                    let recv = self.stack.pop().expect("receiver on stack");
                    let name = prog.slots[slot];
                    let v = self.attr(recv, slot_base + slot, name, args, base + rel)?;
                    self.stack.push(v);
                }
                Inst::Unary(op) => {
                    let v = self.stack.pop().expect("operand on stack");
                    self.stack.push(eval::apply_unary(op, v)?);
                }
                Inst::Binary(op) => {
                    let r = self.stack.pop().expect("rhs on stack");
                    let l = self.stack.pop().expect("lhs on stack");
                    self.stack.push(eval::apply_binary(op, &l, &r)?);
                }
                Inst::AndShort { to } => {
                    let l = self.stack.pop().expect("lhs on stack");
                    if !truthy(&l) {
                        self.stack.push(Value::Bool(false));
                        pc = to;
                        continue;
                    }
                }
                Inst::OrShort { to } => {
                    let l = self.stack.pop().expect("lhs on stack");
                    if truthy(&l) {
                        self.stack.push(Value::Bool(true));
                        pc = to;
                        continue;
                    }
                }
                Inst::Booleanize => {
                    let v = self.stack.pop().expect("operand on stack");
                    self.stack.push(Value::Bool(truthy(&v)));
                }
                Inst::BranchFalsy { to } => {
                    let c = self.stack.pop().expect("condition on stack");
                    if !truthy(&c) {
                        pc = to;
                        continue;
                    }
                }
                Inst::Jump { to } => {
                    pc = to;
                    continue;
                }
                Inst::MakeTuple { shape } => {
                    let fields = &prog.shapes[shape];
                    let vals = self.stack.split_off(self.stack.len() - fields.len());
                    let mut t = ov_oodb::Tuple::new();
                    for (n, v) in fields.iter().zip(vals) {
                        t.set(*n, v);
                    }
                    self.stack.push(Value::Tuple(t));
                }
                Inst::MakeSet { n } => {
                    let vals = self.stack.split_off(self.stack.len() - n);
                    self.stack.push(Value::Set(vals.into_iter().collect()));
                }
                Inst::MakeList { n } => {
                    let vals = self.stack.split_off(self.stack.len() - n);
                    self.stack.push(Value::List(vals));
                }
                Inst::Select { sub, rel } => {
                    let s = prog.subs[sub].clone();
                    let v = self.run_sub(&s, base + rel, frame)?;
                    self.stack.push(v);
                }
                Inst::EnterBody => {
                    self.src.enter_body();
                    self.open_bodies += 1;
                }
                Inst::ExitBody => {
                    self.src.exit_body();
                    self.open_bodies -= 1;
                }
            }
            pc += 1;
        }
        Ok(self.stack.pop().expect("program nets exactly one value"))
    }

    /// The prefetched fused probe for `gslot`, valid only when the
    /// receiver is exactly the batched row's object.
    fn batch_probe(&self, gslot: usize, oid: Oid) -> Option<(ClassId, Value)> {
        let b = self.batch.as_ref()?;
        let col = (*b.cols.get(gslot)?)?;
        if b.oids.get(b.row).copied().flatten() == Some(oid) {
            b.data[col][b.row].clone()
        } else {
            None
        }
    }

    /// Runs a compiled sub-select with its `select`/`exists` node at
    /// `depth`, mirroring the interpreter's `select_depth`/`iterate`/
    /// `iterate_bindings` chain instruction for instruction: the same
    /// evaluation order, the same depth and budget charges, the same
    /// actuals frame (reported on success *and* error, like `iterate`),
    /// and the same error surfaces — filter and collection errors
    /// propagate immediately, projection errors and `note_rows` breaches
    /// stop the iteration and surface after the actuals are folded in.
    fn run_sub(&mut self, sub: &SubSelect, depth: usize, frame: usize) -> Result<Value> {
        let mut actuals = crate::plan::ScanActuals::default();
        let mut out = BTreeSet::new();
        let mut err: Option<QueryError> = None;
        let mut found = false;
        let r = self.sub_bindings(
            sub,
            0,
            depth,
            frame,
            &mut actuals,
            &mut out,
            &mut err,
            &mut found,
        );
        crate::plan::add_actuals(&actuals);
        r?;
        if let Some(e) = err {
            return Err(e);
        }
        if sub.proj.is_none() {
            // `exists`: the interpreter never looks at `the` or the
            // projection — a first match is the whole answer.
            return Ok(Value::Bool(found));
        }
        if sub.the {
            if out.len() == 1 {
                Ok(out.into_iter().next().expect("len checked"))
            } else {
                Err(QueryError::TheCardinality { got: out.len() })
            }
        } else {
            Ok(Value::Set(out))
        }
    }

    /// The binding loops of a compiled sub-select, recursion mirroring
    /// `iterate_bindings`: collections re-evaluate per enclosing
    /// iteration at `depth + 1`, the leaf charges the filter and
    /// projection at `depth + 1`, and `Ok(false)` short-circuits the
    /// whole nest (first `exists` match, captured projection error,
    /// row-budget breach).
    #[allow(clippy::too_many_arguments)]
    fn sub_bindings(
        &mut self,
        sub: &SubSelect,
        i: usize,
        depth: usize,
        frame: usize,
        actuals: &mut crate::plan::ScanActuals,
        out: &mut BTreeSet<Value>,
        err: &mut Option<QueryError>,
        found: &mut bool,
    ) -> Result<bool> {
        if i == sub.bindings.len() {
            actuals.rows_scanned += 1;
            if let Some(f) = &sub.filter {
                let keep = self.run_child(f, depth + 1, frame)?;
                if !truthy(&keep) {
                    return Ok(true);
                }
            }
            actuals.rows_matched += 1;
            return match &sub.proj {
                None => {
                    *found = true;
                    Ok(false)
                }
                Some(p) => match self.run_child(p, depth + 1, frame) {
                    Ok(v) => {
                        if out.insert(v) {
                            if let Some(b) = &self.budget {
                                if let Err(e) = b.note_rows(1) {
                                    *err = Some(e);
                                    return Ok(false);
                                }
                            }
                        }
                        Ok(true)
                    }
                    Err(e) => {
                        *err = Some(e);
                        Ok(false)
                    }
                },
            };
        }
        let b = &sub.bindings[i];
        let (var, reg) = (b.var, b.reg);
        let coll = match &b.coll {
            CollPlan::Prog(p) => self.run_child(p, depth + 1, frame)?,
            CollPlan::Free(n) => self.free_name(*n, depth + 1)?,
        };
        let items: Vec<Value> = match coll {
            Value::Set(s) => s.into_iter().collect(),
            Value::List(l) => l,
            Value::Null => Vec::new(),
            other => {
                return Err(QueryError::eval(format!(
                    "`from {var} in …` needs a set or list, found {}",
                    other.kind()
                )))
            }
        };
        for item in items {
            self.set_reg(frame + reg, item);
            let cont = self.sub_bindings(sub, i + 1, depth, frame, actuals, out, err, found)?;
            if !cont {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Executes a child program (a sub-select piece) with its root at
    /// depth `base`, sharing this scan's register file at `frame` and
    /// registering the program's resolution slots on first use.
    fn run_child(&mut self, prog: &Arc<Program>, base: usize, frame: usize) -> Result<Value> {
        let slot_base = self.slot_base_for(prog);
        let p = prog.clone();
        self.exec(&p, base, frame, slot_base)
    }

    /// Resolves a free name at `depth`, exactly like the evaluator: the
    /// node prologue (depth check + budget step), then named object →
    /// class extent → unknown-name error. Resolution is per call, so a
    /// rebind or repopulation mid-scan is observed like the interpreter
    /// would observe it.
    fn free_name(&mut self, name: Symbol, depth: usize) -> Result<Value> {
        self.step(depth)?;
        if let Some(oid) = self.src.named_object(name) {
            return Ok(Value::Oid(oid));
        }
        if let Some(class) = self.src.class_by_name(name) {
            return crate::source::extent_value(self.src, class);
        }
        Err(QueryError::eval(format!(
            "unknown name `{name}` (not a variable, named object, or class)"
        )))
    }

    /// Attribute access, mirroring `Evaluator::access`/`attr_of` byte for
    /// byte — with the resolve call routed through the slot cache and the
    /// object probe served from the batch prefetch when available.
    fn attr(
        &mut self,
        recv: Value,
        gslot: usize,
        name: Symbol,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Value> {
        match recv {
            Value::Null => Ok(Value::Null),
            Value::Oid(oid) => {
                // attr_of charges a second step at the access node's depth.
                if depth > eval::MAX_DEPTH {
                    return Err(eval::depth_error());
                }
                if let Some(b) = &self.budget {
                    b.step(depth)?;
                }
                // One fused object lookup yields the cache key *and* the raw
                // stored field; the field half is used only when resolution
                // says the attribute is stored (it never depends on
                // membership, so the early read is safe). The batch prefetch
                // serves the same probe without touching the source.
                let probe = self
                    .batch_probe(gslot, oid)
                    .or_else(|| self.src.resolution_class_and_field(oid, name));
                let (resolved, body, raw) = match probe {
                    Some((class, raw)) => {
                        let (res, body) = self.resolve_cached(oid, class, gslot, name)?;
                        (res, body, Some(raw))
                    }
                    // No cache key (unknown object, unimportable class):
                    // uncached resolve reproduces the interpreter's error.
                    None => (Arc::new(self.src.resolve(oid, name)?), None, None),
                };
                match &*resolved {
                    ResolvedAttr::Stored => {
                        if !args.is_empty() {
                            return Err(QueryError::eval(format!(
                                "stored attribute `{name}` takes no arguments"
                            )));
                        }
                        match raw {
                            Some(v) => Ok(v),
                            None => self.src.stored_field(oid, name),
                        }
                    }
                    ResolvedAttr::Computed {
                        params,
                        body: body_expr,
                    } => match body {
                        Some(prog) => self.run_body(&prog, oid, name, params.len(), args, depth),
                        None => self
                            .ev
                            .run_computed(oid, name, params, body_expr, args, depth),
                    },
                }
            }
            Value::Tuple(t) => {
                if !args.is_empty() {
                    return Err(QueryError::eval(format!(
                        "tuple field `{name}` takes no arguments"
                    )));
                }
                t.get(name)
                    .cloned()
                    .ok_or_else(|| QueryError::eval(format!("tuple {t} has no field `{name}`")))
            }
            other => Err(QueryError::eval(format!(
                "cannot access attribute `{name}` of a {}",
                other.kind()
            ))),
        }
    }

    /// Invokes a compiled body program: arity check, a fresh register
    /// frame (`self`, then the arguments by move), and the body's own
    /// slot range. Bit-identical to `Evaluator::run_computed` — same
    /// arity error, same `enter_body`/step ordering (the program's
    /// `EnterBody` + root `Step`), and the body bracket is closed even
    /// when the body errors.
    fn run_body(
        &mut self,
        prog: &Arc<Program>,
        oid: Oid,
        name: Symbol,
        nparams: usize,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Value> {
        if nparams != args.len() {
            return Err(QueryError::eval(format!(
                "attribute `{name}` expects {nparams} argument(s), got {}",
                args.len()
            )));
        }
        let slot_base = self.slot_base_for(prog);
        let frame = self.regs.len();
        self.regs.push(Value::Oid(oid));
        self.regs.extend(args);
        let open = self.open_bodies;
        let result = self.exec(prog, depth + 1, frame, slot_base);
        // On error the body's `ExitBody` never ran; close the bracket(s)
        // like `run_computed`'s unconditional exit.
        while self.open_bodies > open {
            self.src.exit_body();
            self.open_bodies -= 1;
        }
        self.regs.truncate(frame);
        result
    }

    /// The global-slot base for a body program, registering it (and
    /// allocating its slot caches) on first use.
    fn slot_base_for(&mut self, prog: &Arc<Program>) -> usize {
        let key = Arc::as_ptr(prog) as usize;
        if let Some((_, base)) = self.body_bases.get(&key) {
            return *base;
        }
        let base = self.caches.len();
        self.caches
            .extend(prog.slots.iter().map(|_| HashMap::new()));
        self.body_bases.insert(key, (prog.clone(), base));
        base
    }

    /// `DataSource::resolve` through the slot's inline cache, keyed by the
    /// already-fetched resolution `class`. The purity verdict is asked once
    /// per (slot, class) per scan — dropped and re-asked whenever the
    /// source bumps its resolution generation — and errors are never
    /// cached (the first error aborts the scan anyway). A class-pure
    /// computed attribute gets its body compiled here, once.
    ///
    /// Slot-cache soundness across body depths: a given slot only ever
    /// executes at one body-privilege polarity — outer-program slots
    /// outside any `EnterBody` bracket this scan opened, body-program
    /// slots always inside one (nesting depth may vary, but visibility is
    /// a binary in-body/not-in-body distinction) — so one verdict per
    /// (slot, class) cannot be observed from the other polarity.
    fn resolve_cached(
        &mut self,
        oid: Oid,
        class: ClassId,
        gslot: usize,
        name: Symbol,
    ) -> Result<(Arc<ResolvedAttr>, Option<Arc<Program>>)> {
        let gen_now = self.src.resolution_generation();
        if gen_now != self.gen {
            // Scan-visible resolution state changed (population bracket,
            // template instantiation): every cached verdict is suspect.
            // Maps are cleared in place — body programs keep their slot
            // ranges so in-flight frames stay valid.
            for m in &mut self.caches {
                m.clear();
            }
            self.gen = gen_now;
        }
        match self.caches[gslot].get(&class) {
            Some(SlotEntry::Pure { res, body }) => {
                self.cache_hits += 1;
                Ok((res.clone(), body.clone()))
            }
            Some(SlotEntry::Impure) => {
                // The verdict ("re-resolve every row") is itself cached —
                // a hit, even though a fresh resolve follows.
                self.cache_hits += 1;
                Ok((self.src.resolve(oid, name).map(Arc::new)?, None))
            }
            None => {
                self.cache_misses += 1;
                let r = Arc::new(self.src.resolve(oid, name)?);
                if self.src.resolution_is_class_pure(class, name) {
                    let body = match &*r {
                        ResolvedAttr::Computed { params, body } => {
                            compile_body(params, body).map(Arc::new)
                        }
                        ResolvedAttr::Stored => None,
                    };
                    self.caches[gslot].insert(
                        class,
                        SlotEntry::Pure {
                            res: r.clone(),
                            body: body.clone(),
                        },
                    );
                    Ok((r, body))
                } else {
                    self.caches[gslot].insert(class, SlotEntry::Impure);
                    Ok((r, None))
                }
            }
        }
    }
}

// --- whole-query driver ---------------------------------------------------

/// The compiled pieces of a canonical single-binding class scan
/// (`select [the] proj from V in Class [where filter]`).
pub struct SelectScan {
    class: ClassId,
    filter: Option<Program>,
    proj: Program,
}

/// Compiles the scan pieces of `q` when it has the canonical shape: one
/// binding, collection is a plain class name (not shadowed by a named
/// object), and the filter and projection both compile.
pub fn compile_select_scan(src: &dyn DataSource, q: &SelectExpr) -> Option<SelectScan> {
    if q.bindings.len() != 1 {
        return None;
    }
    let (var, coll) = &q.bindings[0];
    let Expr::Name(coll_name) = coll else {
        return None;
    };
    // resolve_name order is variable → named object → class extent; a
    // named object shadowing the class would change the collection.
    if src.named_object(*coll_name).is_some() {
        return None;
    }
    let class = src.class_by_name(*coll_name)?;
    let vars = [*var];
    let filter = match q.filter.as_deref() {
        Some(f) => Some(compile_predicate(f, &vars)?),
        None => None,
    };
    let proj = compile_predicate(&q.proj, &vars)?;
    Some(SelectScan {
        class,
        filter,
        proj,
    })
}

/// Attempts compiled execution of a whole top-level expression. `None`
/// means the engine is off or the shape is not covered — the caller falls
/// back to the interpreter. `Some(result)` is bit-identical to what
/// `eval_expr` would have produced (values, errors, budget accounting),
/// with one documented exception: when the cost-based planner is enabled
/// and may reorder a multi-binding select (no budget installed,
/// independent class-extent bindings), the *values* are identical but a
/// filter that errors on some rows may surface a different row's error
/// (standard predicate-reorder semantics; see `planner`).
pub(crate) fn try_run_compiled(src: &dyn DataSource, expr: &Expr) -> Option<Result<Value>> {
    if !compiled_enabled() {
        return None;
    }
    let forced = engine_mode() == EngineMode::Compiled;
    crate::planner::clear_last_decision();
    let Expr::Select(q) = expr else {
        // Non-select top levels (including a bare `exists(...)`) compile
        // when covered and run as a single program evaluation.
        match compile_predicate(expr, &[]) {
            Some(prog) => return Some(run_compiled_expr(src, &prog)),
            None => {
                if forced {
                    note_fallback();
                }
                return None;
            }
        }
    };
    // Canonical single-binding class scan: the batched fast path, with
    // the planner choosing between sequential scan and index pushdown.
    if let Some(scan) = compile_select_scan(src, q) {
        if crate::planner::planner_enabled() {
            return Some(run_planned_select(src, expr, q, &scan));
        }
        return Some(run_select_scan(src, q, &scan));
    }
    // Multi-binding over independent class extents: the planner may pick
    // a cheapest-first binding order. Only when no budget is installed —
    // reordering preserves values but not the exact charge sequence.
    if crate::planner::planner_enabled() && budget::current().is_none() {
        if let Some(r) = try_run_planned_join(src, expr, q) {
            return Some(r);
        }
    }
    // General shapes — multi-binding, nested selects — compile into
    // sub-select subroutines with the interpreter's exact semantics.
    match compile_predicate(expr, &[]) {
        Some(prog) => Some(run_compiled_expr(src, &prog)),
        None => {
            if forced {
                note_fallback();
            }
            None
        }
    }
}

/// Runs a fully compiled general expression (multi-binding or nested
/// selects, a bare `exists`): the program roots at depth 0, sub-selects
/// do their own row accounting and actuals reporting, and the scan's
/// cache/batch counters fold into the actuals frame.
fn run_compiled_expr(src: &dyn DataSource, prog: &Program) -> Result<Value> {
    let _span = ov_oodb::span!("query.compiled_scan");
    let mut scan = Scan::new(prog, src);
    let r = scan.run(0);
    crate::plan::add_actuals(&scan.take_actuals());
    r
}

/// Runs a planned single-binding scan: consult the plan cache / cost
/// model, execute the chosen strategy (validating it — a pushdown whose
/// index is missing demotes to sequential), then feed the actual row
/// count back for drift detection and publish the decision for EXPLAIN.
fn run_planned_select(
    src: &dyn DataSource,
    expr: &Expr,
    q: &SelectExpr,
    scan: &SelectScan,
) -> Result<Value> {
    let decision = crate::planner::plan_select(src, expr, q);
    let r = match &decision.strategy {
        crate::planner::Strategy::IndexPushdown { attr, value } => {
            match src.indexed_lookup(scan.class, *attr, value) {
                Some(candidates) => run_pushdown_scan(src, q, scan, candidates),
                None => {
                    // The plan assumed an index that isn't there (cold
                    // statistics, dropped index): demote the cached plan
                    // so later executions skip the doomed probe.
                    crate::planner::demote_to_seq(expr);
                    run_select_scan(src, q, scan)
                }
            }
        }
        _ => run_select_scan(src, q, scan),
    };
    let rows = match &r {
        Ok(Value::Set(s)) => Some(s.len() as u64),
        Ok(_) => Some(1),
        Err(_) => None,
    };
    crate::planner::record_outcome(expr, decision, rows);
    r
}

/// Runs a compiled single-binding scan over index `candidates` instead
/// of the full extent. Candidates are re-tested against the full
/// compiled filter (the index only served one equality conjunct), in
/// oid order, batched like the sequential scan. Only reachable through
/// the planner, which owns the cost decision; results are identical to
/// the sequential scan because the index is exact on its conjunct and
/// the filter re-runs in full.
fn run_pushdown_scan(
    src: &dyn DataSource,
    q: &SelectExpr,
    scan: &SelectScan,
    candidates: Vec<Oid>,
) -> Result<Value> {
    let _span = ov_oodb::span!("query.compiled_scan");
    let budget = budget::current();
    let mut filter = scan.filter.as_ref().map(|p| Scan::new(p, src));
    let mut proj = Scan::new(&scan.proj, src);
    let mut actuals = crate::plan::ScanActuals::default();
    let result = (|| -> Result<BTreeSet<Value>> {
        proj.step(0)?; // the `select` node itself
        proj.step(1)?; // the collection name
        let batch = batch_rows();
        let chunk_len = if batch == 0 {
            candidates.len().max(1)
        } else {
            batch
        };
        let mut out = BTreeSet::new();
        for chunk in candidates.chunks(chunk_len) {
            let rows: Vec<Value> = chunk.iter().map(|&o| Value::Oid(o)).collect();
            if batch > 0 {
                if let Some(f) = &mut filter {
                    f.begin_batch(0, &rows);
                }
                proj.begin_batch(0, &rows);
            }
            for (i, row) in rows.iter().enumerate() {
                actuals.rows_scanned += 1;
                if let Some(f) = &mut filter {
                    f.bind(0, row.clone());
                    if !truthy(&f.run_row(1, i)?) {
                        continue;
                    }
                }
                actuals.rows_matched += 1;
                proj.bind(0, row.clone());
                let v = proj.run_row(1, i)?;
                if out.insert(v) {
                    if let Some(b) = &budget {
                        b.note_rows(1)?;
                    }
                }
            }
        }
        Ok(out)
    })();
    if let Some(f) = &mut filter {
        actuals.absorb(&f.take_actuals());
    }
    actuals.absorb(&proj.take_actuals());
    crate::plan::add_actuals(&actuals);
    let out = result?;
    if q.the {
        if out.len() == 1 {
            Ok(out.into_iter().next().expect("len checked"))
        } else {
            Err(QueryError::TheCardinality { got: out.len() })
        }
    } else {
        Ok(Value::Set(out))
    }
}

/// Attempts the planner's reordered nested-loop join for a multi-binding
/// select. Applicability is strict — every collection a free class name
/// (independent extents, so order cannot change the result set),
/// distinct variables, every filter leg analyzable and free of nested
/// selects / free names / `self`, everything compiles — and `None`
/// falls through to the exact-order compiled path. Filter legs are
/// pushed down to the outermost binding level that has all their
/// variables in scope, so a selective leg prunes whole subtrees of the
/// loop nest.
fn try_run_planned_join(
    src: &dyn DataSource,
    expr: &Expr,
    q: &SelectExpr,
) -> Option<Result<Value>> {
    use crate::planner::{mentioned_vars, plan_join, record_outcome, Strategy};
    if q.bindings.len() < 2 {
        return None;
    }
    let vars: Vec<Symbol> = q.bindings.iter().map(|(v, _)| *v).collect();
    for (i, v) in vars.iter().enumerate() {
        if vars[..i].contains(v) {
            return None; // shadowed variables need exact-order scoping
        }
    }
    let mut classes = Vec::with_capacity(vars.len());
    for (_, coll) in &q.bindings {
        let Expr::Name(n) = coll else { return None };
        if vars.contains(n) || src.named_object(*n).is_some() {
            return None;
        }
        classes.push((*n, src.class_by_name(*n)?));
    }
    // Every leg must be reorder-safe, and we need its variable set to
    // assign it a level.
    let legs: Vec<&Expr> = q
        .filter
        .as_deref()
        .map(crate::planner::conjuncts)
        .unwrap_or_default();
    let mut leg_vars = Vec::with_capacity(legs.len());
    for leg in &legs {
        leg_vars.push(mentioned_vars(leg, &vars)?);
    }
    // Extents are fetched once (the exact path re-evaluates per
    // iteration; with independent class extents and a shared snapshot
    // the sets are identical).
    let mut extents = Vec::with_capacity(classes.len());
    let mut cards = Vec::with_capacity(classes.len());
    for (_, class) in &classes {
        let ext = src.extent(*class).ok()?;
        cards.push(ext.len() as u64);
        extents.push(ext);
    }
    let class_names: Vec<Symbol> = classes.iter().map(|(n, _)| *n).collect();
    let decision = plan_join(src, expr, q, &class_names, &cards);
    let Strategy::Join { order } = &decision.strategy else {
        return None;
    };
    // A cached plan could in principle disagree with this query's shape
    // (fingerprint collision): validate it is a permutation of our
    // binding indices before trusting it.
    let mut seen = vec![false; vars.len()];
    let valid = order.len() == vars.len()
        && order
            .iter()
            .all(|&i| i < vars.len() && !std::mem::replace(&mut seen[i], true));
    if !valid {
        return None;
    }
    // Reordered scopes: position p in the nest binds original binding
    // order[p] into register p.
    let order_vars: Vec<Symbol> = order.iter().map(|&i| vars[i]).collect();
    let pos_of = |orig: usize| order.iter().position(|&i| i == orig).expect("permutation");
    // Assign each leg to the innermost nest position that completes its
    // variable set (legs with no variables run at position 0).
    let mut level_filters: Vec<Option<Expr>> = vec![None; vars.len()];
    for (leg, lv) in legs.iter().zip(&leg_vars) {
        let level = lv.iter().map(|&orig| pos_of(orig)).max().unwrap_or(0);
        level_filters[level] = Some(match level_filters[level].take() {
            None => (*leg).clone(),
            Some(acc) => Expr::bin(BinOp::And, acc, (*leg).clone()),
        });
    }
    let mut filter_progs: Vec<Option<Program>> = Vec::with_capacity(vars.len());
    for (p, f) in level_filters.iter().enumerate() {
        match f {
            None => filter_progs.push(None),
            Some(f) => filter_progs.push(Some(compile_predicate(f, &order_vars[..=p])?)),
        }
    }
    let proj_prog = compile_predicate(&q.proj, &order_vars)?;
    // Execute the nest.
    let _span = ov_oodb::span!("query.compiled_scan");
    let mut filter_scans: Vec<Option<Scan>> = filter_progs
        .iter()
        .map(|p| p.as_ref().map(|p| Scan::new(p, src)))
        .collect();
    let mut proj_scan = Scan::new(&proj_prog, src);
    let ordered_extents: Vec<&[Oid]> = order.iter().map(|&i| extents[i].as_slice()).collect();
    let mut actuals = crate::plan::ScanActuals::default();
    let mut out = BTreeSet::new();
    let mut row: Vec<Value> = Vec::with_capacity(vars.len());
    let result = join_nest(
        &ordered_extents,
        &mut filter_scans,
        &mut row,
        &mut proj_scan,
        &mut out,
        &mut actuals,
    );
    for f in filter_scans.iter_mut().flatten() {
        actuals.absorb(&f.take_actuals());
    }
    actuals.absorb(&proj_scan.take_actuals());
    crate::plan::add_actuals(&actuals);
    let rows = out.len() as u64;
    let r = (|| -> Result<Value> {
        result?;
        if q.the {
            if out.len() == 1 {
                Ok(out.into_iter().next().expect("len checked"))
            } else {
                Err(QueryError::TheCardinality { got: out.len() })
            }
        } else {
            Ok(Value::Set(out))
        }
    })();
    record_outcome(expr, decision, r.as_ref().ok().map(|_| rows));
    Some(r)
}

/// One level of the reordered join nest: iterate this level's extent,
/// apply the level's pushed-down filter with registers `0..=level`
/// bound, and recurse. Leaves project with every register bound.
fn join_nest(
    extents: &[&[Oid]],
    filters: &mut [Option<Scan>],
    row: &mut Vec<Value>,
    proj: &mut Scan,
    out: &mut BTreeSet<Value>,
    actuals: &mut crate::plan::ScanActuals,
) -> Result<()> {
    let Some((ext, rest_ext)) = extents.split_first() else {
        actuals.rows_matched += 1;
        for (r, v) in row.iter().enumerate() {
            proj.bind(r, v.clone());
        }
        let v = proj.run(1)?;
        out.insert(v);
        return Ok(());
    };
    let (filter, rest_f) = filters
        .split_first_mut()
        .expect("one filter slot per level");
    for &oid in *ext {
        row.push(Value::Oid(oid));
        let keep = match filter {
            None => true,
            Some(scan) => {
                actuals.rows_scanned += 1;
                for (r, v) in row.iter().enumerate() {
                    scan.bind(r, v.clone());
                }
                truthy(&scan.run(1)?)
            }
        };
        if keep {
            join_nest(rest_ext, rest_f, row, proj, out, actuals)?;
        }
        row.pop();
    }
    Ok(())
}

/// Runs a compiled canonical scan, charging the budget exactly as the
/// interpreter's `eval_expr` → `select_depth` → `iterate_bindings` chain
/// would: one step for the `select` node (depth 0), one for the collection
/// name (depth 1), the filter and projection at depth 1 per row, and one
/// `note_rows` per newly inserted result. The extent is walked in
/// columnar batches ([`batch_rows`]-sized); rows inside a batch still
/// execute — and charge — strictly in order, so a budget breach or error
/// stops at the exact row the interpreter would.
/// Batches per scan whose prefetched columns feed the statistics plane
/// when profiling is on — enough for a useful sample, cheap enough to
/// never dominate a scan.
const STATS_SAMPLE_BATCHES: u32 = 4;

fn run_select_scan(src: &dyn DataSource, q: &SelectExpr, scan: &SelectScan) -> Result<Value> {
    let _span = ov_oodb::span!("query.compiled_scan");
    let budget = budget::current();
    let mut filter = scan.filter.as_ref().map(|p| Scan::new(p, src));
    let mut proj = Scan::new(&scan.proj, src);
    // The scanned collection's class name (compile_select_scan required
    // the plain-name shape), for statistics attribution.
    let coll_name = match q.bindings.first() {
        Some((_, Expr::Name(n))) => Some(*n),
        _ => None,
    };
    let profiling = ov_oodb::metrics::profiling_enabled();
    let mut stats_batches_left = if profiling { STATS_SAMPLE_BATCHES } else { 0 };
    let mut actuals = crate::plan::ScanActuals::default();
    // The loop runs in a closure so measured actuals are reported even
    // when a row errors or breaches the budget mid-scan.
    let result = (|| -> Result<BTreeSet<Value>> {
        proj.step(0)?; // the `select` node itself
        proj.step(1)?; // the collection name
        let extent = src.extent(scan.class)?;
        if profiling {
            if let Some(class) = coll_name {
                ov_oodb::stats::stats()
                    .class(class)
                    .note_cardinality(src.resolution_generation(), extent.len() as u64);
            }
        }
        let batch = batch_rows();
        let chunk_len = if batch == 0 {
            extent.len().max(1)
        } else {
            batch
        };
        let mut out = BTreeSet::new();
        for chunk in extent.chunks(chunk_len) {
            let rows: Vec<Value> = chunk.iter().map(|&o| Value::Oid(o)).collect();
            if batch > 0 {
                if let Some(f) = &mut filter {
                    f.begin_batch(0, &rows);
                }
                proj.begin_batch(0, &rows);
                if stats_batches_left > 0 {
                    if let Some(class) = coll_name {
                        if let Some(f) = &filter {
                            f.feed_batch_stats(class);
                        }
                        proj.feed_batch_stats(class);
                        stats_batches_left -= 1;
                    }
                }
            }
            for (i, row) in rows.iter().enumerate() {
                actuals.rows_scanned += 1;
                if let Some(f) = &mut filter {
                    f.bind(0, row.clone());
                    if !truthy(&f.run_row(1, i)?) {
                        continue;
                    }
                }
                actuals.rows_matched += 1;
                proj.bind(0, row.clone());
                let v = proj.run_row(1, i)?;
                if out.insert(v) {
                    if let Some(b) = &budget {
                        b.note_rows(1)?;
                    }
                }
            }
        }
        Ok(out)
    })();
    if let Some(f) = &mut filter {
        actuals.absorb(&f.take_actuals());
    }
    actuals.absorb(&proj.take_actuals());
    crate::plan::add_actuals(&actuals);
    let out = result?;
    if q.the {
        if out.len() == 1 {
            Ok(out.into_iter().next().expect("len checked"))
        } else {
            Err(QueryError::TheCardinality { got: out.len() })
        }
    } else {
        Ok(Value::Set(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Env;
    use crate::parser::parse_expr;
    use ov_oodb::{sym, AttrDef, Database, Type};

    fn staff() -> Database {
        let mut db = Database::new(sym("Staff"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::computed(
                    sym("Doubled"),
                    Type::Int,
                    parse_expr("self.Age + self.Age").unwrap(),
                ),
            )
            .unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::method(
                    sym("Plus"),
                    vec![(sym("x"), Type::Int)],
                    Type::Int,
                    parse_expr("self.Age + x").unwrap(),
                ),
            )
            .unwrap();
        for (name, age) in [("Maggy", 65), ("Denis", 70), ("Tony", 30)] {
            db.create_object(
                person,
                Value::tuple([("Name", Value::str(name)), ("Age", Value::Int(age))]),
            )
            .unwrap();
        }
        db
    }

    /// Runs `src` both ways against every Person and asserts agreement.
    fn assert_differential(db: &Database, src: &str) {
        let expr = parse_expr(src).unwrap();
        let p = sym("P");
        let prog =
            compile_predicate(&expr, &[p]).unwrap_or_else(|| panic!("`{src}` should compile"));
        let mut scan = Scan::new(&prog, db);
        let ev = Evaluator::new(db);
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        for oid in db.deep_extent(person) {
            let mut env = Env::new();
            env.bind(p, Value::Oid(oid));
            let interpreted = ev.eval(&expr, &mut env);
            scan.bind(0, Value::Oid(oid));
            let compiled = scan.run(0);
            assert_eq!(compiled, interpreted, "divergence on `{src}`");
        }
    }

    #[test]
    fn covered_expressions_agree_with_interpreter() {
        let db = staff();
        for src in [
            "P.Age >= 65",
            r#"P.Name = "Maggy""#,
            "P.Age + 1 * 2 - 3",
            "P.Age >= 30 and P.Age < 70",
            r#"P.Name = "Tony" or P.Age > 65"#,
            "not (P.Age = 30)",
            "if P.Age > 50 then P.Name else P.Age",
            "P.Doubled = 140",
            "P.Plus(5) > 40",
            "-P.Age < 0",
            "P.Age / 2 >= 15",
            "{P.Age, 1} = {1}",
            "[A: P.Name, B: P.Age].B",
            "[X: 1, Y: {P.Age}] = [X: 1]",
        ] {
            assert_differential(&db, src);
        }
    }

    #[test]
    fn errors_agree_with_interpreter() {
        let db = staff();
        for src in [
            "P.Age / 0",            // division by zero
            "P.Age % 0",            // modulo by zero
            r#"P.Name < 1"#,        // unordered kinds
            "-P.Name",              // cannot negate
            "P.Ghost = 1",          // unknown attribute
            r#"P.Name ++ 1 = "x""#, // concat kind error
            "P.Plus() = 1",         // arity error through a compiled body
            "P.Plus(1, 2) = 1",     // arity error the other way
            r#"P.Plus("x") = 1"#,   // body errors on a bad argument
            "P.Age(1) = 1",         // stored attribute with arguments
        ] {
            assert_differential(&db, src);
        }
    }

    #[test]
    fn uncovered_shapes_do_not_compile() {
        for src in [
            "count((select Q from Q in Person))",
            "P in Person", // free name `Person`
            "self.Age",    // `self` is not a scan variable
            "maggy.Age",   // free name
        ] {
            let expr = parse_expr(src).unwrap();
            assert!(
                compile_predicate(&expr, &[sym("P")]).is_none(),
                "`{src}` should not compile"
            );
        }
    }

    #[test]
    fn nested_selects_agree_with_interpreter() {
        let db = staff();
        for src in [
            "exists(select Q from Q in Person where Q.Age > P.Age)",
            "exists(select Q from Q in Person where Q.Age > 100)",
            "(select the Q.Age from Q in Person where Q.Name = P.Name) = P.Age",
            "(select Q.Name from Q in Person where Q.Age >= P.Age) = {P.Name}",
            // `the` over a non-singleton errors; error must match bit-for-bit.
            "(select the Q.Name from Q in Person) = P.Name",
            // Sub-select over a sub-select (free class name two levels down).
            "exists(select Q from Q in (select R from R in Person where R.Age > 60) \
             where Q.Age > P.Age)",
            // Correlated inner collection: the outer row's value drives it.
            "exists(select X from X in {P.Age, 1} where X > 50)",
        ] {
            assert_differential(&db, src);
        }
    }

    #[test]
    fn multi_binding_and_nested_selects_run_compiled_at_top_level() {
        let db = staff();
        for src in [
            "select P.Name from P in Person, Q in Person where P.Age < Q.Age",
            "select [A: P.Name, B: Q.Name] from P in Person, Q in Person \
             where P.Age + Q.Age = 135",
            "select P.Name from P in Person \
             where exists(select Q from Q in Person where Q.Age > P.Age)",
            "select P.Name from P in Person, Q in Person",
        ] {
            let expr = parse_expr(src).unwrap();
            let interp = crate::eval::eval_expr(&db, &expr);
            let on = crate::planner::with_planner(true, || try_run_compiled(&db, &expr))
                .unwrap_or_else(|| panic!("`{src}` should take a compiled path (planner on)"));
            let off = crate::planner::with_planner(false, || try_run_compiled(&db, &expr))
                .unwrap_or_else(|| panic!("`{src}` should take a compiled path (planner off)"));
            assert_eq!(on, interp, "planner-on divergence on `{src}`");
            assert_eq!(off, interp, "planner-off divergence on `{src}`");
        }
    }

    #[test]
    fn sub_select_budget_charges_match_the_interpreter() {
        let db = staff();
        for src in [
            "select P.Name from P in Person, Q in Person where P.Age < Q.Age",
            "select P.Name from P in Person \
             where exists(select Q from Q in Person where Q.Age > P.Age)",
        ] {
            let expr = parse_expr(src).unwrap();
            let interp_budget = std::sync::Arc::new(crate::Budget::new());
            let interp =
                crate::budget::with(interp_budget.clone(), || crate::eval::eval_expr(&db, &expr));
            let comp_budget = std::sync::Arc::new(crate::Budget::new());
            let compiled = crate::budget::with(comp_budget.clone(), || {
                try_run_compiled(&db, &expr)
                    .unwrap_or_else(|| panic!("`{src}` should take a compiled path"))
            });
            assert_eq!(compiled, interp, "value divergence on `{src}`");
            assert_eq!(
                comp_budget.steps_used(),
                interp_budget.steps_used(),
                "step-charge divergence on `{src}`"
            );
            assert_eq!(
                comp_budget.rows_used(),
                interp_budget.rows_used(),
                "row-charge divergence on `{src}`"
            );
        }
    }

    #[test]
    fn forced_mode_counts_interpreter_fallbacks() {
        let db = staff();
        let before = compile_fallbacks();
        let expr = parse_expr("count((select Q from Q in Person))").unwrap();
        with_engine_mode(EngineMode::Compiled, || {
            assert!(try_run_compiled(&db, &expr).is_none());
        });
        assert!(
            compile_fallbacks() > before,
            "forced-compiled fallback should bump compile.fallbacks"
        );
    }

    #[test]
    fn short_circuit_skips_rhs_like_the_interpreter() {
        let db = staff();
        // The rhs errors (division by zero) but the lhs decides: `and`
        // with falsy lhs and `or` with truthy lhs must not touch it.
        assert_differential(&db, "P.Age < 0 and 1 / 0 = 1");
        assert_differential(&db, "P.Age > 0 or 1 / 0 = 1");
    }

    #[test]
    fn recursive_body_hits_the_same_depth_limit() {
        let mut db = staff();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::computed(sym("Loop"), Type::Int, parse_expr("self.Loop").unwrap()),
            )
            .unwrap();
        assert_differential(&db, "P.Loop = 1");
    }

    #[test]
    fn budget_steps_match_the_interpreter_exactly() {
        let db = staff();
        let expr = parse_expr("P.Age >= 30 and P.Doubled < 200").unwrap();
        let p = sym("P");
        let prog = compile_predicate(&expr, &[p]).unwrap();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        let oids = db.deep_extent(person);

        let count_steps = |compiled: bool| -> u64 {
            let b = Arc::new(Budget::new());
            budget::with(b.clone(), || {
                if compiled {
                    let mut scan = Scan::new(&prog, &db);
                    for &oid in &oids {
                        scan.bind(0, Value::Oid(oid));
                        scan.run(0).unwrap();
                    }
                } else {
                    let ev = Evaluator::new(&db);
                    for &oid in &oids {
                        let mut env = Env::new();
                        env.bind(p, Value::Oid(oid));
                        ev.eval(&expr, &mut env).unwrap();
                    }
                }
            });
            b.steps_used()
        };
        assert_eq!(count_steps(true), count_steps(false));
    }

    #[test]
    fn budget_breach_trips_at_the_same_step() {
        let db = staff();
        let expr = parse_expr("P.Doubled > 100").unwrap();
        let p = sym("P");
        let prog = compile_predicate(&expr, &[p]).unwrap();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        let oid = db.deep_extent(person)[0];

        for max in 0..12 {
            let run_with = |compiled: bool| {
                let b = Arc::new(Budget::new().with_max_steps(max));
                let r = budget::with(b.clone(), || {
                    if compiled {
                        let mut scan = Scan::new(&prog, &db);
                        scan.bind(0, Value::Oid(oid));
                        scan.run(0)
                    } else {
                        let ev = Evaluator::new(&db);
                        let mut env = Env::new();
                        env.bind(p, Value::Oid(oid));
                        ev.eval(&expr, &mut env)
                    }
                });
                (r, b.steps_used())
            };
            assert_eq!(run_with(true), run_with(false), "max_steps = {max}");
        }
    }

    #[test]
    fn resolution_cache_reuses_pure_resolutions() {
        let db = staff();
        let expr = parse_expr("P.Age >= 65").unwrap();
        let prog = compile_predicate(&expr, &[sym("P")]).unwrap();
        let mut scan = Scan::new(&prog, &db);
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        for oid in db.deep_extent(person) {
            scan.bind(0, Value::Oid(oid));
            scan.run(0).unwrap();
        }
        // One slot (P.Age), one class, decided Pure after the first row.
        assert_eq!(scan.caches.len(), 1);
        assert!(matches!(
            scan.caches[0].get(&person),
            Some(SlotEntry::Pure { .. })
        ));
    }

    #[test]
    fn computed_bodies_compile_into_the_scan() {
        let db = staff();
        let expr = parse_expr("P.Doubled").unwrap();
        let prog = compile_predicate(&expr, &[sym("P")]).unwrap();
        let mut scan = Scan::new(&prog, &db);
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        let ages = [65, 70, 30];
        for (i, oid) in db.deep_extent(person).into_iter().enumerate() {
            scan.bind(0, Value::Oid(oid));
            assert_eq!(scan.run(0).unwrap(), Value::Int(2 * ages[i]));
        }
        // The Doubled slot cached a Pure entry with a compiled body, and
        // the body program registered its own slot range (self.Age twice
        // → two body slots appended after the outer slot).
        assert!(matches!(
            scan.caches[0].get(&person),
            Some(SlotEntry::Pure { body: Some(_), .. })
        ));
        assert_eq!(scan.body_bases.len(), 1);
        assert_eq!(scan.caches.len(), 3);
    }

    #[test]
    fn batched_rows_are_bit_identical_to_row_at_a_time() {
        let db = staff();
        let expr = parse_expr("select P.Doubled from P in Person where P.Age >= 30").unwrap();
        let reference = crate::eval::eval_expr(&db, &expr);
        for rows in [0, 1, 2, 3, 1024] {
            let (result, steps) = with_batch_rows(rows, || {
                let b = Arc::new(Budget::new());
                let r = budget::with(b.clone(), || {
                    try_run_compiled(&db, &expr).expect("should compile")
                });
                (r, b.steps_used())
            });
            assert_eq!(result, reference, "batch_rows = {rows}");
            let b = Arc::new(Budget::new());
            let interp_steps = {
                budget::with(b.clone(), || crate::eval::eval_expr(&db, &expr)).unwrap();
                b.steps_used()
            };
            assert_eq!(steps, interp_steps, "steps at batch_rows = {rows}");
        }
    }

    #[test]
    fn top_level_select_agrees_with_interpreter() {
        let db = staff();
        for src in [
            "select P.Name from P in Person where P.Age >= 65",
            "select P from P in Person",
            "select the P from P in Person where P.Age = 30",
            "select the P from P in Person",     // cardinality error
            "select P.Age / 0 from P in Person", // projection error
            "select [N: P.Name, D: P.Doubled] from P in Person",
        ] {
            let expr = parse_expr(src).unwrap();
            let compiled =
                try_run_compiled(&db, &expr).unwrap_or_else(|| panic!("`{src}` should compile"));
            let interpreted = crate::eval::eval_expr(&db, &expr);
            assert_eq!(compiled, interpreted, "divergence on `{src}`");
        }
    }

    #[test]
    fn interp_mode_disables_compilation() {
        let db = staff();
        let expr = parse_expr("select P from P in Person").unwrap();
        with_engine_mode(EngineMode::Interp, || {
            assert!(try_run_compiled(&db, &expr).is_none());
        });
        assert!(try_run_compiled(&db, &expr).is_some());
    }

    #[test]
    fn engine_mode_override_scopes_to_the_thread() {
        assert_eq!(engine_mode(), EngineMode::Auto);
        with_engine_mode(EngineMode::Interp, || {
            assert_eq!(engine_mode(), EngineMode::Interp);
            // Nested overrides stack…
            with_engine_mode(EngineMode::Compiled, || {
                assert_eq!(engine_mode(), EngineMode::Compiled);
            });
            assert_eq!(engine_mode(), EngineMode::Interp);
            // …and other threads see the process default, not our override.
            std::thread::spawn(|| assert_eq!(engine_mode(), EngineMode::Auto))
                .join()
                .unwrap();
        });
        assert_eq!(engine_mode(), EngineMode::Auto);
    }

    #[test]
    fn engine_mode_round_trips_its_spelling() {
        for mode in [EngineMode::Auto, EngineMode::Compiled, EngineMode::Interp] {
            assert_eq!(EngineMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(EngineMode::parse("jit"), None);
    }

    /// A source whose resolution can change mid-scan, announced via the
    /// generation counter — the shape of a view's population brackets.
    struct GenSource {
        db: Database,
        generation: std::sync::atomic::AtomicU64,
        /// When set, `Age` resolves to a computed constant instead of the
        /// stored field.
        redefined: std::sync::atomic::AtomicBool,
    }

    impl DataSource for GenSource {
        fn class_by_name(&self, name: Symbol) -> Option<ClassId> {
            DataSource::class_by_name(&self.db, name)
        }
        fn class_name(&self, c: ClassId) -> Symbol {
            DataSource::class_name(&self.db, c)
        }
        fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
            DataSource::is_subclass(&self.db, sub, sup)
        }
        fn ancestors(&self, c: ClassId) -> Vec<ClassId> {
            DataSource::ancestors(&self.db, c)
        }
        fn class_of(&self, oid: Oid) -> Result<ClassId> {
            DataSource::class_of(&self.db, oid)
        }
        fn extent(&self, class: ClassId) -> Result<Vec<Oid>> {
            DataSource::extent(&self.db, class)
        }
        fn is_member(&self, oid: Oid, class: ClassId) -> Result<bool> {
            DataSource::is_member(&self.db, oid, class)
        }
        fn resolve(&self, oid: Oid, name: Symbol) -> Result<ResolvedAttr> {
            if name == sym("Age") && self.redefined.load(Ordering::Relaxed) {
                return Ok(ResolvedAttr::Computed {
                    params: vec![],
                    body: parse_expr("999").unwrap(),
                });
            }
            DataSource::resolve(&self.db, oid, name)
        }
        fn stored_field(&self, oid: Oid, name: Symbol) -> Result<Value> {
            DataSource::stored_field(&self.db, oid, name)
        }
        fn named_object(&self, name: Symbol) -> Option<Oid> {
            DataSource::named_object(&self.db, name)
        }
        fn object_exists(&self, oid: Oid) -> bool {
            DataSource::object_exists(&self.db, oid)
        }
        fn attr_sig(&self, c: ClassId, name: Symbol) -> Option<ov_oodb::AttrSig> {
            DataSource::attr_sig(&self.db, c, name)
        }
        fn class_type(&self, c: ClassId) -> Type {
            DataSource::class_type(&self.db, c)
        }
        fn resolution_class(&self, oid: Oid) -> Option<ClassId> {
            self.db.store.get(oid).map(|o| o.class)
        }
        fn resolution_is_class_pure(&self, _class: ClassId, _name: Symbol) -> bool {
            true
        }
        fn resolution_generation(&self) -> u64 {
            self.generation.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn generation_bump_invalidates_warm_slot_caches() {
        let src = GenSource {
            db: staff(),
            generation: std::sync::atomic::AtomicU64::new(0),
            redefined: std::sync::atomic::AtomicBool::new(false),
        };
        let expr = parse_expr("P.Age").unwrap();
        let prog = compile_predicate(&expr, &[sym("P")]).unwrap();
        let mut scan = Scan::new(&prog, &src);
        let person = src.class_by_name(sym("Person")).unwrap();
        let oid = DataSource::extent(&src, person).unwrap()[0];
        scan.bind(0, Value::Oid(oid));
        assert_eq!(scan.run(0).unwrap(), Value::Int(65)); // warm the cache

        // Redefine without announcing: the warm Pure(Stored) verdict is
        // (by design) served for the rest of the scan.
        src.redefined.store(true, Ordering::Relaxed);
        assert_eq!(scan.run(0).unwrap(), Value::Int(65));

        // Announce via the generation counter: the cache drops, `Age`
        // re-resolves, and the redefinition takes effect mid-scan.
        src.generation.fetch_add(1, Ordering::Relaxed);
        assert_eq!(scan.run(0).unwrap(), Value::Int(999));
    }
}
