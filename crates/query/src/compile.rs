//! The compiled predicate engine.
//!
//! The tree-walking evaluator pays per row for work that is invariant
//! across a scan: expression-tree dispatch, environment pushes/pops and
//! reverse-scan variable lookups, and — dominating everything on view
//! scans — re-running attribute *resolution* (`DataSource::resolve`) for
//! every object even though objects of one class resolve identically.
//! This module lowers an expression once, before the scan, into a flat
//! instruction stream over a small value stack:
//!
//! * scan variables become **registers** (`Reg`), written once per row;
//! * `And`/`Or`/`if` short-circuiting becomes **jump threading**, decided
//!   at compile time instead of re-discovered per row;
//! * attribute accesses become **slots** carrying a per-scan inline cache
//!   of `resolve` results keyed by the object's presentation class, used
//!   only where the source vouches (via
//!   [`DataSource::resolution_is_class_pure`]) that resolution depends on
//!   the class alone.
//!
//! The contract is **bit-identical observable behavior** with the
//! interpreter: same values, same error variants and messages, same
//! [`crate::Budget`] step/row accounting (a `Step` instruction is
//! emitted exactly where `eval_depth` would charge a step, at the same
//! depth), same depth-limit behavior, and computed attributes delegate to
//! the interpreter (`Evaluator::run_computed`) so nested bodies — budget,
//! faults, tracing, view body-privilege brackets — are literally the same
//! code. Expressions outside the covered subset (`Lit`, scan variables,
//! `Attr`, `Unary`, `Binary`, `If`) simply fail to compile and the caller
//! falls back to the interpreter, recording the scan as interpreted in
//! EXPLAIN output ([`crate::plan::Engine`]).

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use ov_oodb::{BinOp, ClassId, Expr, Oid, SelectExpr, Symbol, UnOp, Value};

use crate::budget::{self, Budget};
use crate::error::{QueryError, Result};
use crate::eval::{self, truthy, Evaluator};
use crate::source::{DataSource, ResolvedAttr};

// --- engine selection -----------------------------------------------------

/// Which engine scan paths should use. Process-wide, like the fault and
/// trace switches — scans are driven from worker threads and sessions that
/// share no state, and the mode is a diagnostic/benchmark toggle, not a
/// per-query parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Compile where the expression is covered, fall back otherwise
    /// (the default).
    Auto,
    /// Same behavior as [`EngineMode::Auto`] today (compile when covered,
    /// interpret otherwise); kept distinct so tooling can express intent
    /// explicitly.
    Compiled,
    /// Never compile; every scan runs the tree-walking interpreter.
    Interp,
}

impl EngineMode {
    /// The ovq-facing spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineMode::Auto => "auto",
            EngineMode::Compiled => "compiled",
            EngineMode::Interp => "interp",
        }
    }

    /// Parses the ovq-facing spelling.
    pub fn parse(s: &str) -> Option<EngineMode> {
        match s {
            "auto" => Some(EngineMode::Auto),
            "compiled" => Some(EngineMode::Compiled),
            "interp" => Some(EngineMode::Interp),
            _ => None,
        }
    }
}

static ENGINE_MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide engine mode.
pub fn set_engine_mode(mode: EngineMode) {
    let v = match mode {
        EngineMode::Auto => 0,
        EngineMode::Compiled => 1,
        EngineMode::Interp => 2,
    };
    ENGINE_MODE.store(v, Ordering::Relaxed);
}

/// The process-wide engine mode.
pub fn engine_mode() -> EngineMode {
    match ENGINE_MODE.load(Ordering::Relaxed) {
        1 => EngineMode::Compiled,
        2 => EngineMode::Interp,
        _ => EngineMode::Auto,
    }
}

/// Should scan paths attempt compiled execution at all?
pub fn compiled_enabled() -> bool {
    engine_mode() != EngineMode::Interp
}

// --- programs -------------------------------------------------------------

/// One instruction. The stream is laid out in evaluation order: every
/// instruction that corresponds to an expression node is preceded by the
/// node's [`Inst::Step`], so the sequence of budget charges (and the depth
/// each is charged at) is exactly the interpreter's.
#[derive(Clone, Copy, Debug)]
enum Inst {
    /// Expression-node entry: recursion-depth check plus one budget step at
    /// `base + rel` (mirrors `eval_depth`'s prologue).
    Step { rel: usize },
    /// Push a constant (from the program's pool).
    Const(usize),
    /// Push a scan variable's current value.
    Reg(usize),
    /// Pop `nargs` arguments and a receiver; perform attribute access via
    /// resolution slot `slot` (mirrors `Evaluator::access`/`attr_of`,
    /// including the second depth-check + step for object receivers).
    Attr {
        slot: usize,
        nargs: usize,
        rel: usize,
    },
    /// Pop one operand, apply a unary operator.
    Unary(UnOp),
    /// Pop two operands, apply a non-short-circuit binary operator.
    Binary(BinOp),
    /// `And` threading: pop the lhs; if falsy, push `false` and jump to
    /// `to` (past the rhs). Otherwise fall through into the rhs.
    AndShort { to: usize },
    /// `Or` threading: pop the lhs; if truthy, push `true` and jump.
    OrShort { to: usize },
    /// Pop a value, push its truthiness (normalizes an `And`/`Or` rhs).
    Booleanize,
    /// Pop the `if` condition; jump to `to` (the else arm) when falsy.
    BranchFalsy { to: usize },
    /// Unconditional jump (end of an `if` then-arm).
    Jump { to: usize },
}

/// A compiled expression: flat instructions, a constant pool, and one
/// resolution slot per attribute-access site. Compile once per scan (or
/// once per view bind), execute per row via [`Scan`].
#[derive(Clone, Debug)]
pub struct Program {
    insts: Vec<Inst>,
    consts: Vec<Value>,
    /// Attribute name per resolution slot, in slot order.
    slots: Vec<Symbol>,
    n_regs: usize,
}

impl Program {
    /// Number of scan-variable registers (the length of the `vars` slice
    /// the program was compiled with).
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }
}

/// Lowers `expr` to a [`Program`] with the scan variables `vars` mapped to
/// registers `0..vars.len()` (innermost binding wins, like `Env::lookup`).
/// Returns `None` when `expr` uses any construct outside the covered subset
/// — the caller falls back to the interpreter.
pub fn compile_predicate(expr: &Expr, vars: &[Symbol]) -> Option<Program> {
    let mut c = Compiler {
        insts: Vec::new(),
        consts: Vec::new(),
        slots: Vec::new(),
        vars,
    };
    c.emit(expr, 0)?;
    Some(Program {
        insts: c.insts,
        consts: c.consts,
        slots: c.slots,
        n_regs: vars.len(),
    })
}

struct Compiler<'a> {
    insts: Vec<Inst>,
    consts: Vec<Value>,
    slots: Vec<Symbol>,
    vars: &'a [Symbol],
}

impl Compiler<'_> {
    /// Emits code for `e` at depth `rel` relative to the program root.
    /// Every covered node nets exactly one value on the stack.
    fn emit(&mut self, e: &Expr, rel: usize) -> Option<()> {
        self.insts.push(Inst::Step { rel });
        match e {
            Expr::Lit(v) => {
                let idx = self.consts.len();
                self.consts.push(v.clone());
                self.insts.push(Inst::Const(idx));
            }
            Expr::Name(n) => {
                // Only scan variables compile; free names (named objects,
                // class extents) can be rebound or repopulated mid-scan, so
                // freezing them at compile time would diverge from the
                // interpreter. Innermost binding wins, like `Env::lookup`.
                let reg = self.vars.iter().rposition(|v| v == n)?;
                self.insts.push(Inst::Reg(reg));
            }
            Expr::Attr { recv, name, args } => {
                self.emit(recv, rel + 1)?;
                for a in args {
                    self.emit(a, rel + 1)?;
                }
                let slot = self.slots.len();
                self.slots.push(*name);
                self.insts.push(Inst::Attr {
                    slot,
                    nargs: args.len(),
                    rel,
                });
            }
            Expr::Unary { op, expr } => {
                self.emit(expr, rel + 1)?;
                self.insts.push(Inst::Unary(*op));
            }
            Expr::Binary {
                op: op @ (BinOp::And | BinOp::Or),
                lhs,
                rhs,
            } => {
                self.emit(lhs, rel + 1)?;
                let patch = self.insts.len();
                self.insts.push(match op {
                    BinOp::And => Inst::AndShort { to: 0 },
                    _ => Inst::OrShort { to: 0 },
                });
                self.emit(rhs, rel + 1)?;
                self.insts.push(Inst::Booleanize);
                let end = self.insts.len();
                self.insts[patch] = match op {
                    BinOp::And => Inst::AndShort { to: end },
                    _ => Inst::OrShort { to: end },
                };
            }
            Expr::Binary { op, lhs, rhs } => {
                self.emit(lhs, rel + 1)?;
                self.emit(rhs, rel + 1)?;
                self.insts.push(Inst::Binary(*op));
            }
            Expr::If { cond, then, els } => {
                self.emit(cond, rel + 1)?;
                let branch = self.insts.len();
                self.insts.push(Inst::BranchFalsy { to: 0 });
                self.emit(then, rel + 1)?;
                let jump = self.insts.len();
                self.insts.push(Inst::Jump { to: 0 });
                let else_start = self.insts.len();
                self.insts[branch] = Inst::BranchFalsy { to: else_start };
                self.emit(els, rel + 1)?;
                let end = self.insts.len();
                self.insts[jump] = Inst::Jump { to: end };
            }
            // Everything else — selects, aggregates, constructors, `self`,
            // free names, `isa`, `Apply` — is interpreter territory.
            _ => return None,
        }
        Some(())
    }
}

// --- execution ------------------------------------------------------------

/// Per-class verdict for one resolution slot, decided lazily on the first
/// object of each class the scan meets.
#[derive(Debug)]
enum SlotEntry {
    /// Resolution is class-pure here: reuse this result for every object
    /// of the class for the rest of the scan.
    Pure(Arc<ResolvedAttr>),
    /// The source couldn't vouch for purity: re-resolve every row.
    Impure,
}

/// A per-scan executor for one [`Program`]: the reusable value stack, the
/// register file, the captured [`Budget`], and the per-slot resolution
/// caches. Create one per scan (or per parallel chunk — caches are not
/// shared across threads), then `bind` + `run` per row.
pub struct Scan<'a> {
    prog: &'a Program,
    src: &'a dyn DataSource,
    /// Delegate for computed-attribute bodies (captures the same budget).
    ev: Evaluator<'a>,
    budget: Option<Arc<Budget>>,
    regs: Vec<Value>,
    stack: Vec<Value>,
    caches: Vec<HashMap<ClassId, SlotEntry>>,
}

impl<'a> Scan<'a> {
    /// An executor for `prog` over `src`, governed by the thread's current
    /// budget (captured once, like `Evaluator::new`).
    pub fn new(prog: &'a Program, src: &'a dyn DataSource) -> Scan<'a> {
        Scan {
            prog,
            src,
            ev: Evaluator::new(src),
            budget: budget::current(),
            regs: vec![Value::Null; prog.n_regs],
            stack: Vec::with_capacity(8),
            caches: prog.slots.iter().map(|_| HashMap::new()).collect(),
        }
    }

    /// Writes the scan variable in register `reg` for the next `run`.
    pub fn bind(&mut self, reg: usize, v: Value) {
        self.regs[reg] = v;
    }

    /// One interpreter-equivalent expression-node entry *outside* the
    /// program: the depth-limit check plus one budget step at `depth`.
    /// Scan drivers use this to account for the surrounding nodes they
    /// execute themselves (the `select` node, the collection name) exactly
    /// as the tree walker would.
    pub fn step(&self, depth: usize) -> Result<()> {
        if depth > eval::MAX_DEPTH {
            return Err(eval::depth_error());
        }
        if let Some(b) = &self.budget {
            b.step(depth)?;
        }
        Ok(())
    }

    /// Executes the program with the expression root at depth `base`
    /// (matching the depth the interpreter would evaluate the same
    /// expression at in this position).
    pub fn run(&mut self, base: usize) -> Result<Value> {
        let prog = self.prog;
        self.stack.clear();
        let mut pc = 0;
        while pc < prog.insts.len() {
            match prog.insts[pc] {
                Inst::Step { rel } => self.step(base + rel)?,
                Inst::Const(i) => self.stack.push(prog.consts[i].clone()),
                Inst::Reg(i) => self.stack.push(self.regs[i].clone()),
                Inst::Attr { slot, nargs, rel } => {
                    let args = self.stack.split_off(self.stack.len() - nargs);
                    let recv = self.stack.pop().expect("receiver on stack");
                    let v = self.attr(recv, slot, args, base + rel)?;
                    self.stack.push(v);
                }
                Inst::Unary(op) => {
                    let v = self.stack.pop().expect("operand on stack");
                    self.stack.push(eval::apply_unary(op, v)?);
                }
                Inst::Binary(op) => {
                    let r = self.stack.pop().expect("rhs on stack");
                    let l = self.stack.pop().expect("lhs on stack");
                    self.stack.push(eval::apply_binary(op, &l, &r)?);
                }
                Inst::AndShort { to } => {
                    let l = self.stack.pop().expect("lhs on stack");
                    if !truthy(&l) {
                        self.stack.push(Value::Bool(false));
                        pc = to;
                        continue;
                    }
                }
                Inst::OrShort { to } => {
                    let l = self.stack.pop().expect("lhs on stack");
                    if truthy(&l) {
                        self.stack.push(Value::Bool(true));
                        pc = to;
                        continue;
                    }
                }
                Inst::Booleanize => {
                    let v = self.stack.pop().expect("operand on stack");
                    self.stack.push(Value::Bool(truthy(&v)));
                }
                Inst::BranchFalsy { to } => {
                    let c = self.stack.pop().expect("condition on stack");
                    if !truthy(&c) {
                        pc = to;
                        continue;
                    }
                }
                Inst::Jump { to } => {
                    pc = to;
                    continue;
                }
            }
            pc += 1;
        }
        Ok(self.stack.pop().expect("program nets exactly one value"))
    }

    /// Attribute access, mirroring `Evaluator::access`/`attr_of` byte for
    /// byte — with the resolve call routed through the slot cache.
    fn attr(&mut self, recv: Value, slot: usize, args: Vec<Value>, depth: usize) -> Result<Value> {
        let name = self.prog.slots[slot];
        match recv {
            Value::Null => Ok(Value::Null),
            Value::Oid(oid) => {
                // attr_of charges a second step at the access node's depth.
                if depth > eval::MAX_DEPTH {
                    return Err(eval::depth_error());
                }
                if let Some(b) = &self.budget {
                    b.step(depth)?;
                }
                // One fused object lookup yields the cache key *and* the raw
                // stored field; the field half is used only when resolution
                // says the attribute is stored (it never depends on
                // membership, so the early read is safe).
                let (resolved, raw) = match self.src.resolution_class_and_field(oid, name) {
                    Some((class, raw)) => (self.resolve_cached(oid, class, slot, name)?, Some(raw)),
                    // No cache key (unknown object, unimportable class):
                    // uncached resolve reproduces the interpreter's error.
                    None => (Arc::new(self.src.resolve(oid, name)?), None),
                };
                match &*resolved {
                    ResolvedAttr::Stored => {
                        if !args.is_empty() {
                            return Err(QueryError::eval(format!(
                                "stored attribute `{name}` takes no arguments"
                            )));
                        }
                        match raw {
                            Some(v) => Ok(v),
                            None => self.src.stored_field(oid, name),
                        }
                    }
                    ResolvedAttr::Computed { params, body } => {
                        self.ev.run_computed(oid, name, params, body, args, depth)
                    }
                }
            }
            Value::Tuple(t) => {
                if !args.is_empty() {
                    return Err(QueryError::eval(format!(
                        "tuple field `{name}` takes no arguments"
                    )));
                }
                t.get(name)
                    .cloned()
                    .ok_or_else(|| QueryError::eval(format!("tuple {t} has no field `{name}`")))
            }
            other => Err(QueryError::eval(format!(
                "cannot access attribute `{name}` of a {}",
                other.kind()
            ))),
        }
    }

    /// `DataSource::resolve` through the slot's inline cache, keyed by the
    /// already-fetched resolution `class`. The purity verdict is asked once
    /// per (slot, class) per scan; errors are never cached (the first error
    /// aborts the scan anyway).
    fn resolve_cached(
        &mut self,
        oid: Oid,
        class: ClassId,
        slot: usize,
        name: Symbol,
    ) -> Result<Arc<ResolvedAttr>> {
        match self.caches[slot].get(&class) {
            Some(SlotEntry::Pure(r)) => Ok(r.clone()),
            Some(SlotEntry::Impure) => self.src.resolve(oid, name).map(Arc::new),
            None => {
                let r = Arc::new(self.src.resolve(oid, name)?);
                let entry = if self.src.resolution_is_class_pure(class, name) {
                    SlotEntry::Pure(r.clone())
                } else {
                    SlotEntry::Impure
                };
                self.caches[slot].insert(class, entry);
                Ok(r)
            }
        }
    }
}

// --- whole-query driver ---------------------------------------------------

/// The compiled pieces of a canonical single-binding class scan
/// (`select [the] proj from V in Class [where filter]`).
pub struct SelectScan {
    class: ClassId,
    filter: Option<Program>,
    proj: Program,
}

/// Compiles the scan pieces of `q` when it has the canonical shape: one
/// binding, collection is a plain class name (not shadowed by a named
/// object), and the filter and projection both compile.
pub fn compile_select_scan(src: &dyn DataSource, q: &SelectExpr) -> Option<SelectScan> {
    if q.bindings.len() != 1 {
        return None;
    }
    let (var, coll) = &q.bindings[0];
    let Expr::Name(coll_name) = coll else {
        return None;
    };
    // resolve_name order is variable → named object → class extent; a
    // named object shadowing the class would change the collection.
    if src.named_object(*coll_name).is_some() {
        return None;
    }
    let class = src.class_by_name(*coll_name)?;
    let vars = [*var];
    let filter = match q.filter.as_deref() {
        Some(f) => Some(compile_predicate(f, &vars)?),
        None => None,
    };
    let proj = compile_predicate(&q.proj, &vars)?;
    Some(SelectScan {
        class,
        filter,
        proj,
    })
}

/// Attempts compiled execution of a whole top-level expression. `None`
/// means the engine is off or the shape is not covered — the caller falls
/// back to the interpreter. `Some(result)` is bit-identical to what
/// `eval_expr` would have produced (values, errors, budget accounting).
pub(crate) fn try_run_compiled(src: &dyn DataSource, expr: &Expr) -> Option<Result<Value>> {
    if !compiled_enabled() {
        return None;
    }
    let Expr::Select(q) = expr else {
        return None;
    };
    let scan = compile_select_scan(src, q)?;
    Some(run_select_scan(src, q, &scan))
}

/// Runs a compiled canonical scan, charging the budget exactly as the
/// interpreter's `eval_expr` → `select_depth` → `iterate_bindings` chain
/// would: one step for the `select` node (depth 0), one for the collection
/// name (depth 1), the filter and projection at depth 1 per row, and one
/// `note_rows` per newly inserted result.
fn run_select_scan(src: &dyn DataSource, q: &SelectExpr, scan: &SelectScan) -> Result<Value> {
    let _span = ov_oodb::span!("query.compiled_scan");
    let budget = budget::current();
    let mut filter = scan.filter.as_ref().map(|p| Scan::new(p, src));
    let mut proj = Scan::new(&scan.proj, src);
    proj.step(0)?; // the `select` node itself
    proj.step(1)?; // the collection name
    let extent = src.extent(scan.class)?;
    let mut out = BTreeSet::new();
    for oid in extent {
        if let Some(f) = &mut filter {
            f.bind(0, Value::Oid(oid));
            if !truthy(&f.run(1)?) {
                continue;
            }
        }
        proj.bind(0, Value::Oid(oid));
        let v = proj.run(1)?;
        if out.insert(v) {
            if let Some(b) = &budget {
                b.note_rows(1)?;
            }
        }
    }
    if q.the {
        if out.len() == 1 {
            Ok(out.into_iter().next().expect("len checked"))
        } else {
            Err(QueryError::TheCardinality { got: out.len() })
        }
    } else {
        Ok(Value::Set(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Env;
    use crate::parser::parse_expr;
    use ov_oodb::{sym, AttrDef, Database, Type};

    fn staff() -> Database {
        let mut db = Database::new(sym("Staff"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::computed(
                    sym("Doubled"),
                    Type::Int,
                    parse_expr("self.Age + self.Age").unwrap(),
                ),
            )
            .unwrap();
        for (name, age) in [("Maggy", 65), ("Denis", 70), ("Tony", 30)] {
            db.create_object(
                person,
                Value::tuple([("Name", Value::str(name)), ("Age", Value::Int(age))]),
            )
            .unwrap();
        }
        db
    }

    /// Runs `src` both ways against every Person and asserts agreement.
    fn assert_differential(db: &Database, src: &str) {
        let expr = parse_expr(src).unwrap();
        let p = sym("P");
        let prog =
            compile_predicate(&expr, &[p]).unwrap_or_else(|| panic!("`{src}` should compile"));
        let mut scan = Scan::new(&prog, db);
        let ev = Evaluator::new(db);
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        for oid in db.deep_extent(person) {
            let mut env = Env::new();
            env.bind(p, Value::Oid(oid));
            let interpreted = ev.eval(&expr, &mut env);
            scan.bind(0, Value::Oid(oid));
            let compiled = scan.run(0);
            assert_eq!(compiled, interpreted, "divergence on `{src}`");
        }
    }

    #[test]
    fn covered_expressions_agree_with_interpreter() {
        let db = staff();
        for src in [
            "P.Age >= 65",
            r#"P.Name = "Maggy""#,
            "P.Age + 1 * 2 - 3",
            "P.Age >= 30 and P.Age < 70",
            r#"P.Name = "Tony" or P.Age > 65"#,
            "not (P.Age = 30)",
            "if P.Age > 50 then P.Name else P.Age",
            "P.Doubled = 140",
            "-P.Age < 0",
            "P.Age / 2 >= 15",
        ] {
            assert_differential(&db, src);
        }
    }

    #[test]
    fn errors_agree_with_interpreter() {
        let db = staff();
        for src in [
            "P.Age / 0",            // division by zero
            "P.Age % 0",            // modulo by zero
            r#"P.Name < 1"#,        // unordered kinds
            "-P.Name",              // cannot negate
            "P.Ghost = 1",          // unknown attribute
            r#"P.Name ++ 1 = "x""#, // concat kind error
        ] {
            assert_differential(&db, src);
        }
    }

    #[test]
    fn uncovered_shapes_do_not_compile() {
        for src in [
            "count((select Q from Q in Person))",
            "exists(select Q from Q in Person)",
            "{1, 2}",
            "[A: 1, B: 2]",
            "P in Person", // free name `Person`
            "self.Age",    // `self` is not a scan variable
            "maggy.Age",   // free name
        ] {
            let expr = parse_expr(src).unwrap();
            assert!(
                compile_predicate(&expr, &[sym("P")]).is_none(),
                "`{src}` should not compile"
            );
        }
    }

    #[test]
    fn short_circuit_skips_rhs_like_the_interpreter() {
        let db = staff();
        // The rhs errors (division by zero) but the lhs decides: `and`
        // with falsy lhs and `or` with truthy lhs must not touch it.
        assert_differential(&db, "P.Age < 0 and 1 / 0 = 1");
        assert_differential(&db, "P.Age > 0 or 1 / 0 = 1");
    }

    #[test]
    fn budget_steps_match_the_interpreter_exactly() {
        let db = staff();
        let expr = parse_expr("P.Age >= 30 and P.Doubled < 200").unwrap();
        let p = sym("P");
        let prog = compile_predicate(&expr, &[p]).unwrap();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        let oids = db.deep_extent(person);

        let count_steps = |compiled: bool| -> u64 {
            let b = Arc::new(Budget::new());
            budget::with(b.clone(), || {
                if compiled {
                    let mut scan = Scan::new(&prog, &db);
                    for &oid in &oids {
                        scan.bind(0, Value::Oid(oid));
                        scan.run(0).unwrap();
                    }
                } else {
                    let ev = Evaluator::new(&db);
                    for &oid in &oids {
                        let mut env = Env::new();
                        env.bind(p, Value::Oid(oid));
                        ev.eval(&expr, &mut env).unwrap();
                    }
                }
            });
            b.steps_used()
        };
        assert_eq!(count_steps(true), count_steps(false));
    }

    #[test]
    fn budget_breach_trips_at_the_same_step() {
        let db = staff();
        let expr = parse_expr("P.Doubled > 100").unwrap();
        let p = sym("P");
        let prog = compile_predicate(&expr, &[p]).unwrap();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        let oid = db.deep_extent(person)[0];

        for max in 0..12 {
            let run_with = |compiled: bool| {
                let b = Arc::new(Budget::new().with_max_steps(max));
                let r = budget::with(b.clone(), || {
                    if compiled {
                        let mut scan = Scan::new(&prog, &db);
                        scan.bind(0, Value::Oid(oid));
                        scan.run(0)
                    } else {
                        let ev = Evaluator::new(&db);
                        let mut env = Env::new();
                        env.bind(p, Value::Oid(oid));
                        ev.eval(&expr, &mut env)
                    }
                });
                (r, b.steps_used())
            };
            assert_eq!(run_with(true), run_with(false), "max_steps = {max}");
        }
    }

    #[test]
    fn resolution_cache_reuses_pure_resolutions() {
        let db = staff();
        let expr = parse_expr("P.Age >= 65").unwrap();
        let prog = compile_predicate(&expr, &[sym("P")]).unwrap();
        let mut scan = Scan::new(&prog, &db);
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        for oid in db.deep_extent(person) {
            scan.bind(0, Value::Oid(oid));
            scan.run(0).unwrap();
        }
        // One slot (P.Age), one class, decided Pure after the first row.
        assert_eq!(scan.caches.len(), 1);
        assert!(matches!(
            scan.caches[0].get(&person),
            Some(SlotEntry::Pure(_))
        ));
    }

    #[test]
    fn top_level_select_agrees_with_interpreter() {
        let db = staff();
        for src in [
            "select P.Name from P in Person where P.Age >= 65",
            "select P from P in Person",
            "select the P from P in Person where P.Age = 30",
            "select the P from P in Person",     // cardinality error
            "select P.Age / 0 from P in Person", // projection error
        ] {
            let expr = parse_expr(src).unwrap();
            let compiled =
                try_run_compiled(&db, &expr).unwrap_or_else(|| panic!("`{src}` should compile"));
            let interpreted = crate::eval::eval_expr(&db, &expr);
            assert_eq!(compiled, interpreted, "divergence on `{src}`");
        }
    }

    #[test]
    fn interp_mode_disables_compilation() {
        let db = staff();
        let expr = parse_expr("select P from P in Person").unwrap();
        set_engine_mode(EngineMode::Interp);
        assert!(try_run_compiled(&db, &expr).is_none());
        set_engine_mode(EngineMode::Auto);
        assert!(try_run_compiled(&db, &expr).is_some());
    }

    #[test]
    fn engine_mode_round_trips_its_spelling() {
        for mode in [EngineMode::Auto, EngineMode::Compiled, EngineMode::Interp] {
            assert_eq!(EngineMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(EngineMode::parse("jit"), None);
    }
}
