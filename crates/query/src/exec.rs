//! Script execution against base databases.
//!
//! Executes the statement forms that target *databases* (schema DDL, object
//! loading, updates, queries). View-definition statements are interpreted by
//! `ov-views`; encountering one here is an error pointing you there.
//!
//! Object loading is two-phase so that dumps with forward references load
//! correctly (spouse pairs reference each other): pass 1 applies schema
//! statements and allocates every declared object empty; pass 2 fills in
//! values (with `#n` literals remapped to the allocated oids), binds names,
//! and runs updates/queries in order.

use std::collections::HashMap;

use ov_oodb::{
    AttrDef, ClassId, DbHandle, Expr, Oid, Schema, SelectExpr, Symbol, System, Type, Value,
};

use crate::ast::{Stmt, TypeExpr};
use crate::error::{QueryError, Result};
use crate::eval::{eval_expr, Env, Evaluator};
use crate::parser::parse_program;
use crate::typecheck::{infer, TypeEnv};

/// Resolves a syntactic type against a schema. Builtin names: `string`,
/// `integer`/`int`, `float`/`real`, `boolean`/`bool`, `any`, `nothing`;
/// anything else must be a class name.
pub fn resolve_type(ty: &TypeExpr, schema: &Schema) -> Result<Type> {
    Ok(match ty {
        TypeExpr::Name(n) => match n.as_str() {
            "string" => Type::Str,
            "integer" | "int" => Type::Int,
            "float" | "real" => Type::Float,
            "boolean" | "bool" => Type::Bool,
            "any" => Type::Any,
            "nothing" => Type::Nothing,
            _ => Type::Class(schema.require_class(*n)?),
        },
        TypeExpr::Tuple(fields) => Type::Tuple(
            fields
                .iter()
                .map(|(n, t)| Ok((*n, resolve_type(t, schema)?)))
                .collect::<Result<_>>()?,
        ),
        TypeExpr::Set(t) => Type::set(resolve_type(t, schema)?),
        TypeExpr::List(t) => Type::list(resolve_type(t, schema)?),
    })
}

/// Executes a script against `system`; returns query/insert results in
/// statement order.
pub fn execute_script(system: &mut System, src: &str) -> Result<Vec<Value>> {
    let stmts = parse_program(src)?;
    execute_stmts(system, &stmts)
}

/// Executes pre-parsed statements against `system`.
pub fn execute_stmts(system: &mut System, stmts: &[Stmt]) -> Result<Vec<Value>> {
    let mut map = HashMap::new();
    execute_stmts_with_map(system, stmts, &mut map)
}

/// Like [`execute_stmts`], but `#n` literal bindings persist in (and are
/// read from) the caller-supplied map — this is what lets an interactive
/// session refer to `#1` across separately-executed statements.
pub fn execute_stmts_with_map(
    system: &mut System,
    stmts: &[Stmt],
    oid_map: &mut HashMap<u64, Oid>,
) -> Result<Vec<Value>> {
    let mut exec = Executor {
        system,
        current: None,
        oid_map,
    };
    exec.run(stmts)
}

struct Executor<'a> {
    system: &'a mut System,
    current: Option<DbHandle>,
    /// Script-local `#n` literal → allocated oid.
    oid_map: &'a mut HashMap<u64, Oid>,
}

impl Executor<'_> {
    fn current(&self) -> Result<DbHandle> {
        self.current
            .clone()
            .ok_or_else(|| QueryError::eval("no current database (start with `database D;`)"))
    }

    fn run(&mut self, stmts: &[Stmt]) -> Result<Vec<Value>> {
        // Pass 0: create every declared class (parents resolved, attributes
        // deferred) so that attribute types may reference classes declared
        // later in the script, including self-references like
        // `Spouse: Person`.
        for stmt in stmts {
            match stmt {
                Stmt::Database(name) => {
                    let handle = match self.system.database(*name) {
                        Ok(h) => h,
                        Err(_) => self.system.create_database(*name)?,
                    };
                    self.current = Some(handle);
                }
                Stmt::ClassDecl { name, parents, .. } => {
                    let db = self.current()?;
                    let mut db = db.write();
                    let parent_ids: Vec<ClassId> = parents
                        .iter()
                        .map(|p| db.schema.require_class(*p))
                        .collect::<ov_oodb::Result<_>>()?;
                    db.create_class(*name, &parent_ids, Vec::new())?;
                }
                _ => {}
            }
        }
        // Pass 1: stored/computed attributes and empty-object allocation.
        // The database context is re-tracked so multi-database scripts
        // allocate into the right stores.
        self.current = None;
        for stmt in stmts {
            match stmt {
                Stmt::Database(name) => {
                    self.current = Some(self.system.database(*name)?);
                }
                Stmt::ClassDecl { name, stored, .. } => {
                    let db = self.current()?;
                    let mut db = db.write();
                    let class_id = db.schema.require_class(*name)?;
                    for (attr, t) in stored {
                        let ty = resolve_type(t, &db.schema)?;
                        // Through the database wrapper so durable sessions
                        // WAL-log the DDL.
                        db.add_attr(class_id, AttrDef::stored(*attr, ty))?;
                    }
                }
                Stmt::AttributeDecl {
                    name,
                    params,
                    ty,
                    class,
                    body,
                } => {
                    self.attribute_decl(*name, params, ty.as_ref(), *class, body.as_ref())?;
                }
                Stmt::ObjectDecl { oid, class, .. } => {
                    let db = self.current()?;
                    let mut db = db.write();
                    let class_id = db.schema.require_class(*class)?;
                    let real = db.create_object(class_id, Value::empty_tuple())?;
                    if self.oid_map.insert(*oid, real).is_some() {
                        return Err(QueryError::eval(format!(
                            "object literal #{oid} declared twice"
                        )));
                    }
                }
                Stmt::CreateView(_)
                | Stmt::Import { .. }
                | Stmt::HideAttrs { .. }
                | Stmt::HideClass(_)
                | Stmt::VirtualClassDecl { .. } => {
                    return Err(QueryError::eval(
                        "view-definition statements must be executed through ov-views \
                         (ViewDef::from_script)",
                    ));
                }
                _ => {}
            }
        }
        // Pass 2: data and queries, in order.
        let mut results = Vec::new();
        self.current = None;
        for stmt in stmts {
            match stmt {
                Stmt::Database(name) => {
                    self.current = Some(self.system.database(*name)?);
                }
                Stmt::ClassDecl { .. } | Stmt::AttributeDecl { .. } => {}
                Stmt::ObjectDecl { oid, value, .. } => {
                    let real = self.oid_map[oid];
                    let value = self.eval_with_remap(value)?;
                    let Value::Tuple(t) = value else {
                        return Err(QueryError::eval("object value must be a tuple"));
                    };
                    let db = self.current()?;
                    let mut db = db.write();
                    for (field, v) in t.iter() {
                        db.set_attr(real, field, v.clone())?;
                    }
                }
                Stmt::NameDecl { name, oid } => {
                    let real = self.resolve_oid_lit(*oid);
                    let db = self.current()?;
                    db.write().name_object(*name, real)?;
                }
                Stmt::SetAttr {
                    target,
                    attr,
                    value,
                } => {
                    let target = self.eval_with_remap(target)?;
                    let Value::Oid(o) = target else {
                        return Err(QueryError::eval("`set` target must evaluate to an object"));
                    };
                    let v = self.eval_with_remap(value)?;
                    let db = self.current()?;
                    db.write().set_attr(o, *attr, v)?;
                }
                Stmt::Delete(e) => {
                    let v = self.eval_with_remap(e)?;
                    let Value::Oid(o) = v else {
                        return Err(QueryError::eval(
                            "`delete` target must evaluate to an object",
                        ));
                    };
                    let db = self.current()?;
                    db.write().delete_object(o)?;
                }
                Stmt::Insert { class, value } => {
                    let v = self.eval_with_remap(value)?;
                    let db = self.current()?;
                    let mut db = db.write();
                    let class_id = db.schema.require_class(*class)?;
                    let oid = db.create_object(class_id, v)?;
                    results.push(Value::Oid(oid));
                }
                Stmt::Query(e) => {
                    // `run_expr`, not `eval_expr`: canonical scans take the
                    // compiled engine and profiled runs feed the workload
                    // registry, same as `run_query` on a text query.
                    let remapped = remap_oids(e, self.oid_map);
                    let db = self.current()?;
                    let db = db.read();
                    let v = run_expr(&*db, &remapped)?;
                    results.push(v);
                }
                Stmt::CreateView(_)
                | Stmt::Import { .. }
                | Stmt::HideAttrs { .. }
                | Stmt::HideClass(_)
                | Stmt::VirtualClassDecl { .. } => unreachable!("rejected in pass 1"),
            }
        }
        Ok(results)
    }

    fn attribute_decl(
        &mut self,
        name: Symbol,
        params: &[(Symbol, TypeExpr)],
        ty: Option<&TypeExpr>,
        class: Symbol,
        body: Option<&Expr>,
    ) -> Result<()> {
        let db = self.current()?;
        let mut db = db.write();
        let class_id = db.schema.require_class(class)?;
        let param_tys: Vec<(Symbol, Type)> = params
            .iter()
            .map(|(p, t)| Ok((*p, resolve_type(t, &db.schema)?)))
            .collect::<Result<_>>()?;
        let declared = ty.map(|t| resolve_type(t, &db.schema)).transpose()?;
        let def = match body {
            None => {
                // Stored: a type is mandatory (nothing to infer from).
                let ty = declared.ok_or_else(|| {
                    QueryError::ty(format!("stored attribute `{name}` needs an explicit type"))
                })?;
                if !param_tys.is_empty() {
                    return Err(QueryError::ty(format!(
                        "stored attribute `{name}` cannot take parameters"
                    )));
                }
                AttrDef::stored(name, ty)
            }
            Some(body) => {
                // Computed: infer the type when not declared ("the view
                // system should relieve the user of mundane tasks", §2).
                let ty = match declared {
                    Some(t) => t,
                    None => {
                        let mut env = TypeEnv::with_self(Type::Class(class_id));
                        for (p, t) in &param_tys {
                            env.bind(*p, t.clone());
                        }
                        infer(&*db, &mut env, body)?
                    }
                };
                AttrDef::method(name, param_tys, ty, body.clone())
            }
        };
        db.add_attr(class_id, def)?;
        Ok(())
    }

    /// `#n` appearing in a script refers to the object allocated for that
    /// literal if one was declared, otherwise to the raw oid.
    fn resolve_oid_lit(&self, n: u64) -> Oid {
        self.oid_map.get(&n).copied().unwrap_or(Oid(n))
    }

    fn eval_with_remap(&self, e: &Expr) -> Result<Value> {
        let remapped = remap_oids(e, self.oid_map);
        let db = self.current()?;
        let db = db.read();
        eval_expr(&*db, &remapped)
    }
}

/// Rewrites `#n` oid literals through `map` (deeply, including literals
/// inside constructed values).
fn remap_oids(e: &Expr, map: &HashMap<u64, Oid>) -> Expr {
    if map.is_empty() {
        return e.clone();
    }
    map_expr(e, &mut |expr| {
        if let Expr::Lit(v) = expr {
            let mut v2 = v.clone();
            remap_value(&mut v2, map);
            return Some(Expr::Lit(v2));
        }
        None
    })
}

fn remap_value(v: &mut Value, map: &HashMap<u64, Oid>) {
    match v {
        Value::Oid(o) => {
            if let Some(real) = map.get(&o.0) {
                *o = *real;
            }
        }
        Value::Tuple(t) => {
            let entries: Vec<(Symbol, Value)> = t.iter().map(|(n, v)| (n, v.clone())).collect();
            for (n, mut val) in entries {
                remap_value(&mut val, map);
                t.set(n, val);
            }
        }
        Value::Set(s) => {
            let mut items: Vec<Value> = s.iter().cloned().collect();
            for item in &mut items {
                remap_value(item, map);
            }
            *s = items.into_iter().collect();
        }
        Value::List(l) => {
            for item in l {
                remap_value(item, map);
            }
        }
        _ => {}
    }
}

/// Structure-preserving expression rewrite: `f` returns `Some(replacement)`
/// to substitute a node (children of replaced nodes are not revisited).
fn map_expr(e: &Expr, f: &mut dyn FnMut(&Expr) -> Option<Expr>) -> Expr {
    if let Some(replaced) = f(e) {
        return replaced;
    }
    match e {
        Expr::Lit(_) | Expr::SelfRef | Expr::Name(_) => e.clone(),
        Expr::Attr { recv, name, args } => Expr::Attr {
            recv: Box::new(map_expr(recv, f)),
            name: *name,
            args: args.iter().map(|a| map_expr(a, f)).collect(),
        },
        Expr::TupleCons(fields) => {
            Expr::TupleCons(fields.iter().map(|(n, e)| (*n, map_expr(e, f))).collect())
        }
        Expr::SetCons(items) => Expr::SetCons(items.iter().map(|e| map_expr(e, f)).collect()),
        Expr::ListCons(items) => Expr::ListCons(items.iter().map(|e| map_expr(e, f)).collect()),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(map_expr(expr, f)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(map_expr(lhs, f)),
            rhs: Box::new(map_expr(rhs, f)),
        },
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(map_expr(cond, f)),
            then: Box::new(map_expr(then, f)),
            els: Box::new(map_expr(els, f)),
        },
        Expr::Select(q) => Expr::Select(map_select(q, f)),
        Expr::Exists(q) => Expr::Exists(map_select(q, f)),
        Expr::Aggregate { func, arg } => Expr::Aggregate {
            func: *func,
            arg: Box::new(map_expr(arg, f)),
        },
        Expr::IsA { expr, class } => Expr::IsA {
            expr: Box::new(map_expr(expr, f)),
            class: *class,
        },
        Expr::Apply { name, args } => Expr::Apply {
            name: *name,
            args: args.iter().map(|a| map_expr(a, f)).collect(),
        },
    }
}

/// Structure-preserving select rewrite; see [`rewrite_expr`].
pub fn map_select(q: &SelectExpr, f: &mut dyn FnMut(&Expr) -> Option<Expr>) -> SelectExpr {
    SelectExpr {
        distinct: q.distinct,
        the: q.the,
        proj: Box::new(map_expr(&q.proj, f)),
        bindings: q
            .bindings
            .iter()
            .map(|(v, c)| (*v, map_expr(c, f)))
            .collect(),
        filter: q.filter.as_ref().map(|w| Box::new(map_expr(w, f))),
    }
}

/// Public re-export of the expression rewriter for downstream crates
/// (`ov-views` substitutes class parameters with it).
pub fn rewrite_expr(e: &Expr, f: &mut dyn FnMut(&Expr) -> Option<Expr>) -> Expr {
    map_expr(e, f)
}

/// Runs a single query string against any data source (database or view).
/// Canonical class scans run the compiled predicate engine (unless disabled
/// via [`set_engine_mode`](crate::set_engine_mode)); everything else — and
/// every expression outside the compiler's coverage — takes the
/// tree-walking interpreter, with identical observable behavior.
///
/// When the profiler is on ([`ov_oodb::metrics::set_profiling`]) the run is
/// additionally fingerprinted and recorded in the process-wide workload
/// registry (and, past the threshold, the slow-query log). The profiled
/// path executes the *same* expression the unprofiled path would — it only
/// measures around it. Disabled cost: one relaxed atomic load.
pub fn run_query(src: &dyn crate::source::DataSource, query: &str) -> Result<Value> {
    if ov_oodb::metrics::profiling_enabled() && !crate::plan::tracing_active() {
        return run_query_profiled(src, query);
    }
    let _span = ov_oodb::span!("query.run");
    let e = {
        let _parse = ov_oodb::span!("query.parse");
        crate::parser::parse_expr(query)?
    };
    let _exec = ov_oodb::span!("query.execute");
    run_expr(src, &e)
}

/// The profiled twin of [`run_query`]: same parse, same [`run_expr`]
/// execution, but bracketed by an actuals frame and the population
/// collector so the workload registry learns the query's fingerprint,
/// latency, rows, engine, and population-path mix — and the slow-query
/// log captures a full annotated trace when the run crosses the
/// threshold. Only successful runs are recorded.
fn run_query_profiled(src: &dyn crate::source::DataSource, query: &str) -> Result<Value> {
    let _span = ov_oodb::span!("query.run");
    let e = {
        let _parse = ov_oodb::span!("query.parse");
        crate::parser::parse_expr(query)?
    };
    run_expr_profiled(src, &e, Some(query))
}

/// The shared profiled execution core: runs `e` through the same engine
/// dispatch as [`run_expr`], measured. `query` is the original source text
/// when the caller has it (for the slow-query log); pre-parsed callers pass
/// `None` and the expression's rendering stands in.
fn run_expr_profiled(
    src: &dyn crate::source::DataSource,
    e: &Expr,
    query: Option<&str>,
) -> Result<Value> {
    use crate::plan::{self, Engine, QueryTrace, Stage};
    let t0 = std::time::Instant::now();
    let (fingerprint, normalized) = crate::fingerprint::fingerprint_expr(e);
    // Fold constants before planning/execution so literals substituted by
    // parameterized-class instantiation feed selectivity estimation.
    let e = &crate::optimize::optimize_expr(e);
    let ((result, populations), actuals) = {
        let _exec = ov_oodb::span!("query.execute");
        plan::with_scan_actuals(|| {
            plan::collect(|| match crate::compile::try_run_compiled(src, e) {
                Some(r) => (r, Engine::compiled_now()),
                None => (crate::eval::eval_expr(src, e), Engine::Interpreted),
            })
        })
    };
    let (value, engine) = result;
    let value = value?;
    let nanos = t0.elapsed().as_nanos() as u64;

    let rows = match &value {
        Value::Set(s) => Some(s.len()),
        Value::List(l) => Some(l.len()),
        _ => None,
    };
    let entry = ov_oodb::metrics::workload().entry(&fingerprint, &normalized);
    entry.calls.inc();
    entry.rows.add(rows.unwrap_or(0) as u64);
    entry.latency.record(nanos);
    match engine {
        Engine::Compiled { .. } => entry.compiled.inc(),
        Engine::Interpreted => entry.interpreted.inc(),
    }
    let plan_choice = crate::planner::take_last_decision();
    if let Some(d) = &plan_choice {
        if d.cache_hit {
            entry.plan_cache_hits.inc();
        } else {
            entry.plan_cache_misses.inc();
        }
    }
    for p in &populations {
        match &p.path {
            plan::PopPath::CacheHit => entry.pop_cache_hits.inc(),
            plan::PopPath::Delta { .. } => entry.pop_deltas.inc(),
            plan::PopPath::FullRecompute { .. } => entry.pop_recomputes.inc(),
            plan::PopPath::StaleServe { .. } => entry.pop_stale_serves.inc(),
        }
    }
    let log = ov_oodb::metrics::slow_queries();
    if nanos >= log.threshold_ns() {
        let trace = QueryTrace {
            stages: vec![Stage {
                name: "execute",
                nanos,
                detail: format!("engine={engine}"),
            }],
            populations,
            rows,
            actuals,
            engine: Some(engine),
            fingerprint: fingerprint.clone(),
            normalized,
            planner: plan_choice.map(|d| plan::PlanChoice {
                strategy: d.strategy.to_string(),
                est_rows: d.est_rows,
                cache_hit: d.cache_hit,
            }),
        };
        log.record(ov_oodb::metrics::SlowQuery {
            query: query.map(str::to_string).unwrap_or_else(|| e.to_string()),
            fingerprint,
            nanos,
            trace: trace.to_string(),
        });
    }
    Ok(value)
}

/// Runs a pre-parsed expression against any data source, routing canonical
/// class scans through the compiled engine exactly like [`run_query`].
/// Callers that hold an [`Expr`] (e.g. a session dispatching a parsed
/// statement) should prefer this over [`eval_expr`], which always
/// interprets.
pub fn run_expr(src: &dyn crate::source::DataSource, e: &Expr) -> Result<Value> {
    if ov_oodb::metrics::profiling_enabled() && !crate::plan::tracing_active() {
        return run_expr_profiled(src, e, None);
    }
    // Fold constants before planning/execution (see `run_expr_profiled`).
    let e = &crate::optimize::optimize_expr(e);
    match crate::compile::try_run_compiled(src, e) {
        Some(r) => r,
        None => eval_expr(src, e),
    }
}

/// Runs a query governed by a cooperative [`Budget`](crate::Budget): the
/// budget is installed for the duration of the run (parse depth, eval
/// steps, rows, and the deadline all count against it) and breaches
/// surface as [`QueryError::Cancelled`] / [`QueryError::ResourceExhausted`].
pub fn run_query_with_budget(
    src: &dyn crate::source::DataSource,
    query: &str,
    budget: std::sync::Arc<crate::budget::Budget>,
) -> Result<Value> {
    crate::budget::with(budget, || run_query(src, query))
}

/// Runs a query with a pre-bound environment (rarely needed; used in tests).
pub fn run_query_env(
    src: &dyn crate::source::DataSource,
    query: &str,
    env: &mut Env,
) -> Result<Value> {
    let e = crate::parser::parse_expr(query)?;
    Evaluator::new(src).eval(&e, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    const STAFF: &str = r#"
        database Staff;
        class Person type [Name: string, Age: integer, Spouse: Person, Children: {Person}];
        class Employee inherits Person type [Salary: integer];
        class Manager inherits Employee type [Budget: integer];
        attribute Greeting in class Person has value "hello " ++ self.Name;
        object #1 in Person value [Name: "Maggy", Age: 65, Spouse: #2];
        object #2 in Person value [Name: "Denis", Age: 70, Spouse: #1];
        object #3 in Manager value [Name: "Boss", Age: 50, Salary: 90000, Budget: 1000000];
        name maggy = #1;
    "#;

    #[test]
    fn loads_schema_and_data() {
        let mut sys = System::new();
        execute_script(&mut sys, STAFF).unwrap();
        let db = sys.database(sym("Staff")).unwrap();
        let db = db.read();
        assert_eq!(db.schema.len(), 3);
        assert_eq!(db.store.len(), 3);
        let maggy = db.named(sym("maggy")).unwrap();
        assert_eq!(db.stored_attr(maggy, sym("Age")).unwrap(), &Value::Int(65));
    }

    #[test]
    fn forward_references_resolve() {
        let mut sys = System::new();
        execute_script(&mut sys, STAFF).unwrap();
        let db = sys.database(sym("Staff")).unwrap();
        let db = db.read();
        // #1 references #2 which is declared later.
        let v = run_query(&*db, "maggy.Spouse.Name").unwrap();
        assert_eq!(v, Value::str("Denis"));
        // And the cycle closes.
        assert_eq!(
            run_query(&*db, "maggy.Spouse.Spouse.Name").unwrap(),
            Value::str("Maggy")
        );
    }

    #[test]
    fn computed_attribute_type_is_inferred() {
        let mut sys = System::new();
        execute_script(&mut sys, STAFF).unwrap();
        let db = sys.database(sym("Staff")).unwrap();
        let db = db.read();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        let (_, def) = db.schema.visible_attrs(person)[&sym("Greeting")];
        assert_eq!(def.sig.ty, Type::Str);
        assert_eq!(
            run_query(&*db, "maggy.Greeting").unwrap(),
            Value::str("hello Maggy")
        );
    }

    #[test]
    fn queries_and_updates_execute_in_order() {
        let mut sys = System::new();
        let results = execute_script(
            &mut sys,
            r#"
            database D;
            class Counter type [N: integer];
            object #1 in Counter value [N: 1];
            name c = #1;
            c.N;
            set c.N = 2;
            c.N;
            insert Counter value [N: 9];
            count((select X from X in Counter));
            delete c;
            count((select X from X in Counter));
            "#,
        )
        .unwrap();
        assert_eq!(results[0], Value::Int(1));
        assert_eq!(results[1], Value::Int(2));
        assert!(matches!(results[2], Value::Oid(_))); // insert result
        assert_eq!(results[3], Value::Int(2));
        assert_eq!(results[4], Value::Int(1));
    }

    #[test]
    fn profiling_records_workload_and_slow_queries() {
        let mut sys = System::new();
        execute_script(&mut sys, STAFF).unwrap();
        let db = sys.database(sym("Staff")).unwrap();
        let db = db.read();
        // A query shape distinctive enough that no other test records it.
        let q = "select W.Name from W in Person where W.Age > 63";
        let (fp, _) = crate::fingerprint::fingerprint_query(q).unwrap();
        let log = ov_oodb::metrics::slow_queries();
        let threshold_was = log.threshold_ns();
        log.set_threshold_ns(0); // capture everything while enabled
        ov_oodb::metrics::set_profiling(true);
        let v = run_query(&*db, q).unwrap();
        let v2 = run_query(&*db, q).unwrap();
        ov_oodb::metrics::set_profiling(false);
        log.set_threshold_ns(threshold_was);
        assert_eq!(v, v2);
        assert_eq!(
            v,
            Value::set([Value::str("Maggy"), Value::str("Denis")]),
            "profiled execution returns the same result"
        );
        let entry = ov_oodb::metrics::workload().entry(&fp, "");
        assert!(entry.calls.get() >= 2, "calls: {}", entry.calls.get());
        assert!(entry.rows.get() >= 4, "rows: {}", entry.rows.get());
        assert!(entry.compiled.get() + entry.interpreted.get() >= 2);
        let slow = log.entries();
        let mine: Vec<_> = slow.iter().filter(|e| e.fingerprint == fp).collect();
        assert!(!mine.is_empty(), "slow-query log captured the run");
        assert!(
            mine[0].trace.contains("actuals:"),
            "trace is annotated: {}",
            mine[0].trace
        );
    }

    #[test]
    fn stored_attribute_decl_needs_type() {
        let mut sys = System::new();
        let err =
            execute_script(&mut sys, "database D; class C; attribute X in class C;").unwrap_err();
        assert!(err.to_string().contains("needs an explicit type"));
    }

    #[test]
    fn view_statements_are_rejected_here() {
        let mut sys = System::new();
        let err = execute_script(&mut sys, "database D; create view V;").unwrap_err();
        assert!(err.to_string().contains("ov-views"));
    }

    #[test]
    fn no_current_database_is_an_error() {
        let mut sys = System::new();
        assert!(execute_script(&mut sys, "class C;").is_err());
    }

    #[test]
    fn duplicate_object_literal_rejected() {
        let mut sys = System::new();
        let err = execute_script(
            &mut sys,
            "database D; class C; object #1 in C value []; object #1 in C value [];",
        )
        .unwrap_err();
        assert!(err.to_string().contains("declared twice"));
    }

    #[test]
    fn dump_load_roundtrip() {
        let mut sys = System::new();
        execute_script(&mut sys, STAFF).unwrap();
        let dump = {
            let db = sys.database(sym("Staff")).unwrap();
            let db = db.read();
            ov_oodb::dump_database(&db)
        };
        // Load the dump into a fresh system under the same name.
        let mut sys2 = System::new();
        execute_script(&mut sys2, &dump).unwrap();
        let db2 = sys2.database(sym("Staff")).unwrap();
        let db2 = db2.read();
        assert_eq!(db2.store.len(), 3);
        assert_eq!(
            run_query(&*db2, "maggy.Spouse.Name").unwrap(),
            Value::str("Denis")
        );
        // And the dump of the reload equals the dump of the original
        // (stable because loading preserves creation order).
        assert_eq!(ov_oodb::dump_database(&db2), dump);
    }

    #[test]
    fn multi_database_scripts() {
        let mut sys = System::new();
        execute_script(
            &mut sys,
            r#"
            database A;
            class X type [V: integer];
            object #1 in X value [V: 1];
            database B;
            class Y type [W: integer];
            object #2 in Y value [W: 2];
            "#,
        )
        .unwrap();
        assert_eq!(sys.database(sym("A")).unwrap().read().store.len(), 1);
        assert_eq!(sys.database(sym("B")).unwrap().read().store.len(), 1);
    }
}
