//! The `DataSource` abstraction.
//!
//! The paper's first design principle: "A view should be treated as a
//! database" (§6). Operationally that means the *same* evaluator and type
//! checker must run against a base [`Database`] and against a view. This
//! trait is the seam: it exposes exactly the primitives the language layer
//! needs — class lookup, extents, membership, attribute resolution, stored
//! field access — and both `ov_oodb::Database` and `ov_views::View`
//! implement it.

use ov_oodb::{
    resolve_attr, AttrBody, AttrSig, ClassId, ConflictPolicy, Database, Expr, Oid, OodbError,
    Resolution, Symbol, Type, Value,
};

use crate::error::{QueryError, Result};

/// How an attribute, once resolved for a given object, is to be obtained.
#[derive(Clone, Debug)]
pub enum ResolvedAttr {
    /// Read the object's stored tuple field of the same name.
    Stored,
    /// Evaluate `body` with `self` bound to the object and `params` bound to
    /// the call arguments.
    Computed {
        /// Parameter names to bind, in order.
        params: Vec<Symbol>,
        /// The body expression.
        body: Expr,
    },
}

/// One prefetched attribute column per requested name: `cols[col][row]`
/// is the fused [`DataSource::resolution_class_and_field`] answer for
/// `oids[row]` (or `None` for `None`/unknown rows).
pub type PrefetchedColumns = Vec<Vec<Option<(ClassId, Value)>>>;

/// A queryable source of objects: a database or a view.
///
/// Extents are *deep* (a class denotes objects real in it or any subclass),
/// matching the paper's query semantics.
pub trait DataSource {
    /// Resolves a class name.
    fn class_by_name(&self, name: Symbol) -> Option<ClassId>;

    /// The name of class `c`.
    fn class_name(&self, c: ClassId) -> Symbol;

    /// Is `sub` a subclass of (or equal to) `sup`?
    fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool;

    /// All superclasses of `c`, including `c` itself (used by type bounds).
    fn ancestors(&self, c: ClassId) -> Vec<ClassId>;

    /// The class an object belongs to, for typing purposes: its real class
    /// in a database; in a view, the class the view presents it under.
    fn class_of(&self, oid: Oid) -> Result<ClassId>;

    /// The deep extent of `class`, in oid order.
    fn extent(&self, class: ClassId) -> Result<Vec<Oid>>;

    /// Is `oid` a (possibly virtual, possibly view-derived) member of
    /// `class`?
    fn is_member(&self, oid: Oid, class: ClassId) -> Result<bool>;

    /// Resolves attribute `name` for the specific object `oid` (using its
    /// real class, the hierarchy, and — in views — virtual class
    /// memberships and hiding).
    fn resolve(&self, oid: Oid, name: Symbol) -> Result<ResolvedAttr>;

    /// Reads stored field `name` of `oid`'s value (after [`DataSource::resolve`]
    /// said it is stored).
    fn stored_field(&self, oid: Oid, name: Symbol) -> Result<Value>;

    /// A named root object, if bound.
    fn named_object(&self, name: Symbol) -> Option<Oid>;

    /// Does `oid` denote a live object?
    fn object_exists(&self, oid: Oid) -> bool;

    // --- schema-level information, used by static type inference ------

    /// The signature of attribute `name` as seen from class `c`, if any
    /// (conflicts resolved by the source's policy).
    fn attr_sig(&self, c: ClassId, name: Symbol) -> Option<AttrSig>;

    /// The structural type of class `c` (visible zero-parameter attributes).
    fn class_type(&self, c: ClassId) -> Type;

    /// Evaluates `Name(args)` — an instance of a parameterized virtual class
    /// (§4.1). Only views implement this; the default is an error.
    fn apply(&self, name: Symbol, _args: &[Value]) -> Result<Value> {
        Err(QueryError::eval(format!(
            "`{name}(…)` is not a parameterized class here"
        )))
    }

    /// Static type of `Name(args)`; see [`DataSource::apply`].
    fn apply_type(&self, name: Symbol, _args: &[Type]) -> Result<Type> {
        Err(QueryError::ty(format!(
            "`{name}(…)` is not a parameterized class here"
        )))
    }

    // --- resolution caching (compiled scans) --------------------------

    /// A cheap per-object class key under which [`DataSource::resolve`]
    /// results may be cached for the duration of one scan, or `None` if the
    /// source cannot provide one (caching stays off). For a database this is
    /// the object's stored class; for a view, the raw class the view maps
    /// the object to *before* any membership-dependent adjustment.
    fn resolution_class(&self, _oid: Oid) -> Option<ClassId> {
        None
    }

    /// May a resolution of attribute `name` be cached under `class` (as
    /// returned by [`DataSource::resolution_class`]) for the duration of one
    /// scan? `true` asserts that every object with that resolution class
    /// resolves `name` identically while the source's scan-visible state
    /// (schema, virtual-class populations in flight, body depth) is held
    /// fixed. Sources whose resolution can depend on per-object facts beyond
    /// the class — e.g. a view where some virtual class specializes `name` —
    /// must answer `false`. Defaults to `false` (never cache).
    fn resolution_is_class_pure(&self, _class: ClassId, _name: Symbol) -> bool {
        false
    }

    /// One object lookup serving both halves of a compiled attribute
    /// access: the [`DataSource::resolution_class`] of `oid` together with
    /// the raw stored field `name` of its value (`Null` when the field is
    /// absent — exactly what [`DataSource::stored_field`] would return).
    /// `None` when the object is unknown or has no resolution class; the
    /// scan then falls back to the uncached resolve path, which reproduces
    /// the interpreter's error byte for byte. The value half is meaningful
    /// only if resolution later says the attribute is stored; callers
    /// discard it otherwise. Sources where the class and the field share
    /// one lookup should override the composing default.
    fn resolution_class_and_field(&self, oid: Oid, name: Symbol) -> Option<(ClassId, Value)> {
        let class = self.resolution_class(oid)?;
        Some((class, self.stored_field(oid, name).ok()?))
    }

    /// A counter the source bumps whenever scan-visible resolution state
    /// changes mid-scan — for a view: opening/closing a population
    /// bracket (the thread's `populating` set feeds purity verdicts) or
    /// instantiating a parameterized-class template. Compiled scans
    /// capture the generation when created and drop their per-(slot,
    /// class) caches when it moves, so a verdict computed under one state
    /// is never served under another. Sources whose resolution state
    /// cannot change under a shared reference (a base `Database` behind
    /// `&self`) keep the default constant `0`.
    fn resolution_generation(&self) -> u64 {
        0
    }

    /// Batched [`DataSource::resolution_class_and_field`]: one column per
    /// name in `names`, each `data[col][row]` being exactly the fused
    /// probe for `oids[row]` (or `None` for `None`/unknown rows). The
    /// point is amortization — a source acquires its locks once and walks
    /// the batch, instead of locking per (row, name). `None` when the
    /// source does not support prefetch; callers then probe per row.
    /// Implementations must return *pure snapshot reads* with no
    /// observable effects (no budget charges, no fault sites, no
    /// membership computation) so that rows after an early scan abort
    /// were, observably, never touched.
    fn prefetch_attr_columns(
        &self,
        _oids: &[Option<Oid>],
        _names: &[Symbol],
    ) -> Option<PrefetchedColumns> {
        None
    }

    /// The oids whose stored attribute `attr` equals `value`, within the
    /// deep extent of `class`, served from an equality index — or `None`
    /// when the source maintains no such index (the planner then demotes
    /// a pushdown plan to a sequential scan). The result must be exact
    /// on the indexed conjunct and in oid order; callers still re-test
    /// candidates against the full filter.
    fn indexed_lookup(&self, _class: ClassId, _attr: Symbol, _value: &Value) -> Option<Vec<Oid>> {
        None
    }

    /// Called by the evaluator when it starts evaluating the body of a
    /// computed attribute, and…
    fn enter_body(&self) {}

    /// …when it finishes. Views use this pair to give attribute bodies
    /// *privileged* visibility: an attribute hidden by the view is still
    /// readable from the bodies of the view's own computed attributes
    /// (the paper's Example 5 defines `Address` over `City`/`Street` and
    /// then hides them).
    fn exit_body(&self) {}
}

impl DataSource for Database {
    fn class_by_name(&self, name: Symbol) -> Option<ClassId> {
        self.schema.class_by_name(name)
    }

    fn class_name(&self, c: ClassId) -> Symbol {
        self.schema.class(c).name
    }

    fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        ov_oodb::ClassGraph::is_subclass(&self.schema, sub, sup)
    }

    fn ancestors(&self, c: ClassId) -> Vec<ClassId> {
        ov_oodb::ClassGraph::ancestors(&self.schema, c)
    }

    fn class_of(&self, oid: Oid) -> Result<ClassId> {
        Ok(self.store.require(oid)?.class)
    }

    fn extent(&self, class: ClassId) -> Result<Vec<Oid>> {
        Ok(self.deep_extent(class))
    }

    fn is_member(&self, oid: Oid, class: ClassId) -> Result<bool> {
        Ok(Database::is_member(self, oid, class))
    }

    fn resolve(&self, oid: Oid, name: Symbol) -> Result<ResolvedAttr> {
        let obj = self.store.require(oid)?;
        match resolve_attr(&self.schema, obj.class, name) {
            Resolution::Found { def, .. } => Ok(match &def.body {
                AttrBody::Stored => ResolvedAttr::Stored,
                AttrBody::Computed(body) => ResolvedAttr::Computed {
                    params: def.sig.params.iter().map(|(p, _)| *p).collect(),
                    body: body.clone(),
                },
                AttrBody::Abstract => {
                    return Err(QueryError::eval(format!(
                        "attribute `{name}` is abstract (signature only)"
                    )))
                }
            }),
            Resolution::NotFound => Err(OodbError::UnknownAttr {
                class: self.schema.class(obj.class).name,
                attr: name,
            }
            .into()),
            Resolution::Conflict(classes) => {
                // Base databases default to the creation-order policy; views
                // make this configurable.
                let (_, def) = ov_oodb::resolve::resolve_with_policy(
                    &self.schema,
                    obj.class,
                    name,
                    &ConflictPolicy::CreationOrder,
                )?;
                let _ = classes;
                Ok(match &def.body {
                    AttrBody::Stored => ResolvedAttr::Stored,
                    AttrBody::Computed(body) => ResolvedAttr::Computed {
                        params: def.sig.params.iter().map(|(p, _)| *p).collect(),
                        body: body.clone(),
                    },
                    AttrBody::Abstract => {
                        return Err(QueryError::eval(format!(
                            "attribute `{name}` is abstract (signature only)"
                        )))
                    }
                })
            }
        }
    }

    fn stored_field(&self, oid: Oid, name: Symbol) -> Result<Value> {
        let obj = self.store.require(oid)?;
        Ok(obj.value.get(name).cloned().unwrap_or(Value::Null))
    }

    fn named_object(&self, name: Symbol) -> Option<Oid> {
        self.named(name).ok()
    }

    fn object_exists(&self, oid: Oid) -> bool {
        self.store.get(oid).is_some()
    }

    fn attr_sig(&self, c: ClassId, name: Symbol) -> Option<AttrSig> {
        self.schema
            .visible_attrs(c)
            .get(&name)
            .map(|(_, def)| def.sig.clone())
    }

    fn class_type(&self, c: ClassId) -> Type {
        self.schema.class_type(c)
    }

    fn resolution_class(&self, oid: Oid) -> Option<ClassId> {
        self.store.get(oid).map(|o| o.class)
    }

    fn resolution_is_class_pure(&self, _class: ClassId, _name: Symbol) -> bool {
        // Base-database resolution walks only the schema, which cannot
        // change while a scan holds `&Database`.
        true
    }

    fn resolution_class_and_field(&self, oid: Oid, name: Symbol) -> Option<(ClassId, Value)> {
        let obj = self.store.get(oid)?;
        Some((
            obj.class,
            obj.value.get(name).cloned().unwrap_or(Value::Null),
        ))
    }

    fn indexed_lookup(&self, class: ClassId, attr: Symbol, value: &Value) -> Option<Vec<Oid>> {
        self.indexed_deep_lookup(class, attr, value)
    }

    fn prefetch_attr_columns(
        &self,
        oids: &[Option<Oid>],
        names: &[Symbol],
    ) -> Option<PrefetchedColumns> {
        // One store lookup per row serves every requested column.
        let mut cols: Vec<Vec<Option<(ClassId, Value)>>> = names
            .iter()
            .map(|_| Vec::with_capacity(oids.len()))
            .collect();
        for &oid in oids {
            match oid.and_then(|o| self.store.get(o)) {
                Some(obj) => {
                    for (ci, &name) in names.iter().enumerate() {
                        cols[ci].push(Some((
                            obj.class,
                            obj.value.get(name).cloned().unwrap_or(Value::Null),
                        )));
                    }
                }
                None => {
                    for col in &mut cols {
                        col.push(None);
                    }
                }
            }
        }
        Some(cols)
    }
}

/// Adapts a [`DataSource`] to the data-model's [`ov_oodb::ClassGraph`] so
/// type-lattice operations (subtyping, lub) can run against it.
pub struct SourceGraph<'a>(pub &'a dyn DataSource);

impl ov_oodb::ClassGraph for SourceGraph<'_> {
    fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.0.is_subclass(sub, sup)
    }

    fn ancestors(&self, c: ClassId) -> Vec<ClassId> {
        self.0.ancestors(c)
    }

    fn class_name(&self, c: ClassId) -> Symbol {
        self.0.class_name(c)
    }
}

/// Helper shared by trait impls: the extent of a class name, as a value.
pub(crate) fn extent_value(src: &dyn DataSource, class: ClassId) -> Result<Value> {
    let oids = src.extent(class)?;
    Ok(Value::Set(oids.into_iter().map(Value::Oid).collect()))
}

/// Convenience: look a class up or fail with a language-level error.
pub fn require_class(src: &dyn DataSource, name: Symbol) -> Result<ClassId> {
    src.class_by_name(name)
        .ok_or_else(|| QueryError::from(OodbError::UnknownClass(name)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::{sym, AttrDef};

    fn db() -> (Database, ClassId) {
        let mut db = Database::new(sym("D"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::computed(
                    sym("Doubled"),
                    Type::Int,
                    ov_oodb::Expr::bin(
                        ov_oodb::BinOp::Add,
                        ov_oodb::Expr::self_attr("Age"),
                        ov_oodb::Expr::self_attr("Age"),
                    ),
                ),
            )
            .unwrap();
        (db, person)
    }

    #[test]
    fn database_resolves_stored_and_computed() {
        let (mut d, person) = db();
        let o = d
            .create_object(person, Value::tuple([("Age", Value::Int(30))]))
            .unwrap();
        assert!(matches!(
            DataSource::resolve(&d, o, sym("Age")).unwrap(),
            ResolvedAttr::Stored
        ));
        assert!(matches!(
            DataSource::resolve(&d, o, sym("Doubled")).unwrap(),
            ResolvedAttr::Computed { .. }
        ));
        assert!(DataSource::resolve(&d, o, sym("Ghost")).is_err());
    }

    #[test]
    fn attr_sig_and_class_type() {
        let (d, person) = db();
        let sig = DataSource::attr_sig(&d, person, sym("Doubled")).unwrap();
        assert_eq!(sig.ty, Type::Int);
        assert!(matches!(DataSource::class_type(&d, person), Type::Tuple(_)));
    }
}
