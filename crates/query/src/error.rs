//! Errors for the language layer.

use std::fmt;

use ov_oodb::OodbError;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, QueryError>;

/// A source position (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors raised while lexing, parsing, type-checking or evaluating.
#[derive(Clone, PartialEq, Debug)]
pub enum QueryError {
    /// Lexical error (bad character, unterminated string, …).
    Lex {
        /// Where it happened.
        pos: Pos,
        /// What went wrong.
        msg: String,
    },
    /// Syntax error.
    Parse {
        /// Where it happened.
        pos: Pos,
        /// What was expected/found.
        msg: String,
    },
    /// Static type error.
    Type(String),
    /// Runtime evaluation error.
    Eval(String),
    /// `select the` did not return exactly one element.
    TheCardinality {
        /// How many elements the query actually produced.
        got: usize,
    },
    /// An error from the data-model layer.
    Oodb(OodbError),
    /// A cooperative [`Budget`](crate::Budget) deadline expired; evaluation
    /// stopped at the next check point.
    Cancelled(crate::budget::BudgetBreach),
    /// A cooperative [`Budget`](crate::Budget) count limit (eval steps,
    /// rows, recursion depth) was exceeded.
    ResourceExhausted(crate::budget::BudgetBreach),
    /// A worker thread panicked mid-evaluation (e.g. an injected panic in a
    /// parallel scan chunk); the panic was caught at the chunk boundary and
    /// converted instead of poisoning the coordinator.
    Panicked {
        /// The site that caught the panic.
        site: &'static str,
        /// The panic payload, rendered.
        msg: String,
    },
}

impl QueryError {
    /// Convenience constructor for evaluation errors.
    pub fn eval(msg: impl Into<String>) -> QueryError {
        QueryError::Eval(msg.into())
    }

    /// Convenience constructor for type errors.
    pub fn ty(msg: impl Into<String>) -> QueryError {
        QueryError::Type(msg.into())
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            QueryError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            QueryError::Type(msg) => write!(f, "type error: {msg}"),
            QueryError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            QueryError::TheCardinality { got } => write!(
                f,
                "`select the` expected exactly one result element, got {got}"
            ),
            QueryError::Oodb(e) => write!(f, "{e}"),
            QueryError::Cancelled(b) => write!(f, "query cancelled: {b}"),
            QueryError::ResourceExhausted(b) => write!(f, "resource exhausted: {b}"),
            QueryError::Panicked { site, msg } => {
                write!(f, "worker panicked at `{site}`: {msg}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Oodb(e) => Some(e),
            QueryError::Cancelled(b) | QueryError::ResourceExhausted(b) => Some(b),
            _ => None,
        }
    }
}

impl QueryError {
    /// Is this error an injected/transient failure a retry could clear?
    /// (Budget breaches are *not* transient: retrying an exhausted budget
    /// burns time without changing the outcome.)
    pub fn is_transient(&self) -> bool {
        matches!(self, QueryError::Oodb(e) if e.is_transient())
    }
}

impl From<OodbError> for QueryError {
    fn from(e: OodbError) -> QueryError {
        QueryError::Oodb(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    #[test]
    fn displays_with_position() {
        let e = QueryError::Parse {
            pos: Pos { line: 3, col: 14 },
            msg: "expected `from`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:14: expected `from`");
    }

    #[test]
    fn wraps_oodb_errors() {
        let e: QueryError = OodbError::UnknownClass(sym("Ghost")).into();
        assert_eq!(e.to_string(), "unknown class `Ghost`");
        assert!(std::error::Error::source(&e).is_some());
    }
}
