//! Statement-level AST.
//!
//! Expressions are shared with the data-model crate ([`ov_oodb::Expr`]);
//! this module adds the statement forms: schema DDL, object loading,
//! updates, queries, and — crucially — the paper's **view-definition DDL**
//! (§3–§5): `create view`, `import`, `hide`, virtual-class declarations
//! with `includes` (plain, `like`, query, `imaginary`), and virtual
//! attribute declarations.

use ov_oodb::{Expr, SelectExpr, Symbol};

/// A syntactic type, resolved against a schema by the executor
/// (class names cannot be resolved to [`ov_oodb::ClassId`]s at parse time).
#[derive(Clone, PartialEq, Debug)]
pub enum TypeExpr {
    /// A name: a builtin (`string`, `integer`, `float`, `boolean`, `any`,
    /// `nothing`) or a class name.
    Name(Symbol),
    /// `[f: T, …]`
    Tuple(Vec<(Symbol, TypeExpr)>),
    /// `{T}`
    Set(Box<TypeExpr>),
    /// `list(T)`
    List(Box<TypeExpr>),
}

impl std::fmt::Display for TypeExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeExpr::Name(n) => write!(f, "{n}"),
            TypeExpr::Tuple(fields) => {
                write!(f, "[")?;
                for (i, (n, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                write!(f, "]")
            }
            TypeExpr::Set(t) => write!(f, "{{{t}}}"),
            TypeExpr::List(t) => write!(f, "list({t})"),
        }
    }
}

/// One item in a virtual class's `includes` list (§4.1): "each αᵢ is either
/// (1) the name of a previously defined class, (2) a database query that
/// returns a set of objects, or (3) `like B`" — plus §5's `imaginary` query
/// form.
#[derive(Clone, PartialEq, Debug)]
pub enum IncludeSpec {
    /// Generalization: the named class becomes a subclass.
    Class(Symbol),
    /// Specialization: the query's results are immediate instances.
    Query(SelectExpr),
    /// Behavioral generalization: all classes whose type is at least as
    /// specific as the named class's type.
    Like(Symbol),
    /// Imaginary population: each tuple produced by the query becomes a new
    /// object (§5).
    Imaginary(SelectExpr),
}

/// What an `import` statement brings in (§3).
#[derive(Clone, PartialEq, Debug)]
pub enum ImportWhat {
    /// `import all classes from database D`.
    AllClasses,
    /// `import class C from database D [as X]`.
    Class {
        /// The class to import (with all its subclasses).
        name: Symbol,
        /// Optional rename within the view.
        alias: Option<Symbol>,
    },
}

/// A parsed statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `database D;` — creates/selects the current database in a script.
    Database(Symbol),
    /// `class C [inherits P1, …] [type [f: T, …]];` — a base class with
    /// stored attributes.
    ClassDecl {
        /// The class name.
        name: Symbol,
        /// Direct superclass names (`inherits …`).
        parents: Vec<Symbol>,
        /// Stored attributes declared inline (`type [ … ]`).
        stored: Vec<(Symbol, TypeExpr)>,
    },
    /// `attribute A[(p: T, …)] [of type T] in class C [has value E];`
    /// (§2). Without `has value` the attribute is stored; the type may be
    /// omitted when inferable.
    AttributeDecl {
        /// The attribute name.
        name: Symbol,
        /// Parameters (methods), usually empty.
        params: Vec<(Symbol, TypeExpr)>,
        /// Declared result type; inferred when absent.
        ty: Option<TypeExpr>,
        /// The class the attribute is (re)defined in.
        class: Symbol,
        /// `has value` body; absent for stored declarations.
        body: Option<Expr>,
    },
    /// `object #n in C value [ … ];` — loads one object. The `#n` literal
    /// is script-local; the loader remaps it to a real oid.
    ObjectDecl {
        /// The script-local `#k` literal.
        oid: u64,
        /// The class the object is real in.
        class: Symbol,
        /// The tuple of stored attribute values.
        value: Expr,
    },
    /// `name n = #k;` — binds a persistent name.
    NameDecl {
        /// The persistent name.
        name: Symbol,
        /// The script-local `#k` literal it binds to.
        oid: u64,
    },
    /// `set E.A = V;` — updates a stored attribute.
    SetAttr {
        /// The receiver expression.
        target: Expr,
        /// The attribute to assign.
        attr: Symbol,
        /// The new value.
        value: Expr,
    },
    /// `delete E;` — deletes the object `E` evaluates to.
    Delete(Expr),
    /// `insert C value [ … ];` — creates an object in class `C` at runtime
    /// (errors on virtual classes, per §4.1: "it is not possible for a user
    /// to insert an object directly into a virtual class").
    Insert {
        /// The class to create the object in.
        class: Symbol,
        /// The tuple of stored attribute values.
        value: Expr,
    },
    /// A bare query expression.
    Query(Expr),
    /// `create view V;` (§3).
    CreateView(Symbol),
    /// `import … from database D;` (§3).
    Import {
        /// What to import.
        what: ImportWhat,
        /// The source database.
        db: Symbol,
    },
    /// `hide attribute A1[, A2 …] in class C;` (§3).
    HideAttrs {
        /// The attributes to hide.
        attrs: Vec<Symbol>,
        /// The class in which (and below which) they are hidden.
        class: Symbol,
    },
    /// `hide class C;` — removes a class (and its proper subtree) from the
    /// view.
    HideClass(Symbol),
    /// `class C[(X, …)] includes α1, …;` — a virtual class (§4/§5).
    VirtualClassDecl {
        /// The virtual class's name.
        name: Symbol,
        /// Parameter names (parameterized classes).
        params: Vec<Symbol>,
        /// The population includes.
        includes: Vec<IncludeSpec>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    #[test]
    fn type_expr_displays() {
        let t = TypeExpr::Set(Box::new(TypeExpr::Tuple(vec![
            (sym("City"), TypeExpr::Name(sym("string"))),
            (
                sym("Occupants"),
                TypeExpr::List(Box::new(TypeExpr::Name(sym("Person")))),
            ),
        ])));
        assert_eq!(t.to_string(), "{[City: string, Occupants: list(Person)]}");
    }
}
