//! Cost-based planning for compiled scans.
//!
//! PR 8 grew a statistics plane (`ov_oodb::stats`: cardinality, NDV via
//! HLL, min–max, null fraction) that nothing consumed; scans picked
//! their strategy — index pushdown, sequential compiled scan, parallel
//! split — by fixed shape heuristics. This module closes the loop: it
//! estimates per-scan row counts from the sketches (conjunct splitting,
//! so each `and` leg is costed independently), chooses a [`Strategy`]
//! per scan, and caches chosen plans keyed by the PR 8 query
//! fingerprint. The paper's view mechanism multiplies derived queries
//! (parameterized-class instantiation, stacked-view repopulation), so
//! one planning decision is amortized across thousands of
//! re-evaluations.
//!
//! Two invariants keep estimation honest:
//!
//! - **Estimates never affect correctness.** Every choice is validated
//!   at execution time: a pushdown plan whose index turns out not to
//!   exist is demoted to a sequential scan; a reordered join is only
//!   attempted when reordering provably cannot change the result set
//!   (independent class-extent bindings, no budget installed).
//! - **Plans expire.** A cached plan is invalidated when the source's
//!   `resolution_generation` moves and when EXPLAIN ANALYZE actuals
//!   diverge from the estimate by more than [`DRIFT_FACTOR`]× in either
//!   direction (the misestimate also counts in `planner.replans`).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use ov_oodb::stats::{stats, ClassStatistics};
use ov_oodb::{metric_counter, BinOp, Expr, SelectExpr, Symbol, UnOp, Value};

use crate::fingerprint::fingerprint_expr;
use crate::source::DataSource;

/// Selectivity assumed for a predicate leg the model cannot analyze.
pub const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;

/// Cardinality assumed for a class no scan has measured yet.
pub const DEFAULT_CARDINALITY: u64 = 1024;

/// An equality probe is only worth an index round-trip when the expected
/// candidate set is a fraction of the extent: `ndv` must exceed this.
/// (At NDV 2 — a boolean-ish column — the "index" hands back half the
/// extent and the batched sequential scan wins.)
pub const PUSHDOWN_MIN_NDV: u64 = 4;

/// Estimate-vs-actual divergence (either direction) that evicts a
/// cached plan and forces a re-plan.
pub const DRIFT_FACTOR: u64 = 10;

// ---------------------------------------------------------------------
// Enablement: a process default plus a thread-scoped override, same
// shape as the engine-mode switch in `compile.rs`.
// ---------------------------------------------------------------------

static PLANNER_ON: AtomicBool = AtomicBool::new(true);

thread_local! {
    static TLS_PLANNER: Cell<Option<bool>> = const { Cell::new(None) };
    static LAST_DECISION: RefCell<Option<Decision>> = const { RefCell::new(None) };
}

/// Turns the cost-based planner on or off process-wide. Off reproduces
/// the pre-planner fixed heuristics exactly (the E19 baseline).
pub fn set_planner_enabled(on: bool) {
    PLANNER_ON.store(on, Ordering::SeqCst);
}

/// Is the planner consulted for strategy choices on this thread?
pub fn planner_enabled() -> bool {
    TLS_PLANNER
        .with(|t| t.get())
        .unwrap_or_else(|| PLANNER_ON.load(Ordering::SeqCst))
}

/// Runs `f` with the planner forced on or off on this thread only.
pub fn with_planner<R>(on: bool, f: impl FnOnce() -> R) -> R {
    TLS_PLANNER.with(|t| {
        let prev = t.replace(Some(on));
        let r = f();
        t.set(prev);
        r
    })
}

// ---------------------------------------------------------------------
// Decisions
// ---------------------------------------------------------------------

/// The access path the planner chose for one scan.
#[derive(Clone, Debug, PartialEq)]
pub enum Strategy {
    /// Batched sequential compiled scan over the extent.
    Seq,
    /// Probe an equality index on `attr` for `value`, then re-test the
    /// candidates. Demoted to [`Strategy::Seq`] at execution time if the
    /// source has no such index.
    IndexPushdown {
        /// The attribute whose equality conjunct drives the probe.
        attr: Symbol,
        /// The literal being probed for.
        value: Value,
    },
    /// Split the extent across worker threads.
    Parallel {
        /// Number of workers the estimate was costed against.
        workers: usize,
    },
    /// Multi-binding nested loop with bindings iterated in `order`
    /// (indices into the select's binding list), cheapest first.
    Join {
        /// Binding order by estimated output rows, ascending.
        order: Vec<usize>,
    },
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Seq => write!(f, "seq"),
            Strategy::IndexPushdown { attr, .. } => write!(f, "index({attr})"),
            Strategy::Parallel { workers } => write!(f, "parallel x{workers}"),
            Strategy::Join { order } => {
                write!(f, "join(")?;
                for (i, b) in order.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// One planning outcome: the strategy, its row estimate, and whether it
/// came out of the plan cache.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// The chosen access path.
    pub strategy: Strategy,
    /// Estimated result rows (cardinality × selectivity, floored at 1
    /// for non-empty extents).
    pub est_rows: u64,
    /// `true` when the plan was served from the fingerprint-keyed cache.
    pub cache_hit: bool,
}

/// Clears the thread's "last planner decision" slot. Called at the top
/// of every planned query so EXPLAIN never reports a stale decision.
pub fn clear_last_decision() {
    LAST_DECISION.with(|d| *d.borrow_mut() = None);
}

/// Publishes the decision the planner just made for the running query,
/// so EXPLAIN and the workload registry can surface it.
pub fn set_last_decision(d: Decision) {
    LAST_DECISION.with(|slot| *slot.borrow_mut() = Some(d));
}

/// Takes the decision recorded for the query that just ran, if any.
pub fn take_last_decision() -> Option<Decision> {
    LAST_DECISION.with(|d| d.borrow_mut().take())
}

// ---------------------------------------------------------------------
// The plan cache
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct CachedPlan {
    strategy: Strategy,
    est_rows: u64,
    /// `resolution_generation` of the source the plan was made under; a
    /// moved generation invalidates the entry.
    generation: u64,
}

fn cache() -> &'static Mutex<HashMap<String, CachedPlan>> {
    static CACHE: OnceLock<Mutex<HashMap<String, CachedPlan>>> = OnceLock::new();
    CACHE.get_or_init(Mutex::default)
}

/// Drops every cached plan (tests and benchmarks use this to start from
/// a cold planner).
pub fn clear_plan_cache() {
    cache().lock().expect("plan cache poisoned").clear();
}

fn cache_lookup(fp: &str, generation: u64) -> Option<CachedPlan> {
    let guard = cache().lock().expect("plan cache poisoned");
    match guard.get(fp) {
        Some(c) if c.generation == generation => {
            metric_counter!("planner.plan_cache.hits").inc();
            Some(c.clone())
        }
        _ => {
            metric_counter!("planner.plan_cache.misses").inc();
            None
        }
    }
}

fn cache_store(fp: String, plan: CachedPlan) {
    cache()
        .lock()
        .expect("plan cache poisoned")
        .insert(fp, plan);
}

/// Rewrites the cached plan for `expr` to a sequential scan — called
/// when execution discovers a pushdown plan's index does not exist, so
/// later queries skip the doomed probe.
pub fn demote_to_seq(expr: &Expr) {
    let (fp, _) = fingerprint_expr(expr);
    let mut guard = cache().lock().expect("plan cache poisoned");
    if let Some(c) = guard.get_mut(&fp) {
        c.strategy = Strategy::Seq;
    }
}

/// Feeds a query's measured result rows back into the cache: when the
/// actuals diverge from the cached estimate by more than
/// [`DRIFT_FACTOR`]× in either direction the plan is evicted (counted
/// in `planner.replans`) and the next execution re-plans from fresher
/// statistics.
pub fn observe_actual(expr: &Expr, actual_rows: u64) {
    let (fp, _) = fingerprint_expr(expr);
    let mut guard = cache().lock().expect("plan cache poisoned");
    if let Some(c) = guard.get(&fp) {
        let est = c.est_rows.max(1);
        let act = actual_rows.max(1);
        if est / act >= DRIFT_FACTOR || act / est >= DRIFT_FACTOR {
            guard.remove(&fp);
            metric_counter!("planner.replans").inc();
        }
    }
}

// ---------------------------------------------------------------------
// Selectivity estimation
// ---------------------------------------------------------------------

/// Splits a filter into its top-level `and` legs, in evaluation order.
/// `truthy(a and b)` ⇔ `truthy(a) && truthy(b)`, so the legs can be
/// costed (and, where provably safe, evaluated) independently.
pub fn conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        match e {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            _ => out.push(e),
        }
    }
    walk(e, &mut out);
    out
}

/// `var.Attr = literal` (either orientation) with no call arguments —
/// the shape an equality index can serve.
pub fn eq_conjunct(leg: &Expr, var: Symbol) -> Option<(Symbol, &Value)> {
    let Expr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = leg
    else {
        return None;
    };
    let attr_of = |e: &Expr| -> Option<Symbol> {
        if let Expr::Attr { recv, name, args } = e {
            if args.is_empty() && matches!(recv.as_ref(), Expr::Name(n) if *n == var) {
                return Some(*name);
            }
        }
        None
    };
    if let (Some(attr), Expr::Lit(v)) = (attr_of(lhs), rhs.as_ref()) {
        return Some((attr, v));
    }
    if let (Some(attr), Expr::Lit(v)) = (attr_of(rhs), lhs.as_ref()) {
        return Some((attr, v));
    }
    None
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

/// Fraction of the `[min, max]` range selected by `op lit` (for `var.A
/// op lit`), assuming a uniform distribution.
fn range_fraction(op: BinOp, lit: f64, min: f64, max: f64) -> f64 {
    let width = max - min;
    if width <= 0.0 {
        // Degenerate (single-valued) range: the comparison either takes
        // everything or nothing; split the difference like an unknown.
        return DEFAULT_SELECTIVITY;
    }
    let below = ((lit - min) / width).clamp(0.0, 1.0);
    match op {
        BinOp::Lt | BinOp::Le => below,
        BinOp::Gt | BinOp::Ge => 1.0 - below,
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Selectivity of one predicate leg over `var`, from the class's
/// sketches. Unknown shapes and unmeasured attributes cost
/// [`DEFAULT_SELECTIVITY`].
fn leg_selectivity(cs: &ClassStatistics, var: Symbol, leg: &Expr) -> f64 {
    // var.Attr op literal (either orientation), no call arguments.
    let attr_cmp = |lhs: &Expr, rhs: &Expr| -> Option<(Symbol, Value, bool)> {
        let attr_of = |e: &Expr| -> Option<Symbol> {
            if let Expr::Attr { recv, name, args } = e {
                if args.is_empty() && matches!(recv.as_ref(), Expr::Name(n) if *n == var) {
                    return Some(*name);
                }
            }
            None
        };
        if let (Some(a), Expr::Lit(v)) = (attr_of(lhs), rhs) {
            return Some((a, v.clone(), false));
        }
        if let (Some(a), Expr::Lit(v)) = (attr_of(rhs), lhs) {
            return Some((a, v.clone(), true));
        }
        None
    };
    match leg {
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::And => leg_selectivity(cs, var, lhs) * leg_selectivity(cs, var, rhs),
            BinOp::Or => {
                let a = leg_selectivity(cs, var, lhs);
                let b = leg_selectivity(cs, var, rhs);
                (a + b - a * b).clamp(0.0, 1.0)
            }
            BinOp::Eq | BinOp::Ne => {
                let Some((attr, _, _)) = attr_cmp(lhs, rhs) else {
                    return DEFAULT_SELECTIVITY;
                };
                let Some(s) = cs.attrs.get(&attr) else {
                    return DEFAULT_SELECTIVITY;
                };
                // Column sketches come from *sampled* batches, so the HLL
                // NDV is bounded by the sample size, not the extent. When
                // the sample is (nearly) all-distinct, the column is a key
                // as far as we can tell — extrapolate NDV to the full
                // class cardinality instead of the sample's ceiling
                // (the textbook distinct-value estimator's key case).
                let observed = s.rows.saturating_sub(s.nulls).max(1);
                let ndv = if s.ndv.saturating_mul(10) >= observed.saturating_mul(9) {
                    cs.cardinality.unwrap_or(s.ndv).max(s.ndv).max(1) as f64
                } else {
                    s.ndv.max(1) as f64
                };
                let non_null = 1.0 - s.null_fraction;
                if *op == BinOp::Eq {
                    (non_null / ndv).clamp(0.0, 1.0)
                } else {
                    (non_null * (1.0 - 1.0 / ndv)).clamp(0.0, 1.0)
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let Some((attr, lit, flipped)) = attr_cmp(lhs, rhs) else {
                    return DEFAULT_SELECTIVITY;
                };
                let Some(s) = cs.attrs.get(&attr) else {
                    return DEFAULT_SELECTIVITY;
                };
                let (Some(lit), Some(min), Some(max)) = (
                    as_f64(&lit),
                    s.min.as_ref().and_then(as_f64),
                    s.max.as_ref().and_then(as_f64),
                ) else {
                    return DEFAULT_SELECTIVITY;
                };
                // `lit op var.A` mirrors to `var.A flip(op) lit`.
                let op = if flipped {
                    match op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::Le => BinOp::Ge,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::Ge => BinOp::Le,
                        other => *other,
                    }
                } else {
                    *op
                };
                (range_fraction(op, lit, min, max) * (1.0 - s.null_fraction)).clamp(0.0, 1.0)
            }
            _ => DEFAULT_SELECTIVITY,
        },
        Expr::Unary {
            op: UnOp::Not,
            expr,
        } => (1.0 - leg_selectivity(cs, var, expr)).clamp(0.0, 1.0),
        Expr::Lit(Value::Bool(true)) => 1.0,
        Expr::Lit(Value::Bool(false)) => 0.0,
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Combined selectivity of a filter over `var`: the product of its
/// conjunct legs' selectivities.
fn filter_selectivity(cs: &ClassStatistics, var: Symbol, filter: Option<&Expr>) -> f64 {
    let Some(f) = filter else { return 1.0 };
    conjuncts(f)
        .iter()
        .map(|leg| leg_selectivity(cs, var, leg))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

fn est_rows_from(card: u64, selectivity: f64) -> u64 {
    if card == 0 {
        return 0;
    }
    ((card as f64 * selectivity).round() as u64).max(1)
}

/// Estimated result rows for a single-binding scan of `class` filtered
/// by `filter`, from statistics alone. `None` when no scan has measured
/// the class yet (cold statistics — display call sites show nothing
/// rather than a guess).
pub fn estimate_select(class: Symbol, var: Symbol, filter: Option<&Expr>) -> Option<u64> {
    let cs = stats().class(class).snapshot();
    let card = cs.cardinality?;
    Some(est_rows_from(card, filter_selectivity(&cs, var, filter)))
}

// ---------------------------------------------------------------------
// Strategy choice
// ---------------------------------------------------------------------

/// Is an equality-index probe on `class.attr` expected to beat the
/// batched sequential scan? `true` when statistics are absent (the
/// probe itself is cheap and execution validates), `false` when the
/// sketch says the column is low-NDV — the candidate set would be a
/// large slice of the extent and per-candidate retests lose to the
/// batched scan.
pub fn index_worthwhile(class: Symbol, attr: Symbol) -> bool {
    let cs = stats().class(class).snapshot();
    match cs.attrs.get(&attr) {
        Some(s) if s.rows > 0 => s.ndv > PUSHDOWN_MIN_NDV,
        _ => true,
    }
}

/// Should a scan of `rows` rows split across `workers` threads? Costs
/// the parallel path as `rows / workers` plus a fixed per-split
/// overhead of `overhead_rows` row-equivalents (thread spawn, chunk
/// bookkeeping, result merge) and splits only when that beats the
/// sequential `rows`.
pub fn choose_split(rows: usize, workers: usize, overhead_rows: usize) -> bool {
    workers > 1 && rows >= 2 && rows / workers + overhead_rows < rows
}

/// Plans a canonical single-binding class scan: index pushdown when the
/// filter has a high-NDV equality conjunct, sequential otherwise.
/// Consults and fills the fingerprint-keyed plan cache.
pub fn plan_select(src: &dyn DataSource, expr: &Expr, q: &SelectExpr) -> Decision {
    let generation = src.resolution_generation();
    let (fp, _) = fingerprint_expr(expr);
    if let Some(c) = cache_lookup(&fp, generation) {
        // Fingerprints are literal-normalized, so one cache entry serves
        // every literal value of the same query shape. The pushdown probe
        // value must therefore come from *this* query's filter, not the
        // cached plan (which holds the literal of whichever query planned
        // first).
        let strategy = match c.strategy {
            Strategy::IndexPushdown {
                attr,
                value: cached,
            } => {
                let rebound = q.filter.as_deref().and_then(|f| {
                    conjuncts(f).into_iter().find_map(|leg| {
                        let (a, v) = eq_conjunct(leg, q.bindings[0].0)?;
                        (a == attr).then(|| v.clone())
                    })
                });
                Strategy::IndexPushdown {
                    attr,
                    value: rebound.unwrap_or(cached),
                }
            }
            other => other,
        };
        return Decision {
            strategy,
            est_rows: c.est_rows,
            cache_hit: true,
        };
    }
    let (var, coll) = &q.bindings[0];
    let class = match coll {
        Expr::Name(n) => *n,
        _ => Symbol::from("?"),
    };
    let cs = stats().class(class).snapshot();
    let card = cs.cardinality.unwrap_or(DEFAULT_CARDINALITY);
    let est_rows = est_rows_from(card, filter_selectivity(&cs, *var, q.filter.as_deref()));
    let strategy = q
        .filter
        .as_deref()
        .and_then(|f| {
            conjuncts(f).into_iter().find_map(|leg| {
                let (attr, value) = eq_conjunct(leg, *var)?;
                if index_worthwhile(class, attr) {
                    Some(Strategy::IndexPushdown {
                        attr,
                        value: value.clone(),
                    })
                } else {
                    None
                }
            })
        })
        .unwrap_or(Strategy::Seq);
    cache_store(
        fp,
        CachedPlan {
            strategy: strategy.clone(),
            est_rows,
            generation,
        },
    );
    Decision {
        strategy,
        est_rows,
        cache_hit: false,
    }
}

/// Orders a multi-binding select's bindings by estimated per-binding
/// output rows (extent cardinality × the selectivity of the legs that
/// mention only that binding), cheapest first. `classes[i]` names the
/// collection of binding `i`; `cards[i]` is its measured extent size.
/// Consults and fills the plan cache; `est_rows` is the product of the
/// per-binding estimates discounted by [`DEFAULT_SELECTIVITY`] per
/// cross-binding leg.
pub fn plan_join(
    src: &dyn DataSource,
    expr: &Expr,
    q: &SelectExpr,
    classes: &[Symbol],
    cards: &[u64],
) -> Decision {
    let generation = src.resolution_generation();
    let (fp, _) = fingerprint_expr(expr);
    if let Some(c) = cache_lookup(&fp, generation) {
        if let Strategy::Join { .. } = c.strategy {
            return Decision {
                strategy: c.strategy,
                est_rows: c.est_rows,
                cache_hit: true,
            };
        }
    }
    let vars: Vec<Symbol> = q.bindings.iter().map(|(v, _)| *v).collect();
    let legs: Vec<&Expr> = q.filter.as_deref().map(conjuncts).unwrap_or_default();
    let mut per_binding: Vec<f64> = Vec::with_capacity(vars.len());
    let mut cross_legs = 0usize;
    let mut counted = vec![false; legs.len()];
    for (i, var) in vars.iter().enumerate() {
        let cs = stats().class(classes[i]).snapshot();
        let mut sel = 1.0f64;
        for (li, leg) in legs.iter().enumerate() {
            let mentioned = mentioned_vars(leg, &vars);
            if mentioned == Some(vec![i]) {
                sel *= leg_selectivity(&cs, *var, leg);
                counted[li] = true;
            }
        }
        per_binding.push((cards[i] as f64 * sel).max(if cards[i] == 0 { 0.0 } else { 1.0 }));
    }
    for (li, leg) in legs.iter().enumerate() {
        if !counted[li] && mentioned_vars(leg, &vars).is_some_and(|m| m.len() > 1) {
            cross_legs += 1;
        }
    }
    let mut order: Vec<usize> = (0..vars.len()).collect();
    order.sort_by(|&a, &b| {
        per_binding[a]
            .partial_cmp(&per_binding[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let est = per_binding.iter().product::<f64>() * DEFAULT_SELECTIVITY.powi(cross_legs as i32);
    let est_rows = (est.round() as u64).max(if cards.contains(&0) { 0 } else { 1 });
    let strategy = Strategy::Join { order };
    cache_store(
        fp,
        CachedPlan {
            strategy: strategy.clone(),
            est_rows,
            generation,
        },
    );
    Decision {
        strategy,
        est_rows,
        cache_hit: false,
    }
}

/// The set of select-variable indices a leg mentions, or `None` when
/// the leg contains anything the reorderer must not touch: a free name,
/// `self`, a nested select, an aggregate, or a parameterized-class
/// application. (Those shapes may shadow variables or depend on
/// evaluation context, so the leg — and with it the whole join — stays
/// on the exact-order path.)
pub fn mentioned_vars(e: &Expr, vars: &[Symbol]) -> Option<Vec<usize>> {
    fn walk(e: &Expr, vars: &[Symbol], seen: &mut Vec<bool>) -> bool {
        match e {
            Expr::Lit(_) => true,
            Expr::Name(n) => match vars.iter().rposition(|v| v == n) {
                Some(i) => {
                    seen[i] = true;
                    true
                }
                None => false,
            },
            Expr::Attr { recv, args, .. } => {
                walk(recv, vars, seen) && args.iter().all(|a| walk(a, vars, seen))
            }
            Expr::Unary { expr, .. } => walk(expr, vars, seen),
            Expr::Binary { lhs, rhs, .. } => walk(lhs, vars, seen) && walk(rhs, vars, seen),
            Expr::If { cond, then, els } => {
                walk(cond, vars, seen) && walk(then, vars, seen) && walk(els, vars, seen)
            }
            Expr::TupleCons(fields) => fields.iter().all(|(_, e)| walk(e, vars, seen)),
            Expr::SetCons(items) | Expr::ListCons(items) => {
                items.iter().all(|e| walk(e, vars, seen))
            }
            Expr::IsA { expr, .. } => walk(expr, vars, seen),
            Expr::SelfRef
            | Expr::Select(_)
            | Expr::Exists(_)
            | Expr::Aggregate { .. }
            | Expr::Apply { .. } => false,
        }
    }
    let mut seen = vec![false; vars.len()];
    if !walk(e, vars, &mut seen) {
        return None;
    }
    Some(
        seen.iter()
            .enumerate()
            .filter_map(|(i, &s)| s.then_some(i))
            .collect(),
    )
}

/// Records the decision for the query that just executed and, on
/// success, feeds the measured row count back for drift detection.
pub fn record_outcome(expr: &Expr, decision: Decision, result_rows: Option<u64>) {
    if let Some(rows) = result_rows {
        observe_actual(expr, rows);
    }
    set_last_decision(decision);
}

/// Plan-cache hit/miss/replan counters, for `.engine`-style reporting.
pub fn plan_cache_counters() -> (u64, u64, u64) {
    (
        metric_counter!("planner.plan_cache.hits").get(),
        metric_counter!("planner.plan_cache.misses").get(),
        metric_counter!("planner.replans").get(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use ov_oodb::sym;

    fn leg(src: &str) -> Expr {
        parse_expr(src).expect("parse")
    }

    fn measured(card: u64, attr: &str, values: impl IntoIterator<Item = Value>) -> Symbol {
        // A unique class name per call keeps global-registry tests
        // independent of each other and of execution order.
        use std::sync::atomic::AtomicU64;
        static N: AtomicU64 = AtomicU64::new(0);
        let class = sym(&format!("PlannerT{}", N.fetch_add(1, Ordering::SeqCst)));
        let cs = stats().class(class);
        cs.note_cardinality(0, card);
        let vals: Vec<Value> = values.into_iter().collect();
        cs.observe_column(0, sym(attr), vals.iter().map(Some));
        class
    }

    #[test]
    fn conjuncts_split_only_top_level_ands() {
        let e = leg("P.Age > 1 and (P.Age < 9 or P.Age = 4) and P.Name = \"x\"");
        assert_eq!(conjuncts(&e).len(), 3);
        let single = leg("P.Age > 1 or P.Age < 9");
        assert_eq!(conjuncts(&single).len(), 1);
    }

    #[test]
    fn eq_selectivity_uses_ndv_and_null_fraction() {
        // 100 observed rows cycling through 10 cities: a genuinely
        // repeating column, so NDV is used as-is (no key extrapolation).
        let class = measured(
            100,
            "City",
            (0..100).map(|i| Value::str(&format!("c{}", i % 10))),
        );
        let est = estimate_select(class, sym("P"), Some(&leg("P.City = \"c3\""))).unwrap();
        // 100 rows / ndv≈10 ≈ 10 rows.
        assert!((5..=20).contains(&est), "est={est}");
    }

    #[test]
    fn all_distinct_samples_extrapolate_to_a_key() {
        // The sample saw 200 rows, all distinct — but the class holds
        // 100_000. A key column's equality estimate must extrapolate NDV
        // to the cardinality (est ≈ 1), not stop at the sample's ceiling
        // (est ≈ 500), or the drift canary would evict every key probe.
        let class = measured(
            100_000,
            "Name",
            (0..200).map(|i| Value::str(&format!("p{i}"))),
        );
        let est = estimate_select(class, sym("P"), Some(&leg("P.Name = \"p7\""))).unwrap();
        assert!(est <= 5, "est={est}");
    }

    #[test]
    fn range_selectivity_uses_min_max() {
        let class = measured(1000, "Age", (0..100).map(Value::Int));
        let est = estimate_select(class, sym("P"), Some(&leg("P.Age >= 90"))).unwrap();
        assert!((50..=200).contains(&est), "est={est}");
        let half = estimate_select(class, sym("P"), Some(&leg("P.Age < 50"))).unwrap();
        assert!((300..=700).contains(&half), "half={half}");
    }

    #[test]
    fn conjunction_multiplies_and_cold_stats_are_none() {
        let class = measured(1000, "Age", (0..100).map(Value::Int));
        let both =
            estimate_select(class, sym("P"), Some(&leg("P.Age >= 90 and P.Age >= 90"))).unwrap();
        assert!(both < 50, "both={both}");
        assert_eq!(
            estimate_select(sym("NoSuchClassEver"), sym("P"), None),
            None
        );
    }

    #[test]
    fn low_ndv_vetoes_the_index_and_unknown_allows_it() {
        let class = measured(
            100,
            "Sex",
            (0..100).map(|i| Value::str(if i % 2 == 0 { "m" } else { "f" })),
        );
        assert!(!index_worthwhile(class, sym("Sex")));
        assert!(index_worthwhile(class, sym("NeverObserved")));
        let unique = measured(100, "Name", (0..100).map(|i| Value::str(&format!("p{i}"))));
        assert!(index_worthwhile(unique, sym("Name")));
    }

    #[test]
    fn split_choice_weighs_overhead_against_rows() {
        assert!(!choose_split(10, 4, 1000), "tiny scan must stay sequential");
        assert!(choose_split(100_000, 4, 1024));
        assert!(!choose_split(100_000, 1, 0), "one worker never splits");
    }

    #[test]
    fn mentioned_vars_classifies_legs() {
        let vars = [sym("P"), sym("Q")];
        assert_eq!(mentioned_vars(&leg("P.Age > 5"), &vars), Some(vec![0]));
        assert_eq!(
            mentioned_vars(&leg("P.Age > Q.Age"), &vars),
            Some(vec![0, 1])
        );
        assert_eq!(mentioned_vars(&leg("1 = 1"), &vars), Some(vec![]));
        assert_eq!(
            mentioned_vars(&leg("maggy.Age > 5"), &vars),
            None,
            "free name"
        );
        assert_eq!(
            mentioned_vars(&leg("exists(select R from R in Person)"), &vars),
            None,
            "nested select"
        );
    }

    #[test]
    fn with_planner_scopes_to_the_thread() {
        let default = planner_enabled();
        with_planner(!default, || assert_eq!(planner_enabled(), !default));
        assert_eq!(planner_enabled(), default);
    }

    #[test]
    fn drift_evicts_and_counts_a_replan() {
        let fp_expr = leg("select P from P in PlannerDriftClass where P.Age = 1");
        let class = measured(1000, "Age", (0..100).map(Value::Int));
        // Manufacture a cached plan with a wild estimate, then observe.
        let (fp, _) = fingerprint_expr(&fp_expr);
        cache_store(
            fp.clone(),
            CachedPlan {
                strategy: Strategy::Seq,
                est_rows: 1000,
                generation: 0,
            },
        );
        let before = metric_counter!("planner.replans").get();
        observe_actual(&fp_expr, 1); // 1000x off
        assert!(cache().lock().unwrap().get(&fp).is_none(), "plan evicted");
        assert_eq!(metric_counter!("planner.replans").get(), before + 1);
        let _ = class;
    }

    #[test]
    fn cache_hit_rebinds_the_pushdown_literal() {
        // Fingerprints normalize literals, so `Age = 6` and `Age = 21`
        // share one cache entry; the served plan must probe the *current*
        // query's literal, not the one that planned first.
        let db = ov_oodb::Database::new(sym("PlannerRebind"));
        for lit in [6, 21] {
            let expr = parse_expr(&format!(
                "select P from P in PlannerRebindClass where P.Age = {lit}"
            ))
            .unwrap();
            let Expr::Select(q) = &expr else {
                unreachable!()
            };
            let d = plan_select(&db, &expr, q);
            if lit == 6 {
                // Seed the shared entry with a pushdown plan for value 6.
                let (fp, _) = fingerprint_expr(&expr);
                cache_store(
                    fp,
                    CachedPlan {
                        strategy: Strategy::IndexPushdown {
                            attr: sym("Age"),
                            value: Value::Int(6),
                        },
                        est_rows: d.est_rows,
                        generation: db.resolution_generation(),
                    },
                );
            } else {
                assert!(d.cache_hit, "second literal should hit the shared entry");
                assert_eq!(
                    d.strategy,
                    Strategy::IndexPushdown {
                        attr: sym("Age"),
                        value: Value::Int(21)
                    },
                    "probe value must come from the current query"
                );
            }
        }
    }
}
