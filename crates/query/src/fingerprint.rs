//! Query fingerprinting: literal-normalized identity for workload grouping.
//!
//! Two queries that differ only in their literals — `Age > 21` vs
//! `Age > 65`, `Name = "a"` vs `Name = "b"` — are the same *shape* and
//! should aggregate under one workload entry. [`fingerprint_expr`] rewrites
//! every literal in the typed AST to the placeholder name `?` (via the same
//! structure-preserving rewriter the view layer uses for class-parameter
//! substitution), renders the normalized expression, and hashes the
//! rendering with FNV-1a 64. The fingerprint is a pure function of the
//! normalized text: no pointers, no interner indices, no process state —
//! the same query text produces the same 16-hex-digit fingerprint in every
//! session, which is what lets workload files from different runs be
//! compared line-by-line.
//!
//! Names are deliberately *not* normalized: `select P from P in Person` and
//! `select E from E in Employee` are different shapes (different classes,
//! different costs). Only `Expr::Lit` nodes are folded.

use ov_oodb::{sym, Expr};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`. Stable across platforms and sessions — the
/// algorithm has no seed and no pointer-derived state.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Replaces every literal in `e` with the placeholder name `?`, preserving
/// all structure, names, and operators.
pub fn normalize_expr(e: &Expr) -> Expr {
    crate::exec::rewrite_expr(e, &mut |expr| {
        if matches!(expr, Expr::Lit(_)) {
            Some(Expr::Name(sym("?")))
        } else {
            None
        }
    })
}

/// Fingerprints a parsed query: returns `(fingerprint, normalized_text)`
/// where `fingerprint` is 16 lowercase hex digits of the FNV-1a 64 hash of
/// `normalized_text`, and `normalized_text` is the literal-normalized
/// rendering of `e`.
pub fn fingerprint_expr(e: &Expr) -> (String, String) {
    let normalized = normalize_expr(e).to_string();
    let fp = format!("{:016x}", fnv1a(normalized.as_bytes()));
    (fp, normalized)
}

/// Fingerprints a query string. Returns `None` when the text does not
/// parse (unparseable queries have no shape to aggregate under).
pub fn fingerprint_query(query: &str) -> Option<(String, String)> {
    let e = crate::parser::parse_expr(query).ok()?;
    Some(fingerprint_expr(&e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_fold_but_names_do_not() {
        let (fp_a, norm_a) =
            fingerprint_query("select P from P in Person where P.Age > 21").unwrap();
        let (fp_b, norm_b) =
            fingerprint_query("select P from P in Person where P.Age > 65").unwrap();
        assert_eq!(fp_a, fp_b);
        assert_eq!(norm_a, norm_b);
        assert!(norm_a.contains('?'), "literal should fold: {norm_a}");

        let (fp_c, _) = fingerprint_query("select E from E in Employee where E.Age > 21").unwrap();
        assert_ne!(fp_a, fp_c, "different class = different shape");
    }

    #[test]
    fn string_and_int_literals_collapse_to_the_same_shape() {
        let (fp_a, _) =
            fingerprint_query("select P from P in Person where P.Name = \"x\"").unwrap();
        let (fp_b, _) = fingerprint_query("select P from P in Person where P.Name = 7").unwrap();
        assert_eq!(fp_a, fp_b);
    }

    #[test]
    fn fingerprints_are_stable_across_sessions() {
        // Hard-coded expectations: if these change, every workload file
        // ever written becomes incomparable with new runs. The values are
        // a pure FNV-1a 64 of the normalized rendering below — nothing
        // session- or process-dependent feeds the hash.
        let (fp, norm) = fingerprint_query("select P from P in Person where P.Age > 21").unwrap();
        assert_eq!(norm, "(select P from P in Person where P.Age > ?)");
        assert_eq!(fp, format!("{:016x}", fnv1a(norm.as_bytes())));
        assert_eq!(fp, "dac72a2eff38dcb7");
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn unparseable_queries_have_no_fingerprint() {
        assert!(fingerprint_query("select where from").is_none());
    }
}
