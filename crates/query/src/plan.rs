//! Plan introspection and structured tracing (the `EXPLAIN` substrate).
//!
//! PR 1 gave population requests three resolution paths — cache hit, delta
//! update from the store's change journal, full recompute — plus parallel
//! scans and index pushdown inside a recompute. Nothing reported *which*
//! path fired. This module is the record of that decision: the view layer
//! emits [`PopulationTrace`] events through a thread-local collector while
//! it evaluates, and [`run_query_traced`] wraps a query with per-stage
//! timings ([`Stage`]) plus every population event the evaluation triggered.
//!
//! The collector is thread-local on purpose: population happens deep inside
//! `DataSource::deep_extent` calls whose signatures know nothing about
//! tracing, and threading a context through every evaluator frame would
//! infect the whole query layer. Instead, the explaining caller brackets
//! the work with [`collect`], and the view layer calls
//! [`begin_population`] / [`record_scan`] / [`end_population`] at the
//! decision points. When no collector is installed every hook is a cheap
//! thread-local read followed by a no-op, so the untraced hot path stays
//! untraced. Worker threads spawned *inside* a traced evaluation (parallel
//! scans) do not see the parent's collector — the chunk count is recorded
//! by the coordinating thread, which is the one making the plan decision.

use std::cell::RefCell;
use std::fmt;

use ov_oodb::Symbol;

use crate::error::Result;
use crate::source::DataSource;

/// Which evaluation engine ran a scan's per-row predicate work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The scan ran the compiled predicate engine ([`crate::compile`]).
    /// Compiled scans execute over columnar batches (attribute columns
    /// prefetched per batch, locks amortized across it); the observable
    /// behavior — values, errors, budget accounting — is identical at
    /// every batch size, but the marker carries the width so EXPLAIN
    /// readers can see whether a scan actually ran batched.
    Compiled {
        /// The [`crate::compile::batch_rows`] setting the scan ran under
        /// (`0` = row-at-a-time, no prefetch).
        batch: usize,
    },
    /// The scan ran the tree-walking interpreter (either by choice — see
    /// [`crate::EngineMode`] — or because the expression fell outside the
    /// compiler's covered subset).
    Interpreted,
}

impl Engine {
    /// The compiled engine at this thread's current batch width.
    pub fn compiled_now() -> Engine {
        Engine::Compiled {
            batch: crate::compile::batch_rows(),
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Compiled { batch } => write!(f, "compiled b={batch}"),
            Engine::Interpreted => write!(f, "interp"),
        }
    }
}

/// Measured execution counters for one scan (or one whole traced query).
///
/// `rows_scanned`, `rows_matched`, and the budget charges (`steps`,
/// `rows_charged`) are **engine-invariant**: the compiled engine and the
/// tree-walking interpreter report identical numbers for semantically
/// identical work, at every batch width — the differential proptest suite
/// gates this. `batches`, `cache_hits`, and `cache_misses` are
/// compiled-engine diagnostics (the interpreter has no columnar batches or
/// resolution-slot caches and reports 0).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanActuals {
    /// Rows the scan considered (binding tuples completed, before the
    /// filter ran).
    pub rows_scanned: u64,
    /// Rows that passed the filter.
    pub rows_matched: u64,
    /// Columnar batches the compiled engine prefetched (0 for the
    /// interpreter and for row-at-a-time compiled scans).
    pub batches: u64,
    /// Budget steps charged while the scan ran (0 when no
    /// [`crate::Budget`] was installed). Measured as a before/after delta
    /// on the thread's budget, so it is engine-agnostic by construction.
    pub steps: u64,
    /// Budget rows charged while the scan ran (same bracketing).
    pub rows_charged: u64,
    /// Resolution-slot cache hits (compiled engine only).
    pub cache_hits: u64,
    /// Resolution-slot cache misses (compiled engine only).
    pub cache_misses: u64,
}

impl ScanActuals {
    /// Are all counters zero (nothing measured)?
    pub fn is_zero(&self) -> bool {
        *self == ScanActuals::default()
    }

    /// Folds `other`'s **work counters** (rows, batches, cache traffic)
    /// into `self`. Budget charges are deliberately excluded: each frame's
    /// `steps`/`rows_charged` come from its own bracketing delta, which
    /// already includes every nested frame's charges — folding them too
    /// would double-count.
    pub fn absorb(&mut self, other: &ScanActuals) {
        self.rows_scanned += other.rows_scanned;
        self.rows_matched += other.rows_matched;
        self.batches += other.batches;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }
}

impl fmt::Display for ScanActuals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scanned={} matched={} batches={} steps={} rows_charged={} cache={}/{}",
            self.rows_scanned,
            self.rows_matched,
            self.batches,
            self.steps,
            self.rows_charged,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
        )
    }
}

/// How one include-term scan inside a full recompute was executed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanKind {
    /// Plain single-threaded evaluation over the source extent.
    Sequential {
        /// Which engine evaluated the predicate per row.
        engine: Engine,
    },
    /// The extent was split across worker threads.
    Parallel {
        /// Number of chunks the extent was split into.
        chunks: usize,
        /// Which engine evaluated the predicate per row.
        engine: Engine,
    },
    /// An equality conjunct was answered from a secondary index.
    IndexPushdown {
        /// The index used, as `Class.Attr`.
        index: String,
        /// Which engine re-checked the full filter per candidate.
        engine: Engine,
    },
}

impl fmt::Display for ScanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Interpreted scans keep the pre-engine rendering ("[seq]" …) so
        // existing EXPLAIN consumers are unaffected; compiled scans append
        // the marker.
        let (body, engine) = match self {
            ScanKind::Sequential { engine } => ("seq".to_owned(), engine),
            ScanKind::Parallel { chunks, engine } => (format!("parallel ×{chunks}"), engine),
            ScanKind::IndexPushdown { index, engine } => (format!("index {index}"), engine),
        };
        match engine {
            Engine::Interpreted => write!(f, "[{body}]"),
            compiled => write!(f, "[{body} {compiled}]"),
        }
    }
}

/// One include-term scan inside a full recompute: how it was executed,
/// plus the counters it measured while running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanEvent {
    /// How the scan was executed.
    pub kind: ScanKind,
    /// What the scan measured ([`ScanActuals::default`] when the scan ran
    /// without an actuals frame, e.g. from a pre-actuals caller).
    pub actuals: ScanActuals,
    /// The planner's row estimate for this scan, when one was produced
    /// (`None` for pre-planner callers or cold statistics).
    pub est_rows: Option<u64>,
}

impl fmt::Display for ScanEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(est) = self.est_rows {
            write!(f, " est_rows={est}")?;
        }
        if !self.actuals.is_zero() {
            write!(f, " ({})", self.actuals)?;
        }
        Ok(())
    }
}

/// Which of the three population paths resolved a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PopPath {
    /// The version-keyed cache was current; no evaluation happened.
    CacheHit,
    /// The cached population was patched from the store change journal.
    Delta {
        /// Number of changed oids whose membership was re-tested.
        retested: usize,
    },
    /// The population was evaluated from scratch.
    FullRecompute {
        /// How each include-term scan was executed, in evaluation order.
        scans: Vec<ScanEvent>,
    },
    /// Recomputation failed (fault, timeout) and the last good cached
    /// population was served instead — the result is explicitly stale.
    StaleServe {
        /// How many recompute attempts (initial + retries) failed before
        /// the view fell back to the cached population.
        attempts: u32,
    },
}

impl fmt::Display for PopPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopPath::CacheHit => write!(f, "CacheHit"),
            PopPath::Delta { retested } => write!(f, "Delta{{retested={retested}}}"),
            PopPath::FullRecompute { scans } => {
                write!(f, "FullRecompute")?;
                for s in scans {
                    write!(f, " {s}")?;
                }
                Ok(())
            }
            PopPath::StaleServe { attempts } => write!(f, "StaleServe{{attempts={attempts}}}"),
        }
    }
}

/// The path outcome the view layer reports to [`end_population`]; the
/// collector grafts the recorded scans onto `FullRecompute` itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopOutcome {
    /// See [`PopPath::CacheHit`].
    CacheHit,
    /// See [`PopPath::Delta`].
    Delta {
        /// Number of changed oids re-tested.
        retested: usize,
    },
    /// See [`PopPath::FullRecompute`].
    FullRecompute,
    /// See [`PopPath::StaleServe`].
    StaleServe {
        /// Failed recompute attempts before the stale fallback.
        attempts: u32,
    },
}

/// One population request: which class, which path, how many members, how
/// long.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PopulationTrace {
    /// The virtual (or imaginary) class whose population was requested.
    pub class: Symbol,
    /// The resolution path taken.
    pub path: PopPath,
    /// Number of members in the resulting population.
    pub rows: usize,
    /// Wall-clock time of the request, in nanoseconds.
    pub nanos: u64,
}

impl fmt::Display for PopulationTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "population {}: {} (rows={}, {})",
            self.class,
            self.path,
            self.rows,
            fmt_ns(self.nanos)
        )
    }
}

/// One timed stage of a traced query (parse, typecheck, optimize, execute).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stage {
    /// Stage name.
    pub name: &'static str,
    /// Wall-clock time, in nanoseconds.
    pub nanos: u64,
    /// Stage-specific detail (inferred type, rewritten expression, …).
    pub detail: String,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<10} {:>9}", self.name, fmt_ns(self.nanos))?;
        if !self.detail.is_empty() {
            write!(f, "  {}", self.detail)?;
        }
        Ok(())
    }
}

/// The full trace of one query: per-stage timings plus every population
/// request the execution triggered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Timed stages, in order.
    pub stages: Vec<Stage>,
    /// Population requests fired during execution, in completion order.
    pub populations: Vec<PopulationTrace>,
    /// Result cardinality, when the result is a set or list.
    pub rows: Option<usize>,
    /// Measured totals for the whole execution: every scan's work counters
    /// folded together, plus the budget charges of the execute stage.
    pub actuals: ScanActuals,
    /// The engine that ran the top-level expression.
    pub engine: Option<Engine>,
    /// The query's literal-normalized fingerprint (16 hex digits; see
    /// [`crate::fingerprint`]). Stable across processes for the same
    /// normalized query text.
    pub fingerprint: String,
    /// The literal-normalized query text the fingerprint hashes.
    pub normalized: String,
    /// The planner's decision for the top-level scan, when the cost-based
    /// planner ran (see [`crate::planner`]).
    pub planner: Option<PlanChoice>,
}

/// The planner decision a traced query surfaces: chosen strategy, row
/// estimate, and whether the plan came from the fingerprint-keyed cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanChoice {
    /// Rendered strategy (`seq`, `index(Attr)`, `parallel x4`, `join(…)`).
    pub strategy: String,
    /// Estimated result rows at planning time.
    pub est_rows: u64,
    /// Whether the plan was served from the plan cache.
    pub cache_hit: bool,
}

impl fmt::Display for PlanChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "strategy={} est_rows={} plan_cache={}",
            self.strategy,
            self.est_rows,
            if self.cache_hit { "h" } else { "m" }
        )
    }
}

impl fmt::Display for QueryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stages {
            writeln!(f, "{s}")?;
        }
        for p in &self.populations {
            writeln!(f, "{p}")?;
        }
        if let Some(engine) = self.engine {
            writeln!(f, "engine: {engine}")?;
        }
        if let Some(planner) = &self.planner {
            writeln!(f, "planner: {planner}")?;
        }
        if !self.actuals.is_zero() {
            writeln!(f, "actuals: {}", self.actuals)?;
        }
        if !self.fingerprint.is_empty() {
            writeln!(f, "fingerprint: {}  {}", self.fingerprint, self.normalized)?;
        }
        if let Some(rows) = self.rows {
            writeln!(f, "rows: {rows}")?;
        }
        Ok(())
    }
}

/// Renders a nanosecond duration with a human unit (`870ns`, `12.4µs`,
/// `3.1ms`, `2.05s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// One in-flight population frame: the scans recorded since its
/// [`begin_population`].
type ScanFrame = Vec<ScanEvent>;

struct Collector {
    events: Vec<PopulationTrace>,
    /// Stack of open population frames (populations can nest when a view
    /// body mentions another virtual class).
    frames: Vec<ScanFrame>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    /// Stack of open actuals frames (see [`with_scan_actuals`]); separate
    /// from the collector so budget/row accounting can be measured even
    /// where no population event is being built.
    static ACTUALS: RefCell<Vec<ScanActuals>> = const { RefCell::new(Vec::new()) };
}

/// Is an actuals frame open on this thread? Engine drivers check this once
/// per scan before reporting (the per-row counting itself is plain local
/// integers and is never gated).
pub fn actuals_active() -> bool {
    ACTUALS.with(|a| !a.borrow().is_empty())
}

/// Folds measured work counters into the innermost open actuals frame.
/// No-op when no frame is open (the untraced, unprofiled hot path).
pub fn add_actuals(actuals: &ScanActuals) {
    ACTUALS.with(|a| {
        if let Some(top) = a.borrow_mut().last_mut() {
            top.absorb(actuals);
        }
    });
}

/// Runs `f` with a fresh actuals frame on this thread and returns its
/// result together with everything measured while it ran: work counters
/// reported by engine drivers via [`add_actuals`] (folded up from nested
/// frames too), plus the thread budget's step/row charges as a
/// before/after delta (0 when no [`crate::Budget`] is installed). The
/// budget delta is measured here — outside both engines — so compiled and
/// interpreted runs of the same work are identical by construction.
///
/// On return the popped frame's work counters are folded into the parent
/// frame (if one is open); budget charges are not (the parent's own delta
/// already covers them).
pub fn with_scan_actuals<R>(f: impl FnOnce() -> R) -> (R, ScanActuals) {
    let budget = crate::budget::current();
    let before = budget
        .as_ref()
        .map(|b| (b.steps_used(), b.rows_used()))
        .unwrap_or((0, 0));
    ACTUALS.with(|a| a.borrow_mut().push(ScanActuals::default()));
    let r = f();
    let mut actuals = ACTUALS.with(|a| {
        let mut frames = a.borrow_mut();
        let popped = frames.pop().unwrap_or_default();
        if let Some(parent) = frames.last_mut() {
            parent.absorb(&popped);
        }
        popped
    });
    if let Some(b) = &budget {
        actuals.steps = b.steps_used().saturating_sub(before.0);
        actuals.rows_charged = b.rows_used().saturating_sub(before.1);
    }
    (r, actuals)
}

/// Is a trace collector installed on this thread? The view layer may use
/// this to skip building detail strings on the untraced path.
pub fn tracing_active() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Opens a population frame. Every call must be paired with exactly one
/// [`end_population`] or [`abort_population`]. No-op without a collector.
pub fn begin_population() {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.frames.push(Vec::new());
        }
    });
}

/// Records how an include-term scan of the current population frame was
/// executed, together with what it measured. No-op without a collector or
/// an open frame.
pub fn record_scan(kind: ScanKind, actuals: ScanActuals) {
    record_scan_est(kind, actuals, None);
}

/// Like [`record_scan`], but also attaches the planner's row estimate for
/// the scan when one was produced.
pub fn record_scan_est(kind: ScanKind, actuals: ScanActuals, est_rows: Option<u64>) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            if let Some(frame) = col.frames.last_mut() {
                frame.push(ScanEvent {
                    kind,
                    actuals,
                    est_rows,
                });
            }
        }
    });
}

/// Closes the current population frame as `outcome` and emits its event.
/// No-op without a collector.
pub fn end_population(class: Symbol, outcome: PopOutcome, rows: usize, nanos: u64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let scans = col.frames.pop().unwrap_or_default();
            let path = match outcome {
                PopOutcome::CacheHit => PopPath::CacheHit,
                PopOutcome::Delta { retested } => PopPath::Delta { retested },
                PopOutcome::FullRecompute => PopPath::FullRecompute { scans },
                PopOutcome::StaleServe { attempts } => PopPath::StaleServe { attempts },
            };
            col.events.push(PopulationTrace {
                class,
                path,
                rows,
                nanos,
            });
        }
    });
}

/// Closes the current population frame without emitting an event (the
/// population failed). No-op without a collector.
pub fn abort_population() {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.frames.pop();
        }
    });
}

/// Runs `f` with a trace collector installed on this thread and returns its
/// result together with every population event it emitted. Nests: a
/// `collect` inside a `collect` captures its own events only, then restores
/// the outer collector.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Vec<PopulationTrace>) {
    let prev = COLLECTOR.with(|c| {
        c.borrow_mut().replace(Collector {
            events: Vec::new(),
            frames: Vec::new(),
        })
    });
    let r = f();
    let col = COLLECTOR.with(|c| match prev {
        Some(prev) => c.borrow_mut().replace(prev),
        None => c.borrow_mut().take(),
    });
    let events = col.map(|c| c.events).unwrap_or_default();
    (r, events)
}

/// Runs a query like [`run_query`](crate::run_query) but returns, alongside
/// the value, a [`QueryTrace`] with parse / typecheck / optimize / execute
/// timings and every population event execution triggered. Typecheck
/// failure is recorded in the trace but does not abort the run (the
/// evaluator is dynamically typed, matching `run_query`).
pub fn run_query_traced(src: &dyn DataSource, query: &str) -> Result<(ov_oodb::Value, QueryTrace)> {
    use std::time::Instant;
    let _span = ov_oodb::span!("query.run");
    let mut trace = QueryTrace::default();

    let t0 = Instant::now();
    let expr = {
        let _s = ov_oodb::span!("query.parse");
        crate::parser::parse_expr(query)?
    };
    trace.stages.push(Stage {
        name: "parse",
        nanos: t0.elapsed().as_nanos() as u64,
        detail: expr.to_string(),
    });

    let t0 = Instant::now();
    let detail = {
        let _s = ov_oodb::span!("query.typecheck");
        match crate::typecheck::infer_expr(src, &expr) {
            Ok(t) => format!("{t:?}"),
            Err(e) => format!("error: {e}"),
        }
    };
    trace.stages.push(Stage {
        name: "typecheck",
        nanos: t0.elapsed().as_nanos() as u64,
        detail,
    });

    let t0 = Instant::now();
    let optimized = {
        let _s = ov_oodb::span!("query.optimize");
        crate::optimize::optimize_expr(&expr)
    };
    trace.stages.push(Stage {
        name: "optimize",
        nanos: t0.elapsed().as_nanos() as u64,
        detail: if optimized == expr {
            "(unchanged)".to_owned()
        } else {
            optimized.to_string()
        },
    });

    let (fp, normalized) = crate::fingerprint::fingerprint_expr(&expr);
    trace.fingerprint = fp;
    trace.normalized = normalized;

    let t0 = Instant::now();
    let (((value, engine), populations), actuals) = {
        let _s = ov_oodb::span!("query.execute");
        with_scan_actuals(|| {
            collect(|| match crate::compile::try_run_compiled(src, &optimized) {
                Some(r) => (r, Engine::compiled_now()),
                None => (crate::eval::eval_expr(src, &optimized), Engine::Interpreted),
            })
        })
    };
    trace.stages.push(Stage {
        name: "execute",
        nanos: t0.elapsed().as_nanos() as u64,
        detail: format!("engine={engine}"),
    });
    trace.populations = populations;
    trace.actuals = actuals;
    trace.engine = Some(engine);
    trace.planner = crate::planner::take_last_decision().map(|d| PlanChoice {
        strategy: d.strategy.to_string(),
        est_rows: d.est_rows,
        cache_hit: d.cache_hit,
    });
    let value = value?;
    trace.rows = match &value {
        ov_oodb::Value::Set(s) => Some(s.len()),
        ov_oodb::Value::List(l) => Some(l.len()),
        _ => None,
    };
    Ok((value, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    /// A sequential interpreted scan, the common test fixture.
    fn seq() -> ScanKind {
        ScanKind::Sequential {
            engine: Engine::Interpreted,
        }
    }

    /// Wraps a kind in a zero-actuals [`ScanEvent`].
    fn ev(kind: ScanKind) -> ScanEvent {
        ScanEvent {
            kind,
            actuals: ScanActuals::default(),
            est_rows: None,
        }
    }

    #[test]
    fn hooks_are_noops_without_a_collector() {
        assert!(!tracing_active());
        begin_population();
        record_scan(seq(), ScanActuals::default());
        end_population(sym("X"), PopOutcome::FullRecompute, 0, 1);
        abort_population();
        // Nothing to observe: the point is simply that none of it panics.
    }

    #[test]
    fn collect_captures_population_events() {
        let ((), events) = collect(|| {
            assert!(tracing_active());
            begin_population();
            record_scan(
                ScanKind::Parallel {
                    chunks: 4,
                    engine: Engine::Compiled { batch: 1024 },
                },
                ScanActuals::default(),
            );
            record_scan(seq(), ScanActuals::default());
            end_population(sym("Adult"), PopOutcome::FullRecompute, 12, 5_000);
        });
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].class, sym("Adult"));
        assert_eq!(events[0].rows, 12);
        assert_eq!(
            events[0].path,
            PopPath::FullRecompute {
                scans: vec![
                    ev(ScanKind::Parallel {
                        chunks: 4,
                        engine: Engine::Compiled { batch: 1024 }
                    }),
                    ev(seq())
                ]
            }
        );
        assert!(!tracing_active());
    }

    #[test]
    fn nested_frames_attach_scans_to_the_right_population() {
        let ((), events) = collect(|| {
            begin_population(); // outer
            record_scan(seq(), ScanActuals::default());
            begin_population(); // inner
            record_scan(
                ScanKind::IndexPushdown {
                    index: "Person.City".into(),
                    engine: Engine::Interpreted,
                },
                ScanActuals::default(),
            );
            end_population(sym("Inner"), PopOutcome::FullRecompute, 1, 10);
            end_population(sym("Outer"), PopOutcome::FullRecompute, 2, 20);
        });
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].class, sym("Inner"));
        assert_eq!(
            events[0].path,
            PopPath::FullRecompute {
                scans: vec![ev(ScanKind::IndexPushdown {
                    index: "Person.City".into(),
                    engine: Engine::Interpreted,
                })]
            }
        );
        assert_eq!(
            events[1].path,
            PopPath::FullRecompute {
                scans: vec![ev(seq())]
            }
        );
    }

    #[test]
    fn abort_closes_a_frame_without_an_event() {
        let ((), events) = collect(|| {
            begin_population();
            record_scan(seq(), ScanActuals::default());
            abort_population();
        });
        assert!(events.is_empty());
    }

    #[test]
    fn actuals_frames_fold_into_parents_without_double_counting_budget() {
        let ((), outer) = with_scan_actuals(|| {
            let ((), inner) = with_scan_actuals(|| {
                add_actuals(&ScanActuals {
                    rows_scanned: 10,
                    rows_matched: 4,
                    batches: 1,
                    cache_hits: 2,
                    cache_misses: 1,
                    ..ScanActuals::default()
                });
            });
            assert_eq!(inner.rows_scanned, 10);
            assert_eq!(inner.rows_matched, 4);
            add_actuals(&ScanActuals {
                rows_scanned: 5,
                ..ScanActuals::default()
            });
        });
        // Work counters fold up: 10 from the inner frame + 5 direct.
        assert_eq!(outer.rows_scanned, 15);
        assert_eq!(outer.rows_matched, 4);
        assert_eq!(outer.batches, 1);
        assert_eq!(outer.cache_hits, 2);
        assert_eq!(outer.cache_misses, 1);
        // No budget installed → no charges measured.
        assert_eq!(outer.steps, 0);
        assert_eq!(outer.rows_charged, 0);
        assert!(!actuals_active());
    }

    #[test]
    fn actuals_budget_charges_come_from_the_bracketing_delta() {
        let budget = std::sync::Arc::new(crate::Budget::new());
        crate::budget::with(budget, || {
            let ((), outer) = with_scan_actuals(|| {
                let b = crate::budget::current().unwrap();
                b.step(0).unwrap();
                b.step(0).unwrap();
                let ((), inner) = with_scan_actuals(|| {
                    let b = crate::budget::current().unwrap();
                    b.step(0).unwrap();
                    b.note_rows(7).unwrap();
                });
                assert_eq!(inner.steps, 1);
                assert_eq!(inner.rows_charged, 7);
            });
            // The outer delta covers its own charges AND the nested frame's
            // (inclusive bracketing — nothing is double-counted by folding).
            assert_eq!(outer.steps, 3);
            assert_eq!(outer.rows_charged, 7);
        });
    }

    #[test]
    fn nested_collect_restores_the_outer_collector() {
        let ((), outer) = collect(|| {
            begin_population();
            end_population(sym("A"), PopOutcome::CacheHit, 1, 1);
            let ((), inner) = collect(|| {
                begin_population();
                end_population(sym("B"), PopOutcome::CacheHit, 2, 2);
            });
            assert_eq!(inner.len(), 1);
            assert_eq!(inner[0].class, sym("B"));
            begin_population();
            end_population(sym("C"), PopOutcome::CacheHit, 3, 3);
        });
        let classes: Vec<_> = outer.iter().map(|e| e.class).collect();
        assert_eq!(classes, vec![sym("A"), sym("C")]);
    }

    #[test]
    fn display_rendering() {
        let p = PopulationTrace {
            class: sym("Adult"),
            path: PopPath::Delta { retested: 3 },
            rows: 41,
            nanos: 12_400,
        };
        assert_eq!(
            p.to_string(),
            "population Adult: Delta{retested=3} (rows=41, 12.4µs)"
        );
        let full = PopPath::FullRecompute {
            scans: vec![
                ev(ScanKind::IndexPushdown {
                    index: "Person.City".into(),
                    engine: Engine::Interpreted,
                }),
                ev(ScanKind::Parallel {
                    chunks: 8,
                    engine: Engine::Interpreted,
                }),
            ],
        };
        assert_eq!(
            full.to_string(),
            "FullRecompute [index Person.City] [parallel ×8]"
        );
        assert_eq!(fmt_ns(870), "870ns");
        assert_eq!(fmt_ns(3_100_000), "3.1ms");
    }

    #[test]
    fn compiled_scans_carry_the_engine_and_batch_marker() {
        assert_eq!(seq().to_string(), "[seq]");
        assert_eq!(
            ScanKind::Sequential {
                engine: Engine::Compiled { batch: 1024 }
            }
            .to_string(),
            "[seq compiled b=1024]"
        );
        assert_eq!(
            ScanKind::Parallel {
                chunks: 4,
                engine: Engine::Compiled { batch: 0 }
            }
            .to_string(),
            "[parallel ×4 compiled b=0]"
        );
        assert_eq!(
            ScanKind::IndexPushdown {
                index: "Person.City".into(),
                engine: Engine::Compiled { batch: 256 }
            }
            .to_string(),
            "[index Person.City compiled b=256]"
        );
    }

    #[test]
    fn scan_events_render_actuals_only_when_measured() {
        assert_eq!(ev(seq()).to_string(), "[seq]");
        let measured = ScanEvent {
            kind: ScanKind::Sequential {
                engine: Engine::Compiled { batch: 2 },
            },
            actuals: ScanActuals {
                rows_scanned: 6,
                rows_matched: 2,
                batches: 3,
                steps: 20,
                rows_charged: 2,
                cache_hits: 5,
                cache_misses: 1,
            },
            est_rows: None,
        };
        assert_eq!(
            measured.to_string(),
            "[seq compiled b=2] (scanned=6 matched=2 batches=3 steps=20 rows_charged=2 cache=5/6)"
        );
    }
}
