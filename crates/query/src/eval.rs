//! The query evaluator.
//!
//! A tree-walking evaluator over a [`DataSource`]. It is deliberately
//! source-agnostic: evaluating `select P from Person …` against a base
//! database reads stored extents; against a view, `extent` may trigger
//! virtual-class population (`ov-views`) — the evaluator neither knows nor
//! cares ("A view should be treated as a database", §6).
//!
//! Semantics decisions (the paper is informal; each is marked DECISION):
//! * `select` returns a **set** (O₂ semantics; duplicates collapse).
//! * `select the` errors unless the result has exactly one element.
//! * attribute access on `null` yields `null` (null-propagation), so paths
//!   like `P.Spouse.Name` are safe when `Spouse` is unset.
//! * `null` is falsy in boolean contexts (`where`, `and`, `or`, `not`, `if`).
//! * `=` compares values; ints and floats compare numerically; `null = null`
//!   is true.
//! * ordering comparisons on `null` or mixed non-numeric kinds are errors.

use std::collections::BTreeSet;

use ov_oodb::{AggFunc, BinOp, Expr, Oid, SelectExpr, Symbol, UnOp, Value};

use crate::error::{QueryError, Result};
use crate::source::{extent_value, DataSource, ResolvedAttr};

/// Maximum depth of nested computed-attribute evaluation, guarding against
/// recursive virtual attributes (`attribute A … has value self.A`).
/// Shared with the compiled engine ([`crate::compile`]), which enforces the
/// same limit at the same points.
pub(crate) const MAX_DEPTH: usize = 128;

/// The error produced when [`MAX_DEPTH`] is exceeded (one constructor so
/// the interpreter and the compiled engine agree byte-for-byte).
pub(crate) fn depth_error() -> QueryError {
    QueryError::eval("evaluation depth limit exceeded (recursive computed attribute?)")
}

/// A variable environment: lexically scoped bindings plus the `self`
/// receiver.
#[derive(Clone, Debug, Default)]
pub struct Env {
    vars: Vec<(Symbol, Value)>,
    self_val: Option<Value>,
    /// Memo of the innermost binding index of the last name bound or looked
    /// up. Deep computed-attribute chains (the E5 shape) resolve the same
    /// parameter symbols over and over; the memo turns those repeat lookups
    /// into one index compare instead of a reverse scan. `Cell` keeps
    /// `lookup` callable through `&self`.
    hot: std::cell::Cell<Option<(Symbol, usize)>>,
}

impl Env {
    /// An empty environment (no variables, no `self`).
    pub fn new() -> Env {
        Env::default()
    }

    /// An environment with `self` bound.
    pub fn with_self(v: Value) -> Env {
        Env {
            vars: Vec::new(),
            self_val: Some(v),
            hot: std::cell::Cell::new(None),
        }
    }

    /// Binds a variable (innermost scope wins on lookup).
    pub fn bind(&mut self, name: Symbol, v: Value) {
        self.vars.push((name, v));
        // The new binding is the innermost one for `name` by construction,
        // so it may (and must, if `name` shadows the memoized entry)
        // replace the memo.
        self.hot.set(Some((name, self.vars.len() - 1)));
    }

    fn lookup(&self, name: Symbol) -> Option<&Value> {
        if let Some((n, i)) = self.hot.get() {
            if n == name {
                return Some(&self.vars[i].1);
            }
        }
        let i = self.vars.iter().rposition(|(n, _)| *n == name)?;
        self.hot.set(Some((name, i)));
        Some(&self.vars[i].1)
    }

    fn pop(&mut self, n: usize) {
        self.vars.truncate(self.vars.len() - n);
        // Drop the memo if it points past the truncation; survivors still
        // satisfy the innermost-binding invariant (anything that shadowed
        // them was bound later, i.e. at a higher — now removed — index).
        if let Some((_, i)) = self.hot.get() {
            if i >= self.vars.len() {
                self.hot.set(None);
            }
        }
    }
}

/// Evaluates `expr` against `src` with an empty environment.
pub fn eval_expr(src: &dyn DataSource, expr: &Expr) -> Result<Value> {
    let _span = ov_oodb::span!("query.execute");
    Evaluator::new(src).eval(expr, &mut Env::new())
}

/// Evaluates a query against `src`.
pub fn eval_select(src: &dyn DataSource, query: &SelectExpr) -> Result<Value> {
    let _span = ov_oodb::span!("query.select");
    Evaluator::new(src).select(query, &mut Env::new())
}

/// Evaluates attribute `name` of object `oid` (stored or computed) with the
/// given arguments. This is *the* way to read an attribute value — the
/// paper's point that `Maggy.City` and `Maggy.Address` use one notation
/// regardless of storage (§2).
pub fn eval_attr(src: &dyn DataSource, oid: Oid, name: Symbol, args: &[Value]) -> Result<Value> {
    let _span = ov_oodb::span!("query.eval_attr", attr = name);
    Evaluator::new(src).attr_of(oid, name, args.to_vec(), 0)
}

/// The evaluator; cheap to construct per query.
pub struct Evaluator<'a> {
    src: &'a dyn DataSource,
    /// The budget governing this thread when the evaluator was built
    /// (captured once — see [`crate::budget`] for the install discipline).
    budget: Option<std::sync::Arc<crate::budget::Budget>>,
}

impl<'a> Evaluator<'a> {
    /// An evaluator over `src`, governed by the thread's current
    /// [`Budget`](crate::Budget) (if one is installed).
    pub fn new(src: &'a dyn DataSource) -> Evaluator<'a> {
        Evaluator {
            src,
            budget: crate::budget::current(),
        }
    }

    /// Evaluates `expr` in `env`.
    pub fn eval(&self, expr: &Expr, env: &mut Env) -> Result<Value> {
        self.eval_depth(expr, env, 0)
    }

    fn eval_depth(&self, expr: &Expr, env: &mut Env, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(depth_error());
        }
        if let Some(b) = &self.budget {
            b.step(depth)?;
        }
        match expr {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::SelfRef => env
                .self_val
                .clone()
                .ok_or_else(|| QueryError::eval("`self` is not bound here")),
            Expr::Name(n) => self.resolve_name(*n, env),
            Expr::Attr { recv, name, args } => {
                let recv_val = self.eval_depth(recv, env, depth + 1)?;
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval_depth(a, env, depth + 1)?);
                }
                self.access(&recv_val, *name, arg_vals, depth)
            }
            Expr::TupleCons(fields) => {
                let mut t = ov_oodb::Tuple::new();
                for (n, e) in fields {
                    t.set(*n, self.eval_depth(e, env, depth + 1)?);
                }
                Ok(Value::Tuple(t))
            }
            Expr::SetCons(items) => {
                let mut s = BTreeSet::new();
                for e in items {
                    s.insert(self.eval_depth(e, env, depth + 1)?);
                }
                Ok(Value::Set(s))
            }
            Expr::ListCons(items) => {
                let mut l = Vec::with_capacity(items.len());
                for e in items {
                    l.push(self.eval_depth(e, env, depth + 1)?);
                }
                Ok(Value::List(l))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_depth(expr, env, depth + 1)?;
                apply_unary(*op, v)
            }
            Expr::Binary { op, lhs, rhs } => self.binary(*op, lhs, rhs, env, depth),
            Expr::If { cond, then, els } => {
                let c = self.eval_depth(cond, env, depth + 1)?;
                if truthy(&c) {
                    self.eval_depth(then, env, depth + 1)
                } else {
                    self.eval_depth(els, env, depth + 1)
                }
            }
            Expr::Select(q) => self.select_depth(q, env, depth),
            Expr::Exists(q) => {
                let mut found = false;
                self.iterate(q, env, depth, &mut |_| {
                    found = true;
                    false // stop
                })?;
                Ok(Value::Bool(found))
            }
            Expr::Aggregate { func, arg } => {
                let v = self.eval_depth(arg, env, depth + 1)?;
                aggregate(*func, &v)
            }
            Expr::IsA { expr, class } => {
                let v = self.eval_depth(expr, env, depth + 1)?;
                let class_id = self
                    .src
                    .class_by_name(*class)
                    .ok_or(ov_oodb::OodbError::UnknownClass(*class))?;
                match v {
                    Value::Null => Ok(Value::Bool(false)),
                    Value::Oid(o) => Ok(Value::Bool(self.src.is_member(o, class_id)?)),
                    other => Err(QueryError::eval(format!(
                        "`isa` applies to objects, not {}",
                        other.kind()
                    ))),
                }
            }
            Expr::Apply { name, args } => {
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval_depth(a, env, depth + 1)?);
                }
                self.src.apply(*name, &arg_vals)
            }
        }
    }

    /// Name resolution order: query variable → named object → class extent.
    fn resolve_name(&self, name: Symbol, env: &Env) -> Result<Value> {
        if let Some(v) = env.lookup(name) {
            return Ok(v.clone());
        }
        if let Some(oid) = self.src.named_object(name) {
            return Ok(Value::Oid(oid));
        }
        if let Some(class) = self.src.class_by_name(name) {
            return extent_value(self.src, class);
        }
        Err(QueryError::eval(format!(
            "unknown name `{name}` (not a variable, named object, or class)"
        )))
    }

    /// `recv.name(args)` — "The dot notation here combines both
    /// dereferencing … and field selection" (§2). Arguments are taken by
    /// value: they were just evaluated and are consumed exactly once (as
    /// computed-attribute parameter bindings), so ownership avoids a
    /// per-call clone of each argument.
    fn access(&self, recv: &Value, name: Symbol, args: Vec<Value>, depth: usize) -> Result<Value> {
        match recv {
            Value::Null => Ok(Value::Null),
            Value::Oid(oid) => self.attr_of(*oid, name, args, depth),
            Value::Tuple(t) => {
                if !args.is_empty() {
                    return Err(QueryError::eval(format!(
                        "tuple field `{name}` takes no arguments"
                    )));
                }
                t.get(name)
                    .cloned()
                    .ok_or_else(|| QueryError::eval(format!("tuple {t} has no field `{name}`")))
            }
            other => Err(QueryError::eval(format!(
                "cannot access attribute `{name}` of a {}",
                other.kind()
            ))),
        }
    }

    /// Attribute access on an object: resolve, then read or compute.
    fn attr_of(&self, oid: Oid, name: Symbol, args: Vec<Value>, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(depth_error());
        }
        if let Some(b) = &self.budget {
            b.step(depth)?;
        }
        match self.src.resolve(oid, name)? {
            ResolvedAttr::Stored => {
                if !args.is_empty() {
                    return Err(QueryError::eval(format!(
                        "stored attribute `{name}` takes no arguments"
                    )));
                }
                self.src.stored_field(oid, name)
            }
            ResolvedAttr::Computed { params, body } => {
                self.run_computed(oid, name, &params, &body, args, depth)
            }
        }
    }

    /// Evaluates a computed-attribute body with `self` bound to `oid` and
    /// the parameters bound (by move) to `args`. Shared with the compiled
    /// engine, which delegates computed attributes here so nested bodies
    /// keep exact interpreter semantics (budget steps, depth, body
    /// bracketing).
    pub(crate) fn run_computed(
        &self,
        oid: Oid,
        name: Symbol,
        params: &[Symbol],
        body: &Expr,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Value> {
        if params.len() != args.len() {
            return Err(QueryError::eval(format!(
                "attribute `{name}` expects {} argument(s), got {}",
                params.len(),
                args.len()
            )));
        }
        let mut env = Env::with_self(Value::Oid(oid));
        for (p, v) in params.iter().zip(args) {
            env.bind(*p, v);
        }
        self.src.enter_body();
        let result = self.eval_depth(body, &mut env, depth + 1);
        self.src.exit_body();
        result
    }

    fn binary(
        &self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        env: &mut Env,
        depth: usize,
    ) -> Result<Value> {
        // Short-circuit boolean operators first.
        match op {
            BinOp::And => {
                let l = self.eval_depth(lhs, env, depth + 1)?;
                if !truthy(&l) {
                    return Ok(Value::Bool(false));
                }
                let r = self.eval_depth(rhs, env, depth + 1)?;
                return Ok(Value::Bool(truthy(&r)));
            }
            BinOp::Or => {
                let l = self.eval_depth(lhs, env, depth + 1)?;
                if truthy(&l) {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval_depth(rhs, env, depth + 1)?;
                return Ok(Value::Bool(truthy(&r)));
            }
            _ => {}
        }
        let l = self.eval_depth(lhs, env, depth + 1)?;
        let r = self.eval_depth(rhs, env, depth + 1)?;
        apply_binary(op, &l, &r)
    }

    /// Evaluates a select in `env`.
    pub fn select(&self, q: &SelectExpr, env: &mut Env) -> Result<Value> {
        self.select_depth(q, env, 0)
    }

    fn select_depth(&self, q: &SelectExpr, env: &mut Env, depth: usize) -> Result<Value> {
        let mut out = BTreeSet::new();
        let proj = &q.proj;
        let mut err: Option<QueryError> = None;
        self.iterate(q, env, depth, &mut |inner_env| match self.eval_depth(
            proj,
            inner_env,
            depth + 1,
        ) {
            Ok(v) => {
                if out.insert(v) {
                    if let Some(b) = &self.budget {
                        if let Err(e) = b.note_rows(1) {
                            err = Some(e);
                            return false;
                        }
                    }
                }
                true
            }
            Err(e) => {
                err = Some(e);
                false
            }
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        if q.the {
            if out.len() == 1 {
                Ok(out.into_iter().next().expect("len checked"))
            } else {
                Err(QueryError::TheCardinality { got: out.len() })
            }
        } else {
            Ok(Value::Set(out))
        }
    }

    /// Drives the binding loops of a select, calling `visit` with the
    /// environment extended for each tuple of bindings that passes the
    /// filter. `visit` returns `false` to stop early.
    ///
    /// This is the interpreter's scan driver, so it is also where the
    /// interpreter measures scan actuals: `rows_scanned` per completed
    /// binding tuple (before the filter runs), `rows_matched` per tuple
    /// that passes. The counters are plain locals, reported once per
    /// iterate — on success *and* on error, so a mid-scan breach reports
    /// exactly the rows it got through, matching the compiled driver.
    fn iterate(
        &self,
        q: &SelectExpr,
        env: &mut Env,
        depth: usize,
        visit: &mut dyn FnMut(&mut Env) -> bool,
    ) -> Result<()> {
        let mut actuals = crate::plan::ScanActuals::default();
        let r = self
            .iterate_bindings(
                &q.bindings,
                0,
                q.filter.as_deref(),
                env,
                depth,
                visit,
                &mut actuals,
            )
            .map(|_| ());
        crate::plan::add_actuals(&actuals);
        r
    }

    #[allow(clippy::too_many_arguments)]
    fn iterate_bindings(
        &self,
        bindings: &[(Symbol, Expr)],
        i: usize,
        filter: Option<&Expr>,
        env: &mut Env,
        depth: usize,
        visit: &mut dyn FnMut(&mut Env) -> bool,
        actuals: &mut crate::plan::ScanActuals,
    ) -> Result<bool> {
        if i == bindings.len() {
            actuals.rows_scanned += 1;
            if let Some(f) = filter {
                let keep = self.eval_depth(f, env, depth + 1)?;
                if !truthy(&keep) {
                    return Ok(true);
                }
            }
            actuals.rows_matched += 1;
            return Ok(visit(env));
        }
        let (var, coll_expr) = &bindings[i];
        let coll = self.eval_depth(coll_expr, env, depth + 1)?;
        let items: Vec<Value> = match coll {
            Value::Set(s) => s.into_iter().collect(),
            Value::List(l) => l,
            Value::Null => Vec::new(),
            other => {
                return Err(QueryError::eval(format!(
                    "`from {var} in …` needs a set or list, found {}",
                    other.kind()
                )))
            }
        };
        for item in items {
            env.bind(*var, item);
            let cont =
                self.iterate_bindings(bindings, i + 1, filter, env, depth, visit, actuals)?;
            env.pop(1);
            if !cont {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Truthiness: `true` is true; `false`, `null` are false; anything else is
/// an error-free false (filters with non-boolean conditions keep nothing).
pub fn truthy(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

/// Value equality with numeric coercion: `2 = 2.0` holds, `null = null`
/// holds, everything else is structural.
pub fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(i), Value::Float(f)) | (Value::Float(f), Value::Int(i)) => *i as f64 == *f,
        _ => a == b,
    }
}

/// Applies a unary operator to an already-evaluated operand. Shared by the
/// interpreter and the compiled engine so the two cannot drift.
pub(crate) fn apply_unary(op: UnOp, v: Value) -> Result<Value> {
    match op {
        UnOp::Not => Ok(Value::Bool(!truthy(&v))),
        UnOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(QueryError::eval(format!(
                "cannot negate a {}",
                other.kind()
            ))),
        },
    }
}

/// Applies a non-short-circuit binary operator to already-evaluated
/// operands (`And`/`Or` never reach here — both engines thread their
/// short-circuit control flow before operand evaluation). Shared by the
/// interpreter and the compiled engine so the two cannot drift.
pub(crate) fn apply_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match op {
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops handled by the caller"),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arithmetic(op, l, r),
        BinOp::Concat => match (l, r) {
            (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}").into())),
            (Value::List(a), Value::List(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Ok(Value::List(out))
            }
            _ => Err(QueryError::eval(format!(
                "`++` concatenates strings or lists, not {} and {}",
                l.kind(),
                r.kind()
            ))),
        },
        BinOp::Eq => Ok(Value::Bool(value_eq(l, r))),
        BinOp::Ne => Ok(Value::Bool(!value_eq(l, r))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            // DECISION: ordering against null is false, not an error —
            // filters over partially-populated objects (the paper's
            // `P.Age >= 21` where some ages are unset) keep nothing for
            // the unset ones, like SQL's three-valued logic collapsed to
            // false.
            if l.is_null() || r.is_null() {
                return Ok(Value::Bool(false));
            }
            let ord = value_cmp(l, r)?;
            Ok(Value::Bool(match op {
                BinOp::Lt => ord.is_lt(),
                BinOp::Gt => ord.is_gt(),
                BinOp::Le => ord.is_le(),
                BinOp::Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        BinOp::In => match r {
            Value::Set(s) => Ok(Value::Bool(
                s.contains(l) || s.iter().any(|v| value_eq(v, l)),
            )),
            Value::List(items) => Ok(Value::Bool(items.iter().any(|v| value_eq(v, l)))),
            Value::Null => Ok(Value::Bool(false)),
            other => Err(QueryError::eval(format!(
                "`in` needs a set or list on the right, found {}",
                other.kind()
            ))),
        },
        BinOp::Union | BinOp::Intersect | BinOp::Except => {
            let (Value::Set(a), Value::Set(b)) = (l, r) else {
                return Err(QueryError::eval(format!(
                    "`{}` needs sets, found {} and {}",
                    op.token(),
                    l.kind(),
                    r.kind()
                )));
            };
            let out: BTreeSet<Value> = match op {
                BinOp::Union => a.union(b).cloned().collect(),
                BinOp::Intersect => a.intersection(b).cloned().collect(),
                BinOp::Except => a.difference(b).cloned().collect(),
                _ => unreachable!(),
            };
            Ok(Value::Set(out))
        }
    }
}

/// Ordering for `<`/`<=`/`>`/`>=`: numerics (mixed int/float fine), strings,
/// booleans. Everything else — including `null` — is an error.
fn value_cmp(a: &Value, b: &Value) -> Result<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Ok(x.cmp(y)),
        _ => {
            let (Some(x), Some(y)) = (a.as_float(), b.as_float()) else {
                return Err(QueryError::eval(format!(
                    "cannot order {} and {}",
                    a.kind(),
                    b.kind()
                )));
            };
            x.partial_cmp(&y)
                .ok_or_else(|| QueryError::eval("NaN is not ordered"))
                .or(Ok(Ordering::Equal))
        }
    }
}

/// Applies an arithmetic operator with int/float promotion.
fn arithmetic(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        let (a, b) = (*a, *b);
        return match op {
            BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
            BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
            BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
            BinOp::Div => {
                if b == 0 {
                    Err(QueryError::eval("division by zero"))
                } else {
                    Ok(Value::Int(a.wrapping_div(b)))
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    Err(QueryError::eval("modulo by zero"))
                } else {
                    Ok(Value::Int(a.wrapping_rem(b)))
                }
            }
            _ => unreachable!(),
        };
    }
    let (Some(a), Some(b)) = (l.as_float(), r.as_float()) else {
        return Err(QueryError::eval(format!(
            "arithmetic needs numbers, found {} and {}",
            l.kind(),
            r.kind()
        )));
    };
    Ok(Value::Float(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Err(QueryError::eval("division by zero"));
            }
            a / b
        }
        BinOp::Mod => a % b,
        _ => unreachable!(),
    }))
}

/// Applies an aggregate to a collection value.
fn aggregate(func: AggFunc, v: &Value) -> Result<Value> {
    let items: Vec<&Value> = match v.elements() {
        Some(it) => it.collect(),
        None if v.is_null() => Vec::new(),
        None => {
            return Err(QueryError::eval(format!(
                "{}() needs a set or list, found {}",
                func.name(),
                v.kind()
            )))
        }
    };
    match func {
        AggFunc::Count => Ok(Value::Int(items.len() as i64)),
        AggFunc::Sum => {
            let mut int_sum: i64 = 0;
            let mut float_sum = 0.0;
            let mut any_float = false;
            for item in &items {
                match item {
                    Value::Int(i) => int_sum = int_sum.wrapping_add(*i),
                    Value::Float(f) => {
                        any_float = true;
                        float_sum += f;
                    }
                    Value::Null => {}
                    other => {
                        return Err(QueryError::eval(format!(
                            "sum() over non-numeric element ({})",
                            other.kind()
                        )))
                    }
                }
            }
            if any_float {
                Ok(Value::Float(float_sum + int_sum as f64))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        AggFunc::Min => Ok(items
            .iter()
            .filter(|v| !v.is_null())
            .min()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null)),
        AggFunc::Max => Ok(items
            .iter()
            .filter(|v| !v.is_null())
            .max()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null)),
        AggFunc::Avg => {
            let nums: Vec<f64> = items.iter().filter_map(|v| v.as_float()).collect();
            if nums.is_empty() {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(nums.iter().sum::<f64>() / nums.len() as f64))
            }
        }
        AggFunc::Flatten => {
            let mut out = std::collections::BTreeSet::new();
            for item in &items {
                match item {
                    Value::Set(s) => out.extend(s.iter().cloned()),
                    Value::List(l) => out.extend(l.iter().cloned()),
                    Value::Null => {}
                    other => {
                        return Err(QueryError::eval(format!(
                            "flatten() over non-collection element ({})",
                            other.kind()
                        )))
                    }
                }
            }
            Ok(Value::Set(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_select};
    use ov_oodb::{sym, AttrDef, Database, Type};

    fn staff() -> Database {
        let mut db = Database::new(sym("Staff"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                    AttrDef::stored(sym("Spouse"), Type::Class(ov_oodb::ClassId(0))),
                ],
            )
            .unwrap();
        let employee = db
            .create_class(
                sym("Employee"),
                &[person],
                vec![AttrDef::stored(sym("Salary"), Type::Int)],
            )
            .unwrap();
        let maggy = db
            .create_object(
                person,
                Value::tuple([("Name", Value::str("Maggy")), ("Age", Value::Int(65))]),
            )
            .unwrap();
        db.name_object(sym("maggy"), maggy).unwrap();
        let denis = db
            .create_object(
                person,
                Value::tuple([
                    ("Name", Value::str("Denis")),
                    ("Age", Value::Int(70)),
                    ("Spouse", Value::Oid(maggy)),
                ]),
            )
            .unwrap();
        db.name_object(sym("denis"), denis).unwrap();
        db.create_object(
            employee,
            Value::tuple([
                ("Name", Value::str("Tony")),
                ("Age", Value::Int(30)),
                ("Salary", Value::Int(50_000)),
            ]),
        )
        .unwrap();
        db
    }

    fn run(db: &Database, src: &str) -> Value {
        eval_expr(db, &parse_expr(src).unwrap()).unwrap()
    }

    #[test]
    fn selects_by_predicate() {
        let db = staff();
        let q = parse_select("select P.Name from P in Person where P.Age >= 65").unwrap();
        let v = eval_select(&db, &q).unwrap();
        assert_eq!(v, Value::set([Value::str("Maggy"), Value::str("Denis")]));
    }

    #[test]
    fn deep_extent_in_queries() {
        let db = staff();
        // Tony is real in Employee, virtual in Person.
        let v = run(&db, "count((select P from P in Person))");
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn path_expressions_dereference() {
        let db = staff();
        assert_eq!(run(&db, "denis.Spouse.Name"), Value::str("Maggy"));
        // Null propagation: Maggy has no spouse.
        assert_eq!(run(&db, "maggy.Spouse.Name"), Value::Null);
    }

    #[test]
    fn computed_attribute_with_args() {
        let mut db = staff();
        let employee = db.schema.class_by_name(sym("Employee")).unwrap();
        db.schema
            .add_attr(
                employee,
                AttrDef::method(
                    sym("Raise"),
                    vec![(sym("amount"), Type::Int)],
                    Type::Int,
                    parse_expr("self.Salary + amount").unwrap(),
                ),
            )
            .unwrap();
        let v = run(&db, "select E.Raise(1000) from E in Employee");
        assert_eq!(v, Value::set([Value::Int(51_000)]));
    }

    #[test]
    fn wrong_arity_errors() {
        let mut db = staff();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::method(
                    sym("Plus"),
                    vec![(sym("x"), Type::Int)],
                    Type::Int,
                    parse_expr("self.Age + x").unwrap(),
                ),
            )
            .unwrap();
        let e = eval_expr(&db, &parse_expr("maggy.Plus()").unwrap()).unwrap_err();
        assert!(e.to_string().contains("expects 1 argument"));
    }

    #[test]
    fn select_the_cardinality() {
        let db = staff();
        let one = parse_select(r#"select the P from P in Person where P.Name = "Maggy""#).unwrap();
        assert!(matches!(eval_select(&db, &one).unwrap(), Value::Oid(_)));
        let none =
            parse_select(r#"select the P from P in Person where P.Name = "Nobody""#).unwrap();
        assert_eq!(
            eval_select(&db, &none).unwrap_err(),
            QueryError::TheCardinality { got: 0 }
        );
        let many = parse_select("select the P from P in Person").unwrap();
        assert!(matches!(
            eval_select(&db, &many).unwrap_err(),
            QueryError::TheCardinality { got: 3 }
        ));
    }

    #[test]
    fn exists_short_circuits() {
        let db = staff();
        assert_eq!(
            run(&db, "exists(select P from P in Person where P.Age > 69)"),
            Value::Bool(true)
        );
        assert_eq!(
            run(&db, "exists(select P from P in Person where P.Age > 100)"),
            Value::Bool(false)
        );
    }

    #[test]
    fn aggregates() {
        let db = staff();
        assert_eq!(
            run(&db, "sum((select P.Age from P in Person))"),
            Value::Int(165)
        );
        assert_eq!(
            run(&db, "min((select P.Age from P in Person))"),
            Value::Int(30)
        );
        assert_eq!(
            run(&db, "max((select P.Age from P in Person))"),
            Value::Int(70)
        );
        assert_eq!(
            run(&db, "avg((select P.Age from P in Person))"),
            Value::Float(55.0)
        );
        assert_eq!(run(&db, "count({})"), Value::Int(0));
    }

    #[test]
    fn flatten_unions_nested_collections() {
        let db = staff();
        assert_eq!(
            run(&db, "flatten({{1, 2}, {2, 3}})"),
            Value::set([Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(run(&db, "flatten({})"), Value::set([]));
        assert!(eval_expr(&db, &parse_expr("flatten({1})").unwrap()).is_err());
    }

    #[test]
    fn arithmetic_and_comparisons() {
        let db = staff();
        assert_eq!(run(&db, "2 + 3 * 4"), Value::Int(14));
        assert_eq!(run(&db, "7 / 2"), Value::Int(3));
        assert_eq!(run(&db, "7.0 / 2"), Value::Float(3.5));
        assert_eq!(run(&db, "2 = 2.0"), Value::Bool(true));
        assert_eq!(run(&db, "1 < 1.5"), Value::Bool(true));
        assert!(eval_expr(&db, &parse_expr("1 / 0").unwrap()).is_err());
        assert!(eval_expr(&db, &parse_expr(r#""a" < 1"#).unwrap()).is_err());
        assert_eq!(run(&db, r#""foo" ++ "bar""#), Value::str("foobar"));
    }

    #[test]
    fn null_semantics() {
        let db = staff();
        assert_eq!(run(&db, "null = null"), Value::Bool(true));
        assert_eq!(run(&db, "null = 1"), Value::Bool(false));
        assert_eq!(run(&db, "not null"), Value::Bool(true));
        assert_eq!(run(&db, "if null then 1 else 2"), Value::Int(2));
        // Ordering against null is false (not an error) so filters skip
        // objects with unset attributes.
        assert_eq!(run(&db, "null < 1"), Value::Bool(false));
        assert_eq!(run(&db, "null >= 1"), Value::Bool(false));
    }

    #[test]
    fn membership_and_set_ops() {
        let db = staff();
        assert_eq!(run(&db, "2 in {1, 2, 3}"), Value::Bool(true));
        assert_eq!(run(&db, "2.0 in {1, 2, 3}"), Value::Bool(true));
        assert_eq!(
            run(&db, "{1, 2} union {2, 3}"),
            Value::set([Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            run(&db, "{1, 2} intersect {2, 3}"),
            Value::set([Value::Int(2)])
        );
        assert_eq!(
            run(&db, "{1, 2} except {2, 3}"),
            Value::set([Value::Int(1)])
        );
        assert_eq!(
            run(&db, "maggy in (select P from P in Person)"),
            Value::Bool(true)
        );
    }

    #[test]
    fn isa_checks_membership() {
        let db = staff();
        assert_eq!(run(&db, "maggy isa Person"), Value::Bool(true));
        assert_eq!(run(&db, "maggy isa Employee"), Value::Bool(false));
        assert!(eval_expr(&db, &parse_expr("maggy isa Ghost").unwrap()).is_err());
    }

    #[test]
    fn multi_binding_cross_product() {
        let db = staff();
        let v = run(
            &db,
            "count((select [A: P, B: Q] from P in Person, Q in Person))",
        );
        assert_eq!(v, Value::Int(9));
    }

    #[test]
    fn later_bindings_see_earlier_variables() {
        let db = staff();
        // Bind Q to a collection computed from P.
        let v = run(&db, "select Q from P in Person, Q in {P.Age} where Q > 69");
        assert_eq!(v, Value::set([Value::Int(70)]));
    }

    #[test]
    fn recursive_computed_attribute_hits_depth_limit() {
        let mut db = staff();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::computed(sym("Loop"), Type::Int, parse_expr("self.Loop").unwrap()),
            )
            .unwrap();
        let e = eval_expr(&db, &parse_expr("maggy.Loop").unwrap()).unwrap_err();
        assert!(e.to_string().contains("depth limit"));
    }

    #[test]
    fn select_returns_set_semantics() {
        let db = staff();
        // Two people aged >= 65 but one distinct Age=65? Ages 65,70 distinct;
        // project a constant to verify collapse.
        let v = run(&db, "select 1 from P in Person");
        assert_eq!(v, Value::set([Value::Int(1)]));
    }

    #[test]
    fn unknown_name_errors() {
        let db = staff();
        let e = eval_expr(&db, &parse_expr("Nessie").unwrap()).unwrap_err();
        assert!(e.to_string().contains("unknown name"));
    }
}
