//! The lexer.
//!
//! Tokenizes the surface language used for queries, schema DDL and view DDL.
//! Keywords are **contextual**: the lexer emits plain identifiers and the
//! parser matches keyword text where the grammar expects it, so user schemas
//! may freely use words like `Name`, `Value` or `Type` as attribute names
//! (the paper's own examples do).
//!
//! Comments run from `--` to end of line (SQL style) or `//` to end of line.

use crate::error::{Pos, QueryError, Result};

/// A token kind.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Identifier or contextual keyword (`select`, `Person`, …).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes and escapes already processed).
    Str(String),
    /// Object-identifier literal `#42` or `#i42` (imaginary range).
    OidLit(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `++`
    PlusPlus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=` (also `≤`)
    Le,
    /// `>`
    Gt,
    /// `>=` (also `≥`)
    Ge,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(i) => format!("`{i}`"),
            Tok::Float(x) => format!("`{x}`"),
            Tok::Str(_) => "string literal".into(),
            Tok::OidLit(n) => format!("`#{n}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Plus => "`+`".into(),
            Tok::PlusPlus => "`++`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Percent => "`%`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Ne => "`!=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes `input` fully.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Lexer<'a> {
        Lexer {
            chars: input.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn error(&self, msg: impl Into<String>) -> QueryError {
        QueryError::Lex {
            pos: self.pos(),
            msg: msg.into(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_whitespace() => {
                        self.bump();
                    }
                    Some('-') => {
                        // Maybe a `--` comment; otherwise fall through to the
                        // operator path below.
                        let mut clone = self.chars.clone();
                        clone.next();
                        if clone.peek() == Some(&'-') {
                            while let Some(c) = self.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                        } else {
                            break;
                        }
                    }
                    Some('/') => {
                        let mut clone = self.chars.clone();
                        clone.next();
                        if clone.peek() == Some(&'/') {
                            while let Some(c) = self.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
            let pos = self.pos();
            let Some(c) = self.peek() else {
                out.push(Token { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = if c.is_ascii_digit() {
                self.number()?
            } else if c.is_alphabetic() || c == '_' {
                self.ident()
            } else if c == '"' {
                self.string()?
            } else if c == '#' {
                self.oid_literal()?
            } else {
                self.operator()?
            };
            out.push(Token { tok, pos });
        }
    }

    fn number(&mut self) -> Result<Tok> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                if c != '_' {
                    text.push(c);
                }
                self.bump();
            } else {
                break;
            }
        }
        // A fractional part only if `.` is followed by a digit — `1.Age`
        // must lex as `1` `.` `Age`.
        let mut is_float = false;
        if self.peek() == Some('.') {
            let mut clone = self.chars.clone();
            clone.next();
            if clone.peek().is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| self.error(format!("bad float literal: {e}")))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| self.error(format!("bad integer literal: {e}")))
        }
    }

    fn ident(&mut self) -> Tok {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            // `&` is allowed mid-identifier for the paper's `Rich&Beautiful`.
            if c.is_alphanumeric() || c == '_' || c == '&' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Tok::Ident(text)
    }

    fn string(&mut self) -> Result<Tok> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some('"') => return Ok(Tok::Str(text)),
                Some('\\') => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('"') => text.push('"'),
                    Some('\\') => text.push('\\'),
                    other => {
                        return Err(self.error(format!("bad escape: \\{}", other.unwrap_or(' '))))
                    }
                },
                Some(c) => text.push(c),
            }
        }
    }

    fn oid_literal(&mut self) -> Result<Tok> {
        self.bump(); // '#'
        let imaginary = if self.peek() == Some('i') {
            self.bump();
            true
        } else {
            false
        };
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if text.is_empty() {
            return Err(self.error("expected digits after `#`"));
        }
        let n: u64 = text
            .parse()
            .map_err(|e| self.error(format!("bad oid literal: {e}")))?;
        if imaginary {
            // checked: `#i18446744073709551615` must be a lex error, not a
            // debug-build overflow panic.
            n.checked_add(ov_oodb::ids::IMAGINARY_OID_BASE)
                .map(Tok::OidLit)
                .ok_or_else(|| self.error("imaginary oid literal out of range"))
        } else {
            Ok(Tok::OidLit(n))
        }
    }

    fn operator(&mut self) -> Result<Tok> {
        // Unreachable expect: the caller dispatches here only after peeking
        // a non-EOF character, and nothing bumps in between.
        let c = self.bump().expect("peeked");
        Ok(match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '[' => Tok::LBracket,
            ']' => Tok::RBracket,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            ',' => Tok::Comma,
            ';' => Tok::Semi,
            ':' => Tok::Colon,
            '.' => Tok::Dot,
            '+' => {
                if self.peek() == Some('+') {
                    self.bump();
                    Tok::PlusPlus
                } else {
                    Tok::Plus
                }
            }
            '-' => Tok::Minus,
            '*' => Tok::Star,
            '/' => Tok::Slash,
            '%' => Tok::Percent,
            '=' => Tok::Eq,
            '!' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Tok::Ne
                } else {
                    return Err(self.error("expected `=` after `!`"));
                }
            }
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '≥' => Tok::Ge,
            '≤' => Tok::Le,
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_paper_query() {
        let toks = kinds("select P from Person where P.Age >= 21");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("select".into()),
                Tok::Ident("P".into()),
                Tok::Ident("from".into()),
                Tok::Ident("Person".into()),
                Tok::Ident("where".into()),
                Tok::Ident("P".into()),
                Tok::Dot,
                Tok::Ident("Age".into()),
                Tok::Ge,
                Tok::Int(21),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_paths_disambiguate() {
        assert_eq!(
            kinds("1.5 1.Age"),
            vec![
                Tok::Float(1.5),
                Tok::Int(1),
                Tok::Dot,
                Tok::Ident("Age".into()),
                Tok::Eof
            ]
        );
        // Underscore digit separators.
        assert_eq!(kinds("5_000")[0], Tok::Int(5000));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""10 Downing\nStreet""#)[0],
            Tok::Str("10 Downing\nStreet".into())
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn oid_literals() {
        assert_eq!(kinds("#42")[0], Tok::OidLit(42));
        assert_eq!(
            kinds("#i3")[0],
            Tok::OidLit(ov_oodb::ids::IMAGINARY_OID_BASE + 3)
        );
        assert!(lex("# 3").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a -- comment\n b // another\n c");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn ampersand_identifiers() {
        assert_eq!(
            kinds("Rich&Beautiful")[0],
            Tok::Ident("Rich&Beautiful".into())
        );
    }

    #[test]
    fn unicode_comparison_operators() {
        assert_eq!(kinds("a ≥ b")[1], Tok::Ge);
        assert_eq!(kinds("a ≤ b")[1], Tok::Le);
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_character_reports_position() {
        let err = lex("a ~").unwrap_err();
        assert!(matches!(err, QueryError::Lex { .. }));
    }
}
