//! Query optimization: constant folding and boolean simplification.
//!
//! The view mechanism creates many *derived* queries — parameterized-class
//! instantiation substitutes literals into templates (`Resident("France")`
//! turns `P.City = X` into `P.City = "France"`), and population queries are
//! re-evaluated often. This pass cheapens them:
//!
//! * **constant folding** — any pure subexpression whose operands are
//!   literals is evaluated once, at optimization time, with *exactly* the
//!   evaluator's semantics (the folder literally runs the evaluator against
//!   an empty source, so the two can never disagree — property-tested in
//!   `tests/prop_optimize.rs`);
//! * **boolean absorption** — `false and e` → `false`, `true or e` →
//!   `true`, and `if` on a literal condition selects its branch. (Note
//!   `true and e` is *not* rewritten to `e`: `and` returns a boolean
//!   truth-value while `e` itself may be `null`.)
//!
//! The pass is safe on open terms: anything it cannot prove constant is
//! left untouched.

use ov_oodb::{AttrSig, ClassId, Expr, Oid, SelectExpr, Symbol, Type, Value};

use crate::error::{QueryError, Result};
use crate::eval::{truthy, Env, Evaluator};
use crate::source::{DataSource, ResolvedAttr};

/// A data source with nothing in it: every lookup fails. Evaluating an
/// expression against it succeeds exactly when the expression is closed
/// and pure — which is the test for foldability.
struct EmptySource;

impl DataSource for EmptySource {
    fn class_by_name(&self, _name: Symbol) -> Option<ClassId> {
        None
    }
    fn class_name(&self, _c: ClassId) -> Symbol {
        Symbol::new("?")
    }
    fn is_subclass(&self, a: ClassId, b: ClassId) -> bool {
        a == b
    }
    fn ancestors(&self, c: ClassId) -> Vec<ClassId> {
        vec![c]
    }
    fn class_of(&self, oid: Oid) -> Result<ClassId> {
        Err(QueryError::eval(format!("no object {oid}")))
    }
    fn extent(&self, _class: ClassId) -> Result<Vec<Oid>> {
        Ok(Vec::new())
    }
    fn is_member(&self, _oid: Oid, _class: ClassId) -> Result<bool> {
        Ok(false)
    }
    fn resolve(&self, oid: Oid, _name: Symbol) -> Result<ResolvedAttr> {
        Err(QueryError::eval(format!("no object {oid}")))
    }
    fn stored_field(&self, oid: Oid, _name: Symbol) -> Result<Value> {
        Err(QueryError::eval(format!("no object {oid}")))
    }
    fn named_object(&self, _name: Symbol) -> Option<Oid> {
        None
    }
    fn object_exists(&self, _oid: Oid) -> bool {
        false
    }
    fn attr_sig(&self, _c: ClassId, _name: Symbol) -> Option<AttrSig> {
        None
    }
    fn class_type(&self, _c: ClassId) -> Type {
        Type::Any
    }
}

/// Is this node foldable when all its children are literals? Conservative:
/// anything touching names, objects, classes or `self` is excluded, as is
/// division/modulo (fold-time errors must not replace run-time errors that
/// short-circuiting might skip).
fn pure_head(e: &Expr) -> bool {
    match e {
        Expr::Binary { op, .. } => !matches!(op, ov_oodb::BinOp::Div | ov_oodb::BinOp::Mod),
        Expr::Unary { .. } | Expr::TupleCons(_) | Expr::SetCons(_) | Expr::ListCons(_) => true,
        _ => false,
    }
}

fn all_literal_children(e: &Expr) -> bool {
    match e {
        Expr::Binary { lhs, rhs, .. } => {
            matches!(**lhs, Expr::Lit(_)) && matches!(**rhs, Expr::Lit(_))
        }
        Expr::Unary { expr, .. } => matches!(**expr, Expr::Lit(_)),
        Expr::TupleCons(fields) => fields.iter().all(|(_, e)| matches!(e, Expr::Lit(_))),
        Expr::SetCons(items) | Expr::ListCons(items) => {
            items.iter().all(|e| matches!(e, Expr::Lit(_)))
        }
        _ => false,
    }
}

/// Optimizes an expression (bottom-up, single pass).
pub fn optimize_expr(e: &Expr) -> Expr {
    let rebuilt = match e {
        Expr::Lit(_) | Expr::SelfRef | Expr::Name(_) => e.clone(),
        Expr::Attr { recv, name, args } => Expr::Attr {
            recv: Box::new(optimize_expr(recv)),
            name: *name,
            args: args.iter().map(optimize_expr).collect(),
        },
        Expr::TupleCons(fields) => {
            Expr::TupleCons(fields.iter().map(|(n, e)| (*n, optimize_expr(e))).collect())
        }
        Expr::SetCons(items) => Expr::SetCons(items.iter().map(optimize_expr).collect()),
        Expr::ListCons(items) => Expr::ListCons(items.iter().map(optimize_expr).collect()),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(optimize_expr(expr)),
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = optimize_expr(lhs);
            let r = optimize_expr(rhs);
            // Boolean absorption, matching short-circuit semantics: a
            // literal-false lhs of `and` (resp. literal-true of `or`)
            // decides the result without evaluating rhs.
            match op {
                ov_oodb::BinOp::And if matches!(&l, Expr::Lit(v) if !truthy(v)) => {
                    return Expr::Lit(Value::Bool(false));
                }
                ov_oodb::BinOp::Or if matches!(&l, Expr::Lit(v) if truthy(v)) => {
                    return Expr::Lit(Value::Bool(true));
                }
                _ => {}
            }
            Expr::Binary {
                op: *op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }
        }
        Expr::If { cond, then, els } => {
            let c = optimize_expr(cond);
            if let Expr::Lit(v) = &c {
                return if truthy(v) {
                    optimize_expr(then)
                } else {
                    optimize_expr(els)
                };
            }
            Expr::If {
                cond: Box::new(c),
                then: Box::new(optimize_expr(then)),
                els: Box::new(optimize_expr(els)),
            }
        }
        Expr::Select(q) => Expr::Select(optimize_select(q)),
        Expr::Exists(q) => Expr::Exists(optimize_select(q)),
        Expr::Aggregate { func, arg } => Expr::Aggregate {
            func: *func,
            arg: Box::new(optimize_expr(arg)),
        },
        Expr::IsA { expr, class } => Expr::IsA {
            expr: Box::new(optimize_expr(expr)),
            class: *class,
        },
        Expr::Apply { name, args } => Expr::Apply {
            name: *name,
            args: args.iter().map(optimize_expr).collect(),
        },
    };
    // Fold the rebuilt node if it is a pure operation on literals.
    if pure_head(&rebuilt) && all_literal_children(&rebuilt) {
        if let Ok(v) = Evaluator::new(&EmptySource).eval(&rebuilt, &mut Env::new()) {
            return Expr::Lit(v);
        }
    }
    rebuilt
}

/// Optimizes a query: every sub-expression, plus dropping a literally-true
/// filter.
pub fn optimize_select(q: &SelectExpr) -> SelectExpr {
    let filter = q.filter.as_deref().map(optimize_expr);
    let filter = match filter {
        Some(Expr::Lit(ref v)) if truthy(v) => None,
        other => other,
    };
    SelectExpr {
        distinct: q.distinct,
        the: q.the,
        proj: Box::new(optimize_expr(&q.proj)),
        bindings: q
            .bindings
            .iter()
            .map(|(v, c)| (*v, optimize_expr(c)))
            .collect(),
        filter: filter.map(Box::new),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_select};

    fn opt(src: &str) -> String {
        optimize_expr(&parse_expr(src).unwrap()).to_string()
    }

    #[test]
    fn folds_arithmetic() {
        assert_eq!(opt("1 + 2 * 3"), "7");
        assert_eq!(opt("2 * 3 + x"), "6 + x");
        assert_eq!(opt(r#""a" ++ "b""#), r#""ab""#);
    }

    #[test]
    fn folds_comparisons_and_membership() {
        assert_eq!(opt("1 < 2"), "true");
        assert_eq!(opt("2 in {1, 2, 3}"), "true");
        assert_eq!(opt("{1, 2} union {3}"), "{1, 2, 3}");
    }

    #[test]
    fn division_is_never_folded() {
        // 1/0 must stay a run-time error, and even 4/2 is left alone (one
        // uniform rule beats a subtle one).
        assert_eq!(opt("4 / 2"), "4 / 2");
        assert_eq!(opt("1 / 0"), "1 / 0");
    }

    #[test]
    fn boolean_absorption_matches_short_circuit() {
        assert_eq!(opt("false and x.Oops"), "false");
        assert_eq!(opt("true or x.Oops"), "true");
        // Not rewritten: `true and e` must still coerce e to a boolean.
        assert_eq!(opt("true and x"), "true and x");
    }

    #[test]
    fn literal_conditionals_select_a_branch() {
        assert_eq!(opt("if 1 < 2 then x else y"), "x");
        assert_eq!(opt("if false then x else y + 0"), "y + 0");
    }

    #[test]
    fn open_terms_are_untouched() {
        for src in ["self.Age + 1", "P.City = X", "count(Person)"] {
            assert_eq!(opt(src), src);
        }
    }

    #[test]
    fn select_filters_simplify() {
        let q = parse_select("select P from P in Person where 1 < 2").unwrap();
        let o = optimize_select(&q);
        assert!(o.filter.is_none());
        let q = parse_select("select P from P in Person where P.Age >= 10 + 11").unwrap();
        let o = optimize_select(&q);
        assert_eq!(o.filter.unwrap().to_string(), "P.Age >= 21");
    }

    #[test]
    fn nested_folding_reaches_inside_selects() {
        let e = parse_expr("exists(select P from P in Person where P.X = 2 + 2)").unwrap();
        assert_eq!(
            optimize_expr(&e).to_string(),
            "exists(select P from P in Person where P.X = 4)"
        );
    }
}
