//! Static type inference.
//!
//! The paper leans on inference throughout: "the type declaration is not
//! compulsory because it is often the case that the type can be inferred by
//! the system" (§2), and for imaginary classes "by static type inference, it
//! declares that class Family has two attributes, Husband and Wife, both of
//! type Person" (§5). This module provides that inference for the view
//! layer and a static checker for ad-hoc queries.
//!
//! Inference runs against a [`DataSource`]'s schema-level methods, so it
//! works identically on base databases and on views.

use ov_oodb::{AggFunc, BinOp, Expr, SelectExpr, Symbol, Type, UnOp, Value};

use crate::error::{QueryError, Result};
use crate::source::{DataSource, SourceGraph};

/// A typing environment: variable types plus the type of `self`.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    vars: Vec<(Symbol, Type)>,
    self_ty: Option<Type>,
}

impl TypeEnv {
    /// An empty typing environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// An environment where `self` has type `ty` (used when inferring the
    /// type of a computed attribute's body in a class).
    pub fn with_self(ty: Type) -> TypeEnv {
        TypeEnv {
            vars: Vec::new(),
            self_ty: Some(ty),
        }
    }

    /// Binds a variable's type (innermost scope wins on lookup).
    pub fn bind(&mut self, name: Symbol, ty: Type) {
        self.vars.push((name, ty));
    }

    fn lookup(&self, name: Symbol) -> Option<&Type> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, t)| t)
    }

    fn pop(&mut self, n: usize) {
        self.vars.truncate(self.vars.len() - n);
    }
}

/// Infers the type of `expr` against `src` with an empty environment.
pub fn infer_expr(src: &dyn DataSource, expr: &Expr) -> Result<Type> {
    infer(src, &mut TypeEnv::new(), expr)
}

/// Infers the type of a query against `src`.
pub fn infer_select(src: &dyn DataSource, query: &SelectExpr) -> Result<Type> {
    infer_select_in(src, &mut TypeEnv::new(), query)
}

/// Infers the type of `expr` in `env`.
pub fn infer(src: &dyn DataSource, env: &mut TypeEnv, expr: &Expr) -> Result<Type> {
    match expr {
        Expr::Lit(v) => Ok(type_of_value(v)),
        Expr::SelfRef => env
            .self_ty
            .clone()
            .ok_or_else(|| QueryError::ty("`self` is not bound here")),
        Expr::Name(n) => {
            if let Some(t) = env.lookup(*n) {
                return Ok(t.clone());
            }
            if let Some(oid) = src.named_object(*n) {
                let c = src.class_of(oid)?;
                return Ok(Type::Class(c));
            }
            if let Some(c) = src.class_by_name(*n) {
                return Ok(Type::set(Type::Class(c)));
            }
            Err(QueryError::ty(format!(
                "unknown name `{n}` (not a variable, named object, or class)"
            )))
        }
        Expr::Attr { recv, name, args } => {
            let recv_ty = infer(src, env, recv)?;
            let mut arg_tys = Vec::with_capacity(args.len());
            for a in args {
                arg_tys.push(infer(src, env, a)?);
            }
            attr_type(src, &recv_ty, *name, &arg_tys)
        }
        Expr::TupleCons(fields) => {
            let mut out = std::collections::BTreeMap::new();
            for (n, e) in fields {
                out.insert(*n, infer(src, env, e)?);
            }
            Ok(Type::Tuple(out))
        }
        Expr::SetCons(items) => {
            let elem = lub_of_all(
                src,
                items
                    .iter()
                    .map(|e| infer(src, env, e))
                    .collect::<Result<Vec<_>>>()?,
            );
            Ok(Type::set(elem))
        }
        Expr::ListCons(items) => {
            let elem = lub_of_all(
                src,
                items
                    .iter()
                    .map(|e| infer(src, env, e))
                    .collect::<Result<Vec<_>>>()?,
            );
            Ok(Type::list(elem))
        }
        Expr::Unary { op, expr } => {
            let t = infer(src, env, expr)?;
            match op {
                UnOp::Not => {
                    require_boolish(&t, "operand of `not`")?;
                    Ok(Type::Bool)
                }
                UnOp::Neg => {
                    require_numeric(&t, "operand of `-`")?;
                    Ok(t)
                }
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lt = infer(src, env, lhs)?;
            let rt = infer(src, env, rhs)?;
            binary_type(src, *op, &lt, &rt)
        }
        Expr::If { cond, then, els } => {
            let ct = infer(src, env, cond)?;
            require_boolish(&ct, "`if` condition")?;
            let tt = infer(src, env, then)?;
            let et = infer(src, env, els)?;
            let g = SourceGraph(src);
            Ok(tt.lub(&et, &g).unwrap_or(Type::Any))
        }
        Expr::Select(q) => infer_select_in(src, env, q),
        Expr::Exists(q) => {
            infer_select_in(src, env, q)?;
            Ok(Type::Bool)
        }
        Expr::Aggregate { func, arg } => {
            let at = infer(src, env, arg)?;
            let elem = match &at {
                Type::Set(t) | Type::List(t) => (**t).clone(),
                Type::Any | Type::Nothing => Type::Any,
                other => {
                    return Err(QueryError::ty(format!(
                        "{}() needs a collection, found {other:?}",
                        func.name()
                    )))
                }
            };
            Ok(match func {
                AggFunc::Count => Type::Int,
                AggFunc::Avg => Type::Float,
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                    if matches!(func, AggFunc::Sum) {
                        require_numeric(&elem, "elements of sum()")?;
                    }
                    elem
                }
                AggFunc::Flatten => match elem {
                    Type::Set(inner) | Type::List(inner) => Type::Set(inner),
                    Type::Any | Type::Nothing => Type::set(Type::Any),
                    other => {
                        return Err(QueryError::ty(format!(
                            "flatten() needs a collection of collections, found {{{other:?}}}"
                        )))
                    }
                },
            })
        }
        Expr::IsA { expr, class } => {
            let t = infer(src, env, expr)?;
            if src.class_by_name(*class).is_none() {
                return Err(QueryError::from(ov_oodb::OodbError::UnknownClass(*class)));
            }
            match t {
                Type::Class(_) | Type::Any | Type::Nothing => Ok(Type::Bool),
                other => Err(QueryError::ty(format!(
                    "`isa` applies to objects, found {other:?}"
                ))),
            }
        }
        Expr::Apply { name, args } => {
            let mut tys = Vec::with_capacity(args.len());
            for a in args {
                tys.push(infer(src, env, a)?);
            }
            src.apply_type(*name, &tys)
        }
    }
}

/// Infers the type of a select in `env`: `Set(proj)` or, for `select the`,
/// the bare projection type.
pub fn infer_select_in(src: &dyn DataSource, env: &mut TypeEnv, q: &SelectExpr) -> Result<Type> {
    let mut bound = 0;
    for (var, coll) in &q.bindings {
        let coll_ty = infer(src, env, coll)?;
        let elem = match coll_ty {
            Type::Set(t) | Type::List(t) => *t,
            Type::Any => Type::Any,
            Type::Nothing => Type::Nothing,
            other => {
                return Err(QueryError::ty(format!(
                    "`from {var} in …` needs a collection, found {other:?}"
                )))
            }
        };
        env.bind(*var, elem);
        bound += 1;
    }
    if let Some(f) = &q.filter {
        let ft = infer(src, env, f)?;
        if let Err(e) = require_boolish(&ft, "`where` condition") {
            env.pop(bound);
            return Err(e);
        }
    }
    let proj_ty = infer(src, env, &q.proj);
    env.pop(bound);
    let proj_ty = proj_ty?;
    if q.the {
        Ok(proj_ty)
    } else {
        Ok(Type::set(proj_ty))
    }
}

/// Collects the names of classes `expr` reads from `src`, into `out`.
///
/// This is the dependency-extraction half of the typechecker: it walks the
/// expression with the same scoping rules as [`infer`] — a name is a class
/// reference only when no query variable shadows it and the source resolves
/// it as a class — but records names instead of types. The view layer runs
/// it at bind time to build the view dependency graph (which base classes
/// and which upstream virtual classes a definition reads).
pub fn referenced_classes(
    src: &dyn DataSource,
    env: &mut TypeEnv,
    expr: &Expr,
    out: &mut std::collections::BTreeSet<Symbol>,
) {
    match expr {
        Expr::Lit(_) | Expr::SelfRef => {}
        Expr::Name(n) => {
            if env.lookup(*n).is_none()
                && src.named_object(*n).is_none()
                && src.class_by_name(*n).is_some()
            {
                out.insert(*n);
            }
        }
        Expr::Attr { recv, args, .. } => {
            referenced_classes(src, env, recv, out);
            for a in args {
                referenced_classes(src, env, a, out);
            }
        }
        Expr::TupleCons(fields) => {
            for (_, e) in fields {
                referenced_classes(src, env, e, out);
            }
        }
        Expr::SetCons(items) | Expr::ListCons(items) => {
            for e in items {
                referenced_classes(src, env, e, out);
            }
        }
        Expr::Unary { expr, .. } => referenced_classes(src, env, expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            referenced_classes(src, env, lhs, out);
            referenced_classes(src, env, rhs, out);
        }
        Expr::If { cond, then, els } => {
            referenced_classes(src, env, cond, out);
            referenced_classes(src, env, then, out);
            referenced_classes(src, env, els, out);
        }
        Expr::Select(q) | Expr::Exists(q) => referenced_classes_select(src, env, q, out),
        Expr::Aggregate { arg, .. } => referenced_classes(src, env, arg, out),
        Expr::IsA { expr, class } => {
            referenced_classes(src, env, expr, out);
            if src.class_by_name(*class).is_some() {
                out.insert(*class);
            }
        }
        Expr::Apply { name, args } => {
            // A parameterized-class application reads the template; record
            // the name so instantiations depend on wherever it came from.
            out.insert(*name);
            for a in args {
                referenced_classes(src, env, a, out);
            }
        }
    }
}

/// [`referenced_classes`] over a `select` block, honoring `from` scoping:
/// bound variables shadow class names for the filter and projection, and
/// later collections see earlier bindings.
pub fn referenced_classes_select(
    src: &dyn DataSource,
    env: &mut TypeEnv,
    q: &SelectExpr,
    out: &mut std::collections::BTreeSet<Symbol>,
) {
    let mut bound = 0;
    for (var, coll) in &q.bindings {
        referenced_classes(src, env, coll, out);
        // Only the scope matters here, not the element type.
        env.bind(*var, Type::Any);
        bound += 1;
    }
    if let Some(f) = &q.filter {
        referenced_classes(src, env, f, out);
    }
    referenced_classes(src, env, &q.proj, out);
    env.pop(bound);
}

/// The static type of a literal.
pub fn type_of_value(v: &Value) -> Type {
    match v {
        Value::Null => Type::Nothing,
        Value::Bool(_) => Type::Bool,
        Value::Int(_) => Type::Int,
        Value::Float(_) => Type::Float,
        Value::Str(_) => Type::Str,
        // The class of a raw oid literal is not statically known.
        Value::Oid(_) => Type::Any,
        Value::Tuple(t) => Type::Tuple(t.iter().map(|(n, v)| (n, type_of_value(v))).collect()),
        Value::Set(s) => Type::set(
            s.iter()
                .map(type_of_value)
                .reduce(|a, b| a.lub(&b, &ov_oodb::types::NoClasses).unwrap_or(Type::Any))
                .unwrap_or(Type::Nothing),
        ),
        Value::List(l) => Type::list(
            l.iter()
                .map(type_of_value)
                .reduce(|a, b| a.lub(&b, &ov_oodb::types::NoClasses).unwrap_or(Type::Any))
                .unwrap_or(Type::Nothing),
        ),
    }
}

fn attr_type(src: &dyn DataSource, recv: &Type, name: Symbol, args: &[Type]) -> Result<Type> {
    match recv {
        Type::Nothing => Ok(Type::Nothing),
        Type::Any => Ok(Type::Any),
        Type::Class(c) => {
            let sig = src
                .attr_sig(*c, name)
                .ok_or(ov_oodb::OodbError::UnknownAttr {
                    class: src.class_name(*c),
                    attr: name,
                })?;
            if sig.params.len() != args.len() {
                return Err(QueryError::ty(format!(
                    "attribute `{name}` expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                )));
            }
            let g = SourceGraph(src);
            for ((pname, pty), aty) in sig.params.iter().zip(args) {
                if !aty.is_subtype(pty, &g) {
                    return Err(QueryError::ty(format!(
                        "argument `{pname}` of `{name}`: expected {pty:?}, found {aty:?}"
                    )));
                }
            }
            Ok(sig.ty)
        }
        Type::Tuple(fields) => {
            if !args.is_empty() {
                return Err(QueryError::ty(format!(
                    "tuple field `{name}` takes no arguments"
                )));
            }
            fields
                .get(&name)
                .cloned()
                .ok_or_else(|| QueryError::ty(format!("tuple type has no field `{name}`")))
        }
        other => Err(QueryError::ty(format!(
            "cannot access attribute `{name}` of {other:?}"
        ))),
    }
}

fn binary_type(src: &dyn DataSource, op: BinOp, lt: &Type, rt: &Type) -> Result<Type> {
    let g = SourceGraph(src);
    match op {
        BinOp::And | BinOp::Or => {
            require_boolish(lt, "boolean operand")?;
            require_boolish(rt, "boolean operand")?;
            Ok(Type::Bool)
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            require_numeric(lt, "arithmetic operand")?;
            require_numeric(rt, "arithmetic operand")?;
            if *lt == Type::Int && *rt == Type::Int {
                Ok(Type::Int)
            } else if matches!(lt, Type::Any) || matches!(rt, Type::Any) {
                Ok(Type::Any)
            } else {
                Ok(Type::Float)
            }
        }
        BinOp::Concat => match (lt, rt) {
            (Type::Str, Type::Str) => Ok(Type::Str),
            (Type::List(_), Type::List(_)) => Ok(lt.lub(rt, &g).unwrap_or(Type::Any)),
            (Type::Any, _) | (_, Type::Any) => Ok(Type::Any),
            _ => Err(QueryError::ty(format!(
                "`++` concatenates strings or lists, found {lt:?} and {rt:?}"
            ))),
        },
        BinOp::Eq | BinOp::Ne => Ok(Type::Bool),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ok = (is_numeric(lt) && is_numeric(rt))
                || (*lt == Type::Str && *rt == Type::Str)
                || matches!(lt, Type::Any | Type::Nothing)
                || matches!(rt, Type::Any | Type::Nothing);
            if ok {
                Ok(Type::Bool)
            } else {
                Err(QueryError::ty(format!("cannot order {lt:?} and {rt:?}")))
            }
        }
        BinOp::In => match rt {
            Type::Set(_) | Type::List(_) | Type::Any | Type::Nothing => Ok(Type::Bool),
            other => Err(QueryError::ty(format!(
                "`in` needs a collection on the right, found {other:?}"
            ))),
        },
        BinOp::Union | BinOp::Intersect | BinOp::Except => match (lt, rt) {
            (Type::Set(_), Type::Set(_)) => Ok(lt.lub(rt, &g).unwrap_or(Type::Any)),
            (Type::Any, _) | (_, Type::Any) => Ok(Type::Any),
            _ => Err(QueryError::ty(format!(
                "`{}` needs sets, found {lt:?} and {rt:?}",
                op.token()
            ))),
        },
    }
}

fn is_numeric(t: &Type) -> bool {
    matches!(t, Type::Int | Type::Float | Type::Any | Type::Nothing)
}

fn require_numeric(t: &Type, what: &str) -> Result<()> {
    if is_numeric(t) {
        Ok(())
    } else {
        Err(QueryError::ty(format!(
            "{what} must be numeric, found {t:?}"
        )))
    }
}

fn require_boolish(t: &Type, what: &str) -> Result<()> {
    if matches!(t, Type::Bool | Type::Any | Type::Nothing) {
        Ok(())
    } else {
        Err(QueryError::ty(format!(
            "{what} must be boolean, found {t:?}"
        )))
    }
}

fn lub_of_all(src: &dyn DataSource, tys: Vec<Type>) -> Type {
    let g = SourceGraph(src);
    tys.into_iter()
        .reduce(|a, b| a.lub(&b, &g).unwrap_or(Type::Any))
        .unwrap_or(Type::Nothing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_select};
    use ov_oodb::{sym, AttrDef, Database};

    fn staff() -> Database {
        let mut db = Database::new(sym("Staff"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        db.create_class(
            sym("Employee"),
            &[person],
            vec![AttrDef::stored(sym("Salary"), Type::Int)],
        )
        .unwrap();
        db
    }

    fn ty(db: &Database, src: &str) -> Type {
        infer_expr(db, &parse_expr(src).unwrap()).unwrap()
    }

    #[test]
    fn infers_paper_adult_query() {
        let db = staff();
        let q = parse_select("select P from Person where P.Age >= 21").unwrap();
        let person = db.schema.class_by_name(sym("Person")).unwrap();
        assert_eq!(
            infer_select(&db, &q).unwrap(),
            Type::set(Type::Class(person))
        );
    }

    #[test]
    fn infers_tuple_projection_types() {
        // The Family core type: Husband and Wife of type Person (§5).
        let db = staff();
        let q = parse_select("select [Husband: H, Wife: H] from H in Person").unwrap();
        let person = Type::Class(db.schema.class_by_name(sym("Person")).unwrap());
        assert_eq!(
            infer_select(&db, &q).unwrap(),
            Type::set(Type::tuple([("Husband", person.clone()), ("Wife", person)]))
        );
    }

    #[test]
    fn infers_example1_address_merge() {
        // attribute Address … has value [City: self.City, …] with self in a
        // class that stores the components as strings.
        let mut db = Database::new(sym("D"));
        let c = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("City"), Type::Str),
                    AttrDef::stored(sym("Street"), Type::Str),
                ],
            )
            .unwrap();
        let body = parse_expr("[City: self.City, Street: self.Street]").unwrap();
        let mut env = TypeEnv::with_self(Type::Class(c));
        let t = infer(&db, &mut env, &body).unwrap();
        assert_eq!(t, Type::tuple([("City", Type::Str), ("Street", Type::Str)]));
    }

    #[test]
    fn arithmetic_types() {
        let db = staff();
        assert_eq!(ty(&db, "1 + 2"), Type::Int);
        assert_eq!(ty(&db, "1 + 2.0"), Type::Float);
        assert!(infer_expr(&db, &parse_expr(r#"1 + "x""#).unwrap()).is_err());
    }

    #[test]
    fn where_must_be_boolean() {
        let db = staff();
        let q = parse_select("select P from P in Person where P.Age").unwrap();
        assert!(infer_select(&db, &q).is_err());
    }

    #[test]
    fn unknown_attribute_is_a_static_error() {
        let db = staff();
        let q = parse_select("select P.Wings from P in Person").unwrap();
        assert!(infer_select(&db, &q).is_err());
    }

    #[test]
    fn select_the_strips_the_set() {
        let db = staff();
        let q = parse_select("select the P.Age from P in Person").unwrap();
        assert_eq!(infer_select(&db, &q).unwrap(), Type::Int);
    }

    #[test]
    fn aggregates_type() {
        let db = staff();
        assert_eq!(ty(&db, "count((select P from P in Person))"), Type::Int);
        assert_eq!(ty(&db, "sum((select P.Age from P in Person))"), Type::Int);
        assert_eq!(ty(&db, "avg((select P.Age from P in Person))"), Type::Float);
        assert!(infer_expr(
            &db,
            &parse_expr("sum((select P.Name from P in Person))").unwrap()
        )
        .is_err());
    }

    #[test]
    fn set_literal_element_lub() {
        let db = staff();
        assert_eq!(ty(&db, "{1, 2.5}"), Type::set(Type::Float));
        assert_eq!(ty(&db, "{}"), Type::set(Type::Nothing));
    }

    #[test]
    fn isa_requires_known_class() {
        let db = staff();
        let q = parse_expr("P isa Ghost").unwrap();
        let mut env = TypeEnv::new();
        env.bind(
            sym("P"),
            Type::Class(db.schema.class_by_name(sym("Person")).unwrap()),
        );
        assert!(infer(&db, &mut env, &q).is_err());
    }

    #[test]
    fn if_branches_lub() {
        let db = staff();
        assert_eq!(ty(&db, "if true then 1 else 2.0"), Type::Float);
    }

    #[test]
    fn collects_referenced_classes() {
        let db = staff();
        let q = parse_select(
            "select P.Age from P in Person \
             where exists(select E from E in Employee where E.Age = P.Age)",
        )
        .unwrap();
        let mut out = std::collections::BTreeSet::new();
        referenced_classes_select(&db, &mut TypeEnv::new(), &q, &mut out);
        assert_eq!(out, [sym("Person"), sym("Employee")].into_iter().collect());
    }

    #[test]
    fn bound_variables_shadow_class_references() {
        let db = staff();
        // `Person` is a bound variable here, not a class read.
        let q = parse_select("select Person from Person in Employee").unwrap();
        let mut out = std::collections::BTreeSet::new();
        referenced_classes_select(&db, &mut TypeEnv::new(), &q, &mut out);
        assert_eq!(out, [sym("Employee")].into_iter().collect());
    }
}
