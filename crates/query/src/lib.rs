//! # ov-query — the O₂-style query and DDL language
//!
//! The language layer of the *Objects and Views* reproduction: a lexer, a
//! recursive-descent parser for expressions / queries / schema DDL / view
//! DDL, static type inference, and a tree-walking evaluator that runs
//! against any [`DataSource`] — a base `ov_oodb::Database` or an
//! `ov_views::View` ("A view should be treated as a database", paper §6).
//!
//! ## Quick taste
//!
//! ```
//! use ov_oodb::{System, Value, sym};
//! use ov_query::{execute_script, run_query};
//!
//! let mut sys = System::new();
//! execute_script(&mut sys, r#"
//!     database Staff;
//!     class Person type [Name: string, Age: integer];
//!     object #1 in Person value [Name: "Maggy", Age: 65];
//! "#).unwrap();
//! let db = sys.database(sym("Staff")).unwrap();
//! let v = run_query(&*db.read(), "select P.Name from P in Person where P.Age >= 21").unwrap();
//! assert_eq!(v, Value::set([Value::str("Maggy")]));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod budget;
pub mod compile;
pub mod error;
pub mod eval;
pub mod exec;
pub mod fingerprint;
pub mod lexer;
pub mod optimize;
pub mod parallel;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod source;
pub mod typecheck;

pub use ast::{ImportWhat, IncludeSpec, Stmt, TypeExpr};
pub use budget::{Budget, BudgetBreach};
pub use compile::{
    batch_rows, compile_fallbacks, compile_predicate, compile_select_scan, compiled_enabled,
    engine_mode, set_engine_mode, with_batch_rows, with_engine_mode, EngineMode, Program, Scan,
    SelectScan, DEFAULT_BATCH_ROWS,
};
pub use error::{Pos, QueryError, Result};
pub use eval::{eval_attr, eval_expr, eval_select, truthy, value_eq, Env, Evaluator};
pub use exec::{
    execute_script, execute_stmts, execute_stmts_with_map, map_select, resolve_type, rewrite_expr,
    run_expr, run_query, run_query_with_budget,
};
pub use fingerprint::{fingerprint_expr, fingerprint_query};
pub use optimize::{optimize_expr, optimize_select};
pub use parallel::{eval_select_parallel, panic_message, run_query_parallel, ParallelConfig};
pub use parser::{parse_expr, parse_program, parse_select, parse_type};
pub use plan::{
    run_query_traced, Engine, PlanChoice, PopOutcome, PopPath, PopulationTrace, QueryTrace,
    ScanActuals, ScanEvent, ScanKind, Stage,
};
pub use planner::{
    clear_plan_cache, estimate_select, planner_enabled, set_planner_enabled, with_planner,
    Decision as PlanDecision, Strategy as PlanStrategy,
};
pub use source::{require_class, DataSource, PrefetchedColumns, ResolvedAttr, SourceGraph};
pub use typecheck::{
    infer, infer_expr, infer_select, infer_select_in, referenced_classes,
    referenced_classes_select, type_of_value, TypeEnv,
};
