//! Parallel query execution.
//!
//! Single-binding `select … from V in C [where F]` queries iterate a
//! collection and evaluate the filter and projection independently per
//! element — an embarrassingly parallel loop. [`eval_select_parallel`]
//! splits the collection into chunks and evaluates them on a scoped thread
//! pool, merging the per-chunk sets. Everything else (multi-binding
//! queries, small collections, non-select expressions) falls back to the
//! sequential evaluator, so results are always identical to
//! [`crate::eval_select`].
//!
//! This requires the data source to be shareable across threads, hence the
//! `DataSource + Sync` bound — satisfied by `ov_oodb::Database` and (since
//! its caches moved to sharded locks) `ov_views::View`.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use ov_oodb::{SelectExpr, Value};

use crate::error::{QueryError, Result};
use crate::eval::{eval_expr, truthy, Env, Evaluator};
use crate::source::DataSource;

/// Knobs for parallel scans.
///
/// The default is sequential (`threads == 1`): parallelism is opt-in, and
/// collections smaller than `threshold` are never split — for small extents
/// the thread spawn/merge overhead dwarfs the scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker thread count. `1` disables parallel execution entirely; `0`
    /// is treated as `1`.
    pub threads: usize,
    /// Minimum collection size before a scan is split across threads.
    pub threshold: usize,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            threads: 1,
            threshold: ParallelConfig::DEFAULT_THRESHOLD,
        }
    }
}

impl ParallelConfig {
    /// Default minimum collection size for going parallel.
    pub const DEFAULT_THRESHOLD: usize = 1024;

    /// A config using `threads` workers and the default threshold.
    pub fn with_threads(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            ..ParallelConfig::default()
        }
    }

    /// Should a scan over `len` elements be split?
    pub fn should_split(&self, len: usize) -> bool {
        self.threads > 1 && len >= self.threshold.max(2)
    }

    /// Worker count for a scan over `len` elements (≥ 1, ≤ `len`).
    pub fn workers_for(&self, len: usize) -> usize {
        self.threads.max(1).min(len.max(1))
    }
}

/// Evaluates a select with chunked parallel iteration when profitable;
/// exact same results as [`crate::eval_select`].
pub fn eval_select_parallel(
    src: &(dyn DataSource + Sync),
    cfg: &ParallelConfig,
    q: &SelectExpr,
) -> Result<Value> {
    // Only the single-binding form parallelizes: later bindings may refer
    // to earlier variables, which forces the sequential nested loop.
    let [(var, coll_expr)] = q.bindings.as_slice() else {
        return Evaluator::new(src).select(q, &mut Env::new());
    };
    // The binding collection itself is evaluated sequentially — this keeps
    // the name-resolution order (variable → named object → class extent)
    // byte-for-byte identical to the sequential path.
    let coll = Evaluator::new(src).eval(coll_expr, &mut Env::new())?;
    let items: Vec<Value> = match coll {
        Value::Set(s) => s.into_iter().collect(),
        Value::List(l) => l,
        Value::Null => Vec::new(),
        other => {
            return Err(QueryError::eval(format!(
                "`from {var} in …` needs a set or list, found {}",
                other.kind()
            )))
        }
    };
    // Strategy choice: the cost-based planner weighs the split's fixed
    // overhead (~one threshold's worth of rows) against the per-worker
    // share; with the planner off, the fixed threshold heuristic decides.
    let split = if crate::planner::planner_enabled() {
        crate::planner::choose_split(items.len(), cfg.workers_for(items.len()), cfg.threshold)
    } else {
        cfg.should_split(items.len())
    };
    if !split {
        return Evaluator::new(src).select(q, &mut Env::new());
    }
    // Compile the filter and projection once on the coordinator; every
    // chunk then builds its own executor (register file, value stack, and
    // resolution caches are per-thread state). Any uncovered expression —
    // or `.engine interp` — drops the whole scan to the interpreter.
    let compiled = if crate::compile::compiled_enabled() {
        let vars = [*var];
        let filter = match q.filter.as_deref() {
            Some(f) => crate::compile::compile_predicate(f, &vars).map(Some),
            None => Some(None),
        };
        match (filter, crate::compile::compile_predicate(&q.proj, &vars)) {
            (Some(f), Some(p)) => Some((f, p)),
            _ => None,
        }
    } else {
        None
    };
    // Batch size is read on the coordinator (it is thread-scoped) and
    // applied inside every worker's chunk loop.
    let batch = crate::compile::batch_rows();
    let out = match &compiled {
        Some((filter, proj)) => filter_map_chunked(cfg, &items, |chunk, keep| {
            let mut fscan = filter.as_ref().map(|p| crate::compile::Scan::new(p, src));
            let mut pscan = crate::compile::Scan::new(proj, src);
            let mut actuals = crate::plan::ScanActuals::default();
            let sub_len = if batch == 0 {
                chunk.len().max(1)
            } else {
                batch
            };
            let r = (|| {
                for sub in chunk.chunks(sub_len) {
                    if batch > 0 {
                        if let Some(f) = &mut fscan {
                            f.begin_batch(0, sub);
                        }
                        pscan.begin_batch(0, sub);
                    }
                    for (i, item) in sub.iter().enumerate() {
                        actuals.rows_scanned += 1;
                        if let Some(f) = &mut fscan {
                            f.bind(0, item.clone());
                            if !truthy(&f.run_row(0, i)?) {
                                continue;
                            }
                        }
                        actuals.rows_matched += 1;
                        pscan.bind(0, item.clone());
                        keep.insert(pscan.run_row(0, i)?);
                    }
                }
                Ok(())
            })();
            if let Some(f) = &mut fscan {
                actuals.absorb(&f.take_actuals());
            }
            actuals.absorb(&pscan.take_actuals());
            crate::plan::add_actuals(&actuals);
            r
        })?,
        None => filter_map_chunked(cfg, &items, |chunk, keep| {
            let ev = Evaluator::new(src);
            let mut actuals = crate::plan::ScanActuals::default();
            let r = (|| {
                for item in chunk {
                    let mut env = Env::new();
                    env.bind(*var, item.clone());
                    actuals.rows_scanned += 1;
                    if let Some(f) = q.filter.as_deref() {
                        if !truthy(&ev.eval(f, &mut env)?) {
                            continue;
                        }
                    }
                    actuals.rows_matched += 1;
                    keep.insert(ev.eval(&q.proj, &mut env)?);
                }
                Ok(())
            })();
            crate::plan::add_actuals(&actuals);
            r
        })?,
    };
    if q.the {
        if out.len() == 1 {
            Ok(out.into_iter().next().expect("len checked"))
        } else {
            Err(QueryError::TheCardinality { got: out.len() })
        }
    } else {
        Ok(Value::Set(out))
    }
}

/// Runs a query string, executing top-level selects through
/// [`eval_select_parallel`]. Non-select expressions evaluate sequentially.
pub fn run_query_parallel(
    src: &(dyn DataSource + Sync),
    cfg: &ParallelConfig,
    query: &str,
) -> Result<Value> {
    let e = crate::parser::parse_expr(query)?;
    match &e {
        ov_oodb::Expr::Select(q) => eval_select_parallel(src, cfg, q),
        _ => eval_expr(src, &e),
    }
}

/// Splits `items` into one chunk per worker and runs `per_chunk` on each
/// chunk on a scoped thread pool, merging the per-chunk result sets.
/// The first error (in chunk order) wins.
fn filter_map_chunked<T, F>(
    cfg: &ParallelConfig,
    items: &[T],
    per_chunk: F,
) -> Result<BTreeSet<Value>>
where
    T: Sync,
    F: Fn(&[T], &mut BTreeSet<Value>) -> Result<()> + Sync,
{
    let workers = cfg.workers_for(items.len());
    let chunk_len = items.len().div_ceil(workers);
    let _span = ov_oodb::span!(
        "query.parallel_scan",
        items = items.len(),
        chunks = items.len().div_ceil(chunk_len)
    );
    // The coordinator's budget is re-installed on every worker so all
    // chunks drain the same shared step/row counters.
    let budget = crate::budget::current();
    // Workers cannot see the coordinator's thread-local actuals frame, so
    // when one is open each worker measures its chunk in a frame of its
    // own and folds the *work counters* into these shared cells; the
    // coordinator reports them once after the scope. Budget charges are
    // deliberately not folded — worker-side budget deltas overlap under
    // concurrency, and the coordinator's own bracketing delta already
    // covers every worker's charges (the budget is shared).
    let track = crate::plan::actuals_active();
    let shared: [AtomicU64; 5] = std::array::from_fn(|_| AtomicU64::new(0));
    let results: Vec<Result<BTreeSet<Value>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(i, chunk)| {
                let per_chunk = &per_chunk;
                let budget = budget.clone();
                let shared = &shared;
                scope.spawn(move || {
                    // Emitted on the worker, so the flight recorder sees
                    // the chunk under the worker's own thread id.
                    let _chunk_span =
                        ov_oodb::span!("query.scan_chunk", chunk = i, len = chunk.len());
                    let work = || -> Result<BTreeSet<Value>> {
                        ov_oodb::faults::hit("query.scan_chunk")
                            .map_err(ov_oodb::OodbError::Fault)?;
                        if let Some(b) = &budget {
                            b.check_deadline()?;
                        }
                        let mut keep = BTreeSet::new();
                        per_chunk(chunk, &mut keep)?;
                        if let Some(b) = &budget {
                            b.note_rows(keep.len() as u64)?;
                        }
                        Ok(keep)
                    };
                    let work = || match &budget {
                        Some(b) => crate::budget::with(b.clone(), work),
                        None => work(),
                    };
                    if track {
                        let (r, a) = crate::plan::with_scan_actuals(work);
                        let cells = [
                            a.rows_scanned,
                            a.rows_matched,
                            a.batches,
                            a.cache_hits,
                            a.cache_misses,
                        ];
                        for (cell, n) in shared.iter().zip(cells) {
                            cell.fetch_add(n, Ordering::Relaxed);
                        }
                        r
                    } else {
                        work()
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // A panicking chunk (an injected panic, a bug in an
                // attribute body) becomes a typed per-chunk error instead
                // of tearing down the coordinator.
                Err(payload) => Err(QueryError::Panicked {
                    site: "query.scan_chunk",
                    msg: panic_message(&payload),
                }),
            })
            .collect()
    });
    if track {
        crate::plan::add_actuals(&crate::plan::ScanActuals {
            rows_scanned: shared[0].load(Ordering::Relaxed),
            rows_matched: shared[1].load(Ordering::Relaxed),
            batches: shared[2].load(Ordering::Relaxed),
            cache_hits: shared[3].load(Ordering::Relaxed),
            cache_misses: shared[4].load(Ordering::Relaxed),
            ..Default::default()
        });
    }
    let mut out = BTreeSet::new();
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Renders a caught panic payload (the `&str` / `String` conventions cover
/// `panic!` and `assert!`; anything else is opaque). Public so other layers
/// converting caught worker panics into [`QueryError::Panicked`] render
/// payloads the same way.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_script;
    use ov_oodb::{sym, System};

    fn setup(n: i64) -> System {
        let mut sys = System::new();
        execute_script(
            &mut sys,
            r#"
            database D;
            class Person type [Name: string, Age: integer];
        "#,
        )
        .unwrap();
        let handle = sys.database(sym("D")).unwrap();
        let mut db = handle.write();
        let class = db.schema.require_class(sym("Person")).unwrap();
        for i in 0..n {
            db.create_object(
                class,
                Value::tuple([
                    (sym("Name"), Value::str(&format!("p{i}"))),
                    (sym("Age"), Value::Int(i % 90)),
                ]),
            )
            .unwrap();
        }
        drop(db);
        sys
    }

    #[test]
    fn parallel_matches_sequential() {
        let sys = setup(500);
        let handle = sys.database(sym("D")).unwrap();
        let db = handle.read();
        let q = "select P from P in Person where P.Age >= 21";
        let seq = crate::run_query(&*db, q).unwrap();
        let cfg = ParallelConfig {
            threads: 4,
            threshold: 1,
        };
        let par = run_query_parallel(&*db, &cfg, q).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn projection_and_the_forms_match() {
        let sys = setup(100);
        let handle = sys.database(sym("D")).unwrap();
        let db = handle.read();
        let cfg = ParallelConfig {
            threads: 3,
            threshold: 1,
        };
        let q = "select P.Name from P in Person where P.Age = 5";
        assert_eq!(
            crate::run_query(&*db, q).unwrap(),
            run_query_parallel(&*db, &cfg, q).unwrap()
        );
        let q = "select the P from P in Person where P.Name = \"p7\"";
        assert_eq!(
            crate::run_query(&*db, q).unwrap(),
            run_query_parallel(&*db, &cfg, q).unwrap()
        );
    }

    #[test]
    fn below_threshold_stays_sequential() {
        let sys = setup(10);
        let handle = sys.database(sym("D")).unwrap();
        let db = handle.read();
        let cfg = ParallelConfig {
            threads: 4,
            threshold: 1_000,
        };
        let q = "select P from P in Person";
        assert_eq!(
            crate::run_query(&*db, q).unwrap(),
            run_query_parallel(&*db, &cfg, q).unwrap()
        );
    }
}
