//! Recursive-descent parser for expressions, queries, schema DDL and view
//! DDL.
//!
//! "We are quite liberal with the exact syntax and assume it to be self
//! explanatory" (§2) — the grammar here covers every form the paper writes,
//! including both query spellings (`select P from P in Person` and the
//! abbreviated `select P from Person` / `select A in Adult`), `select the`,
//! parameterized class declarations `class Adult(A) includes …`, and the
//! `imaginary` keyword of §5.
//!
//! Keywords are contextual (see [`crate::lexer`]); the paper's own examples
//! use `Name` and `Children` as attribute names, so nothing is reserved.

use ov_oodb::{AggFunc, BinOp, Expr, SelectExpr, Symbol, UnOp, Value};

use crate::ast::{ImportWhat, IncludeSpec, Stmt, TypeExpr};
use crate::error::{Pos, QueryError, Result};
use crate::lexer::{lex, Tok, Token};

/// Parses a complete statement script.
pub fn parse_program(src: &str) -> Result<Vec<Stmt>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parses a single expression (must consume all input).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a single `select …` query (must consume all input).
pub fn parse_select(src: &str) -> Result<SelectExpr> {
    let mut p = Parser::new(src)?;
    p.expect_kw("select")?;
    let s = p.select_body()?;
    p.expect_eof()?;
    Ok(s)
}

/// Parses a type expression (must consume all input).
pub fn parse_type(src: &str) -> Result<TypeExpr> {
    let mut p = Parser::new(src)?;
    let t = p.type_expr()?;
    p.expect_eof()?;
    Ok(t)
}

/// Hard cap on parser nesting. Each grammar level is several stack frames
/// (`expr_prec` → `unary` → `postfix` → `primary`), so this keeps a
/// maximally nested input (`((((…1…))))`, `{{{{…}}}}`) comfortably inside
/// the default thread stack instead of overflowing it. An installed
/// [`Budget`](crate::Budget) with a lower depth cap tightens this further.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
    /// Current nesting depth of recursive grammar productions.
    depth: usize,
    /// The effective cap (see [`MAX_PARSE_DEPTH`]).
    depth_cap: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: lex(src)?,
            idx: 0,
            depth: 0,
            depth_cap: crate::budget::parse_depth_cap(MAX_PARSE_DEPTH),
        })
    }

    /// Enters one level of recursive grammar nesting, erring (a typed
    /// [`QueryError::ResourceExhausted`] when a budget set the cap, a parse
    /// error otherwise) instead of overflowing the stack. Paired with
    /// [`Parser::ascend`]; a `?`-propagated error may skip the `ascend`,
    /// which is fine — a failed parse abandons the whole `Parser`.
    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > self.depth_cap {
            self.depth -= 1;
            return Err(if self.depth_cap < MAX_PARSE_DEPTH {
                QueryError::ResourceExhausted(crate::budget::BudgetBreach {
                    limit: "recursion depth",
                    allowed: self.depth_cap as u64,
                })
            } else {
                self.error("input nested too deeply")
            });
        }
        Ok(())
    }

    /// Leaves one level of recursive grammar nesting.
    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.idx].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.idx + 1).min(self.tokens.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.idx].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.idx].tok.clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn error(&self, msg: impl Into<String>) -> QueryError {
        QueryError::Parse {
            pos: self.pos(),
            msg: msg.into(),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                tok.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.error(format!(
                "unexpected {} after complete input",
                self.peek().describe()
            )))
        }
    }

    /// Is the current token the identifier `kw`?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    /// Consumes the identifier `kw` if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found {}", self.peek().describe())))
        }
    }

    fn expect_ident(&mut self) -> Result<Symbol> {
        match self.peek() {
            Tok::Ident(s) => {
                let sym = Symbol::new(s);
                self.bump();
                Ok(sym)
            }
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_oid_lit(&mut self) -> Result<u64> {
        match self.peek() {
            Tok::OidLit(n) => {
                let n = *n;
                self.bump();
                Ok(n)
            }
            other => Err(self.error(format!("expected oid literal, found {}", other.describe()))),
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt> {
        let stmt = match self.peek() {
            Tok::Ident(kw) => match kw.as_str() {
                "database" => {
                    self.bump();
                    Stmt::Database(self.expect_ident()?)
                }
                "class" => self.class_stmt()?,
                "attribute" => self.attribute_stmt()?,
                "object" => self.object_stmt()?,
                "name" => {
                    self.bump();
                    let name = self.expect_ident()?;
                    self.expect(Tok::Eq)?;
                    let oid = self.expect_oid_lit()?;
                    Stmt::NameDecl { name, oid }
                }
                "create" => {
                    self.bump();
                    self.expect_kw("view")?;
                    Stmt::CreateView(self.expect_ident()?)
                }
                "import" => self.import_stmt()?,
                "hide" => self.hide_stmt()?,
                "set" => self.set_stmt()?,
                "delete" => {
                    self.bump();
                    Stmt::Delete(self.expr()?)
                }
                "insert" => {
                    self.bump();
                    let class = self.expect_ident()?;
                    self.expect_kw("value")?;
                    let value = self.expr()?;
                    Stmt::Insert { class, value }
                }
                _ => Stmt::Query(self.expr()?),
            },
            _ => Stmt::Query(self.expr()?),
        };
        // Semicolons terminate statements; the final one may omit it.
        if !self.at_eof() {
            self.expect(Tok::Semi)?;
        }
        Ok(stmt)
    }

    /// `class C(…) includes …` (virtual) or `class C inherits … type […]`
    /// (base).
    fn class_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("class")?;
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            loop {
                params.push(self.expect_ident()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        if self.at_kw("includes") {
            self.bump();
            let mut includes = vec![self.include_spec()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                includes.push(self.include_spec()?);
            }
            return Ok(Stmt::VirtualClassDecl {
                name,
                params,
                includes,
            });
        }
        if !params.is_empty() {
            return Err(self.error("only virtual classes (with `includes`) may take parameters"));
        }
        let mut parents = Vec::new();
        if self.eat_kw("inherits") {
            parents.push(self.expect_ident()?);
            while *self.peek() == Tok::Comma {
                self.bump();
                parents.push(self.expect_ident()?);
            }
        }
        let mut stored = Vec::new();
        if self.eat_kw("type") {
            self.expect(Tok::LBracket)?;
            if *self.peek() != Tok::RBracket {
                loop {
                    let field = self.expect_ident()?;
                    self.expect(Tok::Colon)?;
                    let ty = self.type_expr()?;
                    stored.push((field, ty));
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Tok::RBracket)?;
        }
        Ok(Stmt::ClassDecl {
            name,
            parents,
            stored,
        })
    }

    fn include_spec(&mut self) -> Result<IncludeSpec> {
        if self.eat_kw("like") {
            return Ok(IncludeSpec::Like(self.expect_ident()?));
        }
        if self.eat_kw("imaginary") {
            self.expect(Tok::LParen)?;
            self.expect_kw("select")?;
            let q = self.select_body()?;
            self.expect(Tok::RParen)?;
            return Ok(IncludeSpec::Imaginary(q));
        }
        if *self.peek() == Tok::LParen {
            self.bump();
            self.expect_kw("select")?;
            let q = self.select_body()?;
            self.expect(Tok::RParen)?;
            return Ok(IncludeSpec::Query(q));
        }
        Ok(IncludeSpec::Class(self.expect_ident()?))
    }

    /// `attribute A[(p: T, …)] [of type T] in class C [has value E]`.
    fn attribute_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("attribute")?;
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if *self.peek() == Tok::LParen {
            self.bump();
            loop {
                let p = self.expect_ident()?;
                self.expect(Tok::Colon)?;
                let t = self.type_expr()?;
                params.push((p, t));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let mut ty = None;
        if self.eat_kw("of") {
            self.expect_kw("type")?;
            ty = Some(self.type_expr()?);
        }
        self.expect_kw("in")?;
        self.expect_kw("class")?;
        let class = self.expect_ident()?;
        let mut body = None;
        if self.eat_kw("has") {
            self.expect_kw("value")?;
            body = Some(self.expr()?);
        }
        Ok(Stmt::AttributeDecl {
            name,
            params,
            ty,
            class,
            body,
        })
    }

    fn object_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("object")?;
        let oid = self.expect_oid_lit()?;
        self.expect_kw("in")?;
        let class = self.expect_ident()?;
        self.expect_kw("value")?;
        let value = self.expr()?;
        Ok(Stmt::ObjectDecl { oid, class, value })
    }

    fn import_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("import")?;
        let mut class_name = None;
        if self.eat_kw("all") {
            self.expect_kw("classes")?;
        } else {
            self.expect_kw("class")?;
            class_name = Some(self.expect_ident()?);
        }
        // The alias may come before or after the `from database D` clause:
        // `import class C as X from database D` and
        // `import class C from database D as X` both parse.
        let mut alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect_kw("from")?;
        // `from view V` is a cosmetic alias for `from database V`: the
        // source name resolves at bind time (views before databases), and
        // serialization always prints `database` so scripts round-trip.
        if !self.eat_kw("view") {
            self.expect_kw("database")?;
        }
        let db = self.expect_ident()?;
        if alias.is_none() && self.eat_kw("as") {
            alias = Some(self.expect_ident()?);
        }
        let what = match class_name {
            None => {
                if alias.is_some() {
                    return Err(self.error("`import all classes` cannot take an alias"));
                }
                ImportWhat::AllClasses
            }
            Some(name) => ImportWhat::Class { name, alias },
        };
        Ok(Stmt::Import { what, db })
    }

    fn hide_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("hide")?;
        if self.eat_kw("class") {
            return Ok(Stmt::HideClass(self.expect_ident()?));
        }
        if !(self.eat_kw("attribute") || self.eat_kw("attributes")) {
            return Err(self.error("expected `attribute`, `attributes` or `class` after `hide`"));
        }
        let mut attrs = vec![self.expect_ident()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            attrs.push(self.expect_ident()?);
        }
        self.expect_kw("in")?;
        self.expect_kw("class")?;
        let class = self.expect_ident()?;
        Ok(Stmt::HideAttrs { attrs, class })
    }

    /// `set E.A = V` — the target must be an attribute access.
    fn set_stmt(&mut self) -> Result<Stmt> {
        self.expect_kw("set")?;
        let target = self.expr_prec(4)?; // stop before `=` (precedence 3)
        let Expr::Attr { recv, name, args } = target else {
            return Err(self.error("the target of `set` must be `expr.Attribute`"));
        };
        if !args.is_empty() {
            return Err(self.error("cannot assign to a parameterized attribute"));
        }
        self.expect(Tok::Eq)?;
        let value = self.expr()?;
        Ok(Stmt::SetAttr {
            target: *recv,
            attr: name,
            value,
        })
    }

    // -----------------------------------------------------------------
    // Types
    // -----------------------------------------------------------------

    fn type_expr(&mut self) -> Result<TypeExpr> {
        self.descend()?;
        let r = self.type_expr_inner();
        self.ascend();
        r
    }

    fn type_expr_inner(&mut self) -> Result<TypeExpr> {
        match self.peek().clone() {
            Tok::LBrace => {
                self.bump();
                let inner = self.type_expr()?;
                self.expect(Tok::RBrace)?;
                Ok(TypeExpr::Set(Box::new(inner)))
            }
            Tok::LBracket => {
                self.bump();
                let mut fields = Vec::new();
                if *self.peek() != Tok::RBracket {
                    loop {
                        let name = self.expect_ident()?;
                        self.expect(Tok::Colon)?;
                        fields.push((name, self.type_expr()?));
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(TypeExpr::Tuple(fields))
            }
            Tok::Ident(s) if s == "list" => {
                self.bump();
                self.expect(Tok::LParen)?;
                let inner = self.type_expr()?;
                self.expect(Tok::RParen)?;
                Ok(TypeExpr::List(Box::new(inner)))
            }
            Tok::Ident(_) => Ok(TypeExpr::Name(self.expect_ident()?)),
            other => Err(self.error(format!("expected a type, found {}", other.describe()))),
        }
    }

    // -----------------------------------------------------------------
    // Expressions (precedence climbing)
    // -----------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.expr_prec(1)
    }

    /// Parses at minimum precedence `min_prec` (1 = everything).
    fn expr_prec(&mut self, min_prec: u8) -> Result<Expr> {
        self.descend()?;
        let r = self.expr_prec_inner(min_prec);
        self.ascend();
        r
    }

    fn expr_prec_inner(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.peek_binop() {
            // `isa` is handled as a comparison-level postfix.
            if let PeekedOp::IsA = op {
                if 3 < min_prec {
                    break;
                }
                self.bump();
                let class = self.expect_ident()?;
                lhs = Expr::IsA {
                    expr: Box::new(lhs),
                    class,
                };
                continue;
            }
            let PeekedOp::Bin(bop) = op else {
                unreachable!()
            };
            let prec = bop.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.expr_prec(prec + 1)?; // left associative
            lhs = Expr::Binary {
                op: bop,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn peek_binop(&self) -> Option<PeekedOp> {
        let op = match self.peek() {
            Tok::Plus => BinOp::Add,
            Tok::PlusPlus => BinOp::Concat,
            Tok::Minus => BinOp::Sub,
            Tok::Star => BinOp::Mul,
            Tok::Slash => BinOp::Div,
            Tok::Percent => BinOp::Mod,
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::Ident(s) => match s.as_str() {
                "and" => BinOp::And,
                "or" => BinOp::Or,
                "in" => BinOp::In,
                "union" => BinOp::Union,
                "intersect" => BinOp::Intersect,
                "except" => BinOp::Except,
                "isa" => return Some(PeekedOp::IsA),
                _ => return None,
            },
            _ => return None,
        };
        Some(PeekedOp::Bin(op))
    }

    fn unary(&mut self) -> Result<Expr> {
        // Guarded separately from `expr_prec`: prefix chains (`not not …`,
        // `--…`) recurse here without passing back through it.
        self.descend()?;
        let e = self.unary_inner();
        self.ascend();
        e
    }

    fn unary_inner(&mut self) -> Result<Expr> {
        if self.at_kw("not") {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            });
        }
        if *self.peek() == Tok::Minus {
            self.bump();
            let e = self.unary()?;
            // Fold negation of numeric literals so `-5` is a literal.
            return Ok(match e {
                Expr::Lit(Value::Int(i)) => Expr::Lit(Value::Int(-i)),
                Expr::Lit(Value::Float(x)) => Expr::Lit(Value::Float(-x)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while *self.peek() == Tok::Dot {
            self.bump();
            let name = self.expect_ident()?;
            let mut args = Vec::new();
            if *self.peek() == Tok::LParen {
                self.bump();
                if *self.peek() != Tok::RParen {
                    loop {
                        args.push(self.expr()?);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
            }
            e = Expr::Attr {
                recv: Box::new(e),
                name,
                args,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Lit(Value::Int(i)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::Lit(Value::Float(x)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Value::str(&s)))
            }
            Tok::OidLit(n) => {
                self.bump();
                Ok(Expr::Lit(Value::Oid(ov_oodb::Oid(n))))
            }
            Tok::LParen => {
                self.bump();
                let e = if self.at_kw("select") {
                    self.bump();
                    Expr::Select(self.select_body()?)
                } else {
                    self.expr()?
                };
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                self.bump();
                let mut fields = Vec::new();
                if *self.peek() != Tok::RBracket {
                    loop {
                        let name = self.expect_ident()?;
                        self.expect(Tok::Colon)?;
                        fields.push((name, self.expr()?));
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Expr::TupleCons(fields))
            }
            Tok::LBrace => {
                self.bump();
                let mut items = Vec::new();
                if *self.peek() != Tok::RBrace {
                    loop {
                        items.push(self.expr()?);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Expr::SetCons(items))
            }
            Tok::Ident(word) => match word.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Lit(Value::Bool(true)))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Lit(Value::Bool(false)))
                }
                "null" => {
                    self.bump();
                    Ok(Expr::Lit(Value::Null))
                }
                "self" => {
                    self.bump();
                    Ok(Expr::SelfRef)
                }
                "if" => {
                    self.bump();
                    let cond = self.expr()?;
                    self.expect_kw("then")?;
                    let then = self.expr()?;
                    self.expect_kw("else")?;
                    let els = self.expr()?;
                    Ok(Expr::If {
                        cond: Box::new(cond),
                        then: Box::new(then),
                        els: Box::new(els),
                    })
                }
                "select" => {
                    self.bump();
                    Ok(Expr::Select(self.select_body()?))
                }
                "exists" => {
                    self.bump();
                    self.expect(Tok::LParen)?;
                    self.expect_kw("select")?;
                    let q = self.select_body()?;
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Exists(q))
                }
                "list" if *self.peek2() == Tok::LParen => {
                    self.bump();
                    self.bump();
                    let mut items = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            items.push(self.expr()?);
                            if *self.peek() == Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::ListCons(items))
                }
                _ => {
                    if let Some(func) = AggFunc::from_name(&word) {
                        if *self.peek2() == Tok::LParen {
                            self.bump();
                            self.bump();
                            let arg = self.expr()?;
                            self.expect(Tok::RParen)?;
                            return Ok(Expr::Aggregate {
                                func,
                                arg: Box::new(arg),
                            });
                        }
                    }
                    let name = self.expect_ident()?;
                    // `Name(args)` — a parameterized-class instance such as
                    // the paper's `Resident(USA)` (§4.1).
                    if *self.peek() == Tok::LParen {
                        self.bump();
                        let mut args = Vec::new();
                        if *self.peek() != Tok::RParen {
                            loop {
                                args.push(self.expr()?);
                                if *self.peek() == Tok::Comma {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RParen)?;
                        return Ok(Expr::Apply { name, args });
                    }
                    Ok(Expr::Name(name))
                }
            },
            other => Err(self.error(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }

    /// Parses the body of a select (after the `select` keyword):
    /// `[the] [distinct] proj (from bindings | in coll) [where cond]`.
    fn select_body(&mut self) -> Result<SelectExpr> {
        let mut the = false;
        let mut distinct = false;
        // `the` / `distinct` flags — contextual: `select the ...` where the
        // next-next token shape decides. We accept them greedily unless the
        // word is immediately followed by `from`/`in` (then it was the
        // projection variable itself).
        loop {
            if self.at_kw("the") && !is_proj_terminator(self.peek2()) {
                self.bump();
                the = true;
            } else if self.at_kw("distinct") && !is_proj_terminator(self.peek2()) {
                self.bump();
                distinct = true;
            } else {
                break;
            }
        }
        let proj = self.expr_prec(4)?; // stop before `in` (precedence 3)
        let mut bindings = Vec::new();
        if self.eat_kw("in") {
            // `select A in Adult [where …]` — abbreviated form; the
            // projection must be a bare variable.
            let Expr::Name(var) = &proj else {
                return Err(
                    self.error("in `select X in C`, the projection X must be a plain variable")
                );
            };
            let coll = self.expr_prec(4)?;
            bindings.push((*var, coll));
        } else {
            self.expect_kw("from")?;
            loop {
                let binding = self.parse_from_binding(&proj)?;
                bindings.push(binding);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let filter = if self.eat_kw("where") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        Ok(SelectExpr {
            distinct,
            the,
            proj: Box::new(proj),
            bindings,
            filter,
        })
    }

    /// One `from` binding: `V in Coll`, or the paper's abbreviated
    /// `from Person` (the bound variable is then the projection variable).
    fn parse_from_binding(&mut self, proj: &Expr) -> Result<(Symbol, Expr)> {
        // Explicit form: IDENT `in` …
        if let (Tok::Ident(v), Tok::Ident(kw)) = (self.peek(), self.peek2()) {
            if kw == "in" {
                let var = Symbol::new(v);
                self.bump();
                self.bump();
                let coll = self.expr_prec(4)?;
                return Ok((var, coll));
            }
        }
        // Abbreviated form: the collection only. Bind the projection
        // variable (paper: "select P from Person where P.Age >= 21").
        let coll = self.expr_prec(4)?;
        let var = implied_variable(proj).ok_or_else(|| {
            self.error(
                "binding without `in` requires the projection to be a plain variable \
                 (as in `select P from Person`)",
            )
        })?;
        Ok((var, coll))
    }
}

enum PeekedOp {
    Bin(BinOp),
    IsA,
}

/// For `select X …`, the variable implied by an abbreviated binding: `X`
/// itself if the projection is a name or a path rooted at a name.
fn implied_variable(proj: &Expr) -> Option<Symbol> {
    match proj {
        Expr::Name(v) => Some(*v),
        Expr::Attr { recv, .. } => implied_variable(recv),
        Expr::TupleCons(fields) => fields.iter().find_map(|(_, e)| implied_variable(e)),
        _ => None,
    }
}

/// Tokens that mean the preceding word was the projection, not a flag.
fn is_proj_terminator(tok: &Tok) -> bool {
    matches!(tok, Tok::Ident(s) if s == "from" || s == "in")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ov_oodb::sym;

    fn roundtrip(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = e.to_string();
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        assert_eq!(e, e2, "round-trip mismatch for `{src}` → `{printed}`");
    }

    #[test]
    fn parses_paper_adult_query() {
        let q = parse_select("select P from Person where P.Age >= 21").unwrap();
        assert_eq!(q.bindings, vec![(sym("P"), Expr::name("Person"))]);
        assert_eq!(*q.proj, Expr::name("P"));
        assert!(q.filter.is_some());
    }

    #[test]
    fn parses_explicit_binding_form() {
        let q = parse_select("select F from F in Family where F.Size > 5").unwrap();
        assert_eq!(q.bindings, vec![(sym("F"), Expr::name("Family"))]);
    }

    #[test]
    fn parses_select_the_in_form() {
        // Paper Example 5: "select the A in Address where A.City = self.City".
        let q = parse_select("select the A in Address where A.City = self.City").unwrap();
        assert!(q.the);
        assert_eq!(q.bindings, vec![(sym("A"), Expr::name("Address"))]);
    }

    #[test]
    fn select_projecting_a_variable_named_the() {
        // `select the from ...` must treat `the` as the projection when
        // followed directly by `from`.
        let q = parse_select("select the from the in Person").unwrap();
        assert!(!q.the);
        assert_eq!(*q.proj, Expr::name("the"));
    }

    #[test]
    fn parses_family_imaginary_query_projection() {
        let q = parse_select(
            r#"select [Husband: H, Wife: H.Spouse] from H in Person where H.Sex = "male""#,
        )
        .unwrap();
        match &*q.proj {
            Expr::TupleCons(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, sym("Husband"));
            }
            other => panic!("expected tuple projection, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_binding_select() {
        let q =
            parse_select("select [A: X, B: Y] from X in Rich, Y in Beautiful where X = Y").unwrap();
        assert_eq!(q.bindings.len(), 2);
    }

    #[test]
    fn abbreviated_binding_from_path_projection() {
        // "select E.Name from Employee" — implied variable E.
        let q = parse_select("select E.Name from Employee").unwrap();
        assert_eq!(q.bindings, vec![(sym("E"), Expr::name("Employee"))]);
    }

    #[test]
    fn nested_select_membership() {
        let q = parse_select(
            "select F from Family where F.Size > 5 and F in (select F from Family where F.Father.Age < 25)",
        )
        .unwrap();
        let filter = q.filter.unwrap();
        assert!(matches!(*filter, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn precedence_and_or_cmp() {
        let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
        // `or` binds loosest.
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn isa_parses_at_comparison_level() {
        let e = parse_expr("P isa Adult and Q isa Minor").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
        roundtrip("P isa Adult and Q isa Minor");
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::Lit(Value::Int(-5)));
        assert_eq!(parse_expr("-2.5").unwrap(), Expr::Lit(Value::Float(-2.5)));
        assert!(matches!(
            parse_expr("-x").unwrap(),
            Expr::Unary { op: UnOp::Neg, .. }
        ));
    }

    #[test]
    fn roundtrips() {
        for src in [
            "self.City",
            "[City: self.City, Street: self.Street, Zip_Code: self.Zip_Code]",
            "(select P from P in Person where P.Age >= 21)",
            "a + b * c - d / e % f",
            "not (a and b) or c",
            "x in s union t",
            "{1, 2, 3} intersect {2}",
            "list(1, 2) ",
            "if a then 1 else 2",
            "count((select P from P in Person))",
            "exists(select P from P in Person where P.Age < 0)",
            "e.Raise(100, x + 1)",
            "self.Husband.Children",
            "-x + 3",
            r#""a" ++ "b""#,
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn parses_class_decl() {
        let stmts = parse_program(
            "class Person type [Name: string, Age: integer];\n\
             class Employee inherits Person type [Salary: integer];",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
        match &stmts[1] {
            Stmt::ClassDecl {
                name,
                parents,
                stored,
            } => {
                assert_eq!(*name, sym("Employee"));
                assert_eq!(parents, &[sym("Person")]);
                assert_eq!(stored.len(), 1);
            }
            other => panic!("expected ClassDecl, got {other:?}"),
        }
    }

    #[test]
    fn parses_virtual_class_forms() {
        let stmts = parse_program(
            "class Adult includes (select P from Person where P.Age >= 21);\n\
             class Ship includes Tanker, Cruiser, Trawler;\n\
             class On_Sale includes like On_Sale_Spec;\n\
             class Family includes imaginary (select [Husband: H] from H in Person);",
        )
        .unwrap();
        let kinds: Vec<_> = stmts
            .iter()
            .map(|s| match s {
                Stmt::VirtualClassDecl { includes, .. } => includes
                    .iter()
                    .map(|i| match i {
                        IncludeSpec::Class(_) => "class",
                        IncludeSpec::Query(_) => "query",
                        IncludeSpec::Like(_) => "like",
                        IncludeSpec::Imaginary(_) => "imaginary",
                    })
                    .collect::<Vec<_>>(),
                other => panic!("expected VirtualClassDecl, got {other:?}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                vec!["query"],
                vec!["class", "class", "class"],
                vec!["like"],
                vec!["imaginary"]
            ]
        );
    }

    #[test]
    fn parses_parameterized_class() {
        let stmts =
            parse_program("class Adult(A) includes (select P from Person where P.Age > A);")
                .unwrap();
        match &stmts[0] {
            Stmt::VirtualClassDecl { params, .. } => assert_eq!(params, &[sym("A")]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn base_class_with_params_rejected() {
        assert!(parse_program("class C(X) type [A: integer];").is_err());
    }

    #[test]
    fn parses_attribute_decls() {
        let stmts = parse_program(
            "attribute Address in class Employee;\n\
             attribute Address in class Manager has value self.Company.Address;\n\
             attribute Raise(amount: integer) of type integer in class Employee has value self.Salary + amount;",
        )
        .unwrap();
        match &stmts[0] {
            Stmt::AttributeDecl { body, ty, .. } => {
                assert!(body.is_none());
                assert!(ty.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[2] {
            Stmt::AttributeDecl {
                params, ty, body, ..
            } => {
                assert_eq!(params.len(), 1);
                assert!(ty.is_some());
                assert!(body.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_view_header_statements() {
        let stmts = parse_program(
            "create view My_View;\n\
             import all classes from database Chrysler;\n\
             import class Person from database Ford as Ford_Person;\n\
             hide attribute Salary in class Employee;\n\
             hide attributes Name, Age in class Policy;\n\
             hide class Secret;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 6);
        assert_eq!(stmts[0], Stmt::CreateView(sym("My_View")));
        assert!(matches!(
            &stmts[1],
            Stmt::Import { what: ImportWhat::AllClasses, db } if *db == sym("Chrysler")
        ));
        assert!(matches!(
            &stmts[2],
            Stmt::Import {
                what: ImportWhat::Class { alias: Some(a), .. },
                ..
            } if *a == sym("Ford_Person")
        ));
        match &stmts[4] {
            Stmt::HideAttrs { attrs, .. } => assert_eq!(attrs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(stmts[5], Stmt::HideClass(sym("Secret")));
    }

    #[test]
    fn parses_object_and_name_decls() {
        let stmts = parse_program(
            r#"object #1 in Person value [Name: "Maggy", Age: 65];
               name maggy = #1;"#,
        )
        .unwrap();
        assert!(matches!(&stmts[0], Stmt::ObjectDecl { oid: 1, .. }));
        assert!(matches!(&stmts[1], Stmt::NameDecl { oid: 1, .. }));
    }

    #[test]
    fn parses_updates() {
        let stmts = parse_program(
            r#"set maggy.Age = 66;
               insert Person value [Name: "Bart"];
               delete maggy;"#,
        )
        .unwrap();
        assert!(matches!(&stmts[0], Stmt::SetAttr { attr, .. } if *attr == sym("Age")));
        assert!(matches!(&stmts[1], Stmt::Insert { .. }));
        assert!(matches!(&stmts[2], Stmt::Delete(_)));
    }

    #[test]
    fn set_requires_attribute_target() {
        assert!(parse_program("set maggy = 3;").is_err());
    }

    #[test]
    fn missing_semicolon_between_statements_errors() {
        assert!(parse_program("create view V create view W;").is_err());
    }

    #[test]
    fn query_statement_falls_through() {
        let stmts = parse_program("select P from P in Person;").unwrap();
        assert!(matches!(&stmts[0], Stmt::Query(Expr::Select(_))));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_expr("a +").unwrap_err();
        match err {
            QueryError::Parse { pos, .. } => assert_eq!(pos.line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_vs_identifier() {
        // `count` not followed by `(` is a plain name.
        assert_eq!(parse_expr("count").unwrap(), Expr::name("count"));
        assert!(matches!(
            parse_expr("count(x)").unwrap(),
            Expr::Aggregate {
                func: AggFunc::Count,
                ..
            }
        ));
    }

    #[test]
    fn type_exprs_parse() {
        assert_eq!(
            parse_type("{[City: string]}").unwrap().to_string(),
            "{[City: string]}"
        );
        assert_eq!(
            parse_type("list(Person)").unwrap().to_string(),
            "list(Person)"
        );
        assert!(parse_type("{").is_err());
    }

    // ------------------------------------------------------------------
    // Fuzz-style hardening: every malformed input must return Err, never
    // panic or overflow the stack.
    // ------------------------------------------------------------------

    #[test]
    fn truncated_inputs_error_cleanly() {
        for src in [
            "",
            "select",
            "select P from",
            "select P from P in",
            "select P from P in Person where",
            "class Person type [Name:",
            "object #1 in Person value [",
            "1 +",
            "(1 + 2",
            "[Name: \"x\"",
            "{1, 2,",
            "\"unterminated",
            "P.",
            "#",
            "#i",
        ] {
            assert!(parse_expr(src).is_err(), "should reject {src:?}");
        }
    }

    #[test]
    fn garbage_inputs_error_cleanly() {
        for src in [
            "\u{0}\u{0}\u{0}",
            "%%%@@!!",
            "select select select",
            "1e999999999999",
            "#18446744073709551616",
            "#i18446744073709551615",
            "where where where",
            ");;;](",
            "\\q",
        ] {
            assert!(parse_expr(src).is_err(), "should reject {src:?}");
        }
    }

    #[test]
    fn deeply_nested_expressions_hit_the_depth_cap_not_the_stack() {
        // 10k nested parens would overflow the parser's recursion without
        // the depth cap; with it, a clean error comes back.
        let deep = format!("{}1{}", "(".repeat(10_000), ")".repeat(10_000));
        let e = parse_expr(&deep).unwrap_err();
        assert!(e.to_string().contains("nested too deeply"), "{e}");
        // Same for prefix operators, set literals, and nested selects.
        let deep = format!("{}1", "not ".repeat(10_000));
        assert!(parse_expr(&deep).is_err());
        let deep = format!("{}1{}", "{".repeat(10_000), "}".repeat(10_000));
        assert!(parse_expr(&deep).is_err());
        let deep = format!("{}{{[A: string]}}", "list(".repeat(10_000));
        assert!(parse_type(&deep).is_err());
    }

    #[test]
    fn nesting_below_the_cap_still_parses() {
        // Each paren level costs two depth units (binary + prefix tiers).
        let ok = format!("{}1{}", "(".repeat(40), ")".repeat(40));
        assert!(parse_expr(&ok).is_ok());
    }

    #[test]
    fn budget_tightens_the_parse_depth_cap_to_a_typed_breach() {
        let budget = std::sync::Arc::new(crate::Budget::new().with_max_depth(8));
        let deep = format!("{}1{}", "(".repeat(30), ")".repeat(30));
        let err = crate::budget::with(budget, || parse_expr(&deep)).unwrap_err();
        assert!(
            matches!(err, QueryError::ResourceExhausted(_)),
            "budget-capped depth must be a typed breach: {err}"
        );
        // The same input parses fine without a budget.
        assert!(parse_expr(&deep).is_ok());
    }
}
