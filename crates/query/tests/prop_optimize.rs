//! Property test: the optimizer preserves semantics. For random expressions
//! evaluated against a small database, the optimized form produces the same
//! outcome (same value, or both error).

use ov_oodb::{sym, AttrDef, BinOp, Database, Expr, Type, UnOp, Value};
use ov_query::{eval_expr, optimize_expr};
use proptest::prelude::*;

fn db() -> Database {
    let mut db = Database::new(sym("OptDb"));
    let person = db
        .create_class(
            sym("Person"),
            &[],
            vec![
                AttrDef::stored(sym("Name"), Type::Str),
                AttrDef::stored(sym("Age"), Type::Int),
            ],
        )
        .unwrap();
    for (n, a) in [("a", 10), ("b", 30), ("c", 70)] {
        let o = db
            .create_object(
                person,
                Value::tuple([("Name", Value::str(n)), ("Age", Value::Int(a))]),
            )
            .unwrap();
        db.name_object(sym(n), o).unwrap();
    }
    db
}

fn arb_lit() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Lit(Value::Null)),
        any::<bool>().prop_map(|b| Expr::Lit(Value::Bool(b))),
        (-100i64..100).prop_map(|i| Expr::Lit(Value::Int(i))),
        (-10.0f64..10.0).prop_map(|f| Expr::Lit(Value::Float(f))),
        "[a-c]{0,3}".prop_map(|s| Expr::Lit(Value::str(&s))),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_lit(),
        Just(Expr::name("a")),
        Just(Expr::name("b")),
        Just(Expr::name("Person")),
        Just(Expr::attr(Expr::name("a"), "Age")),
        Just(Expr::attr(Expr::name("b"), "Name")),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::Concat),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::In),
                    Just(BinOp::Union),
                    Just(BinOp::Intersect),
                    Just(BinOp::Except),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::If {
                cond: Box::new(c),
                then: Box::new(t),
                els: Box::new(e),
            }),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::SetCons),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::ListCons),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    /// Optimization never changes the outcome: same value or same
    /// error-ness.
    #[test]
    fn optimizer_preserves_semantics(e in arb_expr()) {
        let db = db();
        let before = eval_expr(&db, &e);
        let optimized = optimize_expr(&e);
        let after = eval_expr(&db, &optimized);
        match (before, after) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "expr: {}", e),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "divergence on {}: before={:?}, after={:?} (optimized: {})",
                e, a, b, optimized
            ),
        }
    }

    /// Optimization is idempotent.
    #[test]
    fn optimizer_is_idempotent(e in arb_expr()) {
        let once = optimize_expr(&e);
        let twice = optimize_expr(&once);
        prop_assert_eq!(once, twice);
    }
}
