//! Property test: dump → load → dump is a fixpoint for randomly generated
//! databases (schemas with inheritance, objects with references, names).

use ov_oodb::{dump_database, sym, AttrDef, Database, System, Type, Value};
use ov_query::execute_script;
use proptest::prelude::*;

/// A compact recipe for one random database.
#[derive(Debug, Clone)]
struct DbRecipe {
    /// Per class: parent index (into earlier classes) and 0–3 extra
    /// attributes of rotating types.
    classes: Vec<(Option<prop::sample::Index>, u8)>,
    /// Per object: class index, an age, and maybe a reference to an earlier
    /// object.
    objects: Vec<(prop::sample::Index, i64, Option<prop::sample::Index>)>,
    /// How many of the first objects get persistent names.
    named: u8,
}

fn arb_recipe() -> impl Strategy<Value = DbRecipe> {
    (
        prop::collection::vec(
            (prop::option::of(any::<prop::sample::Index>()), 0u8..4),
            1..6,
        ),
        prop::collection::vec(
            (
                any::<prop::sample::Index>(),
                0i64..100,
                prop::option::of(any::<prop::sample::Index>()),
            ),
            0..12,
        ),
        0u8..4,
    )
        .prop_map(|(classes, objects, named)| DbRecipe {
            classes,
            objects,
            named,
        })
}

fn build(recipe: &DbRecipe, tag: usize) -> Database {
    let mut db = Database::new(sym(&format!("R{tag}")));
    let mut class_ids = Vec::new();
    for (i, (parent, extra)) in recipe.classes.iter().enumerate() {
        let parents: Vec<_> = match parent {
            Some(ix) if !class_ids.is_empty() => vec![class_ids[ix.index(class_ids.len())]],
            _ => vec![],
        };
        let mut attrs = vec![AttrDef::stored(sym(&format!("Age{i}")), Type::Int)];
        for a in 0..*extra {
            let ty = match a % 3 {
                0 => Type::Str,
                1 => Type::Float,
                _ => Type::set(Type::Int),
            };
            attrs.push(AttrDef::stored(sym(&format!("X{i}_{a}")), ty));
        }
        // Reference attribute to the root class, if any.
        if let Some(&root) = class_ids.first() {
            attrs.push(AttrDef::stored(sym(&format!("Ref{i}")), Type::Class(root)));
        }
        let id = db
            .create_class(sym(&format!("C{i}_of_{tag}")), &parents, attrs)
            .unwrap();
        class_ids.push(id);
    }
    let mut oids = Vec::new();
    for (cix, age, refix) in &recipe.objects {
        let class = class_ids[cix.index(class_ids.len())];
        // The own Age attribute of the class (by index) may be inherited;
        // write the root class's Age0 which always exists via inheritance
        // only when the class chain includes C0. Keep it simple: write this
        // class's own Age attribute.
        let class_pos = class_ids.iter().position(|&c| c == class).unwrap();
        let mut fields = vec![(sym(&format!("Age{class_pos}")), Value::Int(*age))];
        if let (Some(ix), false) = (refix, oids.is_empty()) {
            let target: ov_oodb::Oid = oids[ix.index(oids.len())];
            // Ref{class_pos} exists only if a root class predates this one.
            if class_pos > 0 {
                // The referenced object must be a member of the root class;
                // only reference when it is.
                let root = class_ids[0];
                if db.is_member(target, root) {
                    fields.push((sym(&format!("Ref{class_pos}")), Value::Oid(target)));
                }
            }
        }
        let oid = db
            .create_object(class, Value::Tuple(ov_oodb::Tuple::from_fields(fields)))
            .unwrap();
        oids.push(oid);
    }
    for (i, &oid) in oids.iter().enumerate().take(recipe.named as usize) {
        db.name_object(sym(&format!("n{i}_of_{tag}")), oid).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// dump(load(dump(db))) == dump(db): the textual form is a fixpoint.
    #[test]
    fn dump_load_dump_is_a_fixpoint(recipe in arb_recipe(), tag in 0usize..1_000_000) {
        let db = build(&recipe, tag);
        let first = dump_database(&db);
        let mut sys = System::new();
        execute_script(&mut sys, &first)
            .unwrap_or_else(|e| panic!("dump failed to load: {e}\n{first}"));
        let reloaded = sys.database(db.name).unwrap();
        let second = dump_database(&reloaded.read());
        prop_assert_eq!(&first, &second, "dump not a fixpoint");
        // Structure preserved.
        let reloaded = reloaded.read();
        prop_assert_eq!(reloaded.schema.len(), db.schema.len());
        prop_assert_eq!(reloaded.store.len(), db.store.len());
        prop_assert_eq!(reloaded.names().len(), db.names().len());
    }
}
