//! Property tests: printing an expression and reparsing it yields the same
//! AST. This pins down operator precedence, associativity and literal
//! syntax in one stroke.

use ov_oodb::{sym, AggFunc, BinOp, Expr, SelectExpr, UnOp, Value};
use ov_query::parse_expr;
use proptest::prelude::*;

/// Scalar literals only: collection literals print as constructors
/// (`{1,2}` parses as a SetCons, not a Lit), which is correct but would
/// make naive AST equality fail.
fn arb_lit() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Lit(Value::Null)),
        any::<bool>().prop_map(|b| Expr::Lit(Value::Bool(b))),
        any::<i64>().prop_map(|i| Expr::Lit(Value::Int(i))),
        // Positive, printable floats (negative ones print as unary minus
        // and re-fold into literals — covered by a dedicated test below).
        (0.0f64..1e9).prop_map(|f| Expr::Lit(Value::Float(f))),
        "[a-zA-Z0-9 _.,!?-]{0,10}".prop_map(|s| Expr::Lit(Value::str(&s))),
    ]
}

fn arb_name() -> impl Strategy<Value = Expr> {
    // Avoid the contextual keywords that can start/continue expressions.
    "[A-Z][a-zA-Z0-9_]{0,6}".prop_map(|s| Expr::Name(sym(&s)))
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Concat),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::In),
        Just(BinOp::Union),
        Just(BinOp::Intersect),
        Just(BinOp::Except),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![arb_lit(), arb_name(), Just(Expr::SelfRef)];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            // Attribute access, with and without arguments.
            (
                inner.clone(),
                "[A-Z][a-z]{0,5}",
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(recv, name, args)| Expr::Attr {
                    recv: Box::new(recv),
                    name: sym(&name),
                    args,
                }),
            // Binary operators.
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }),
            // Unary operators (negation of literals folds in the parser, so
            // restrict Neg to non-literal operands).
            inner.clone().prop_filter_map("no-neg-literal", |e| {
                if matches!(e, Expr::Lit(Value::Int(_)) | Expr::Lit(Value::Float(_))) {
                    None
                } else {
                    Some(Expr::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(e),
                    })
                }
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            }),
            // Tuple / set / list constructors.
            prop::collection::vec(("[A-Z][a-z]{0,4}", inner.clone()), 0..3).prop_map(|fs| {
                Expr::TupleCons(fs.into_iter().map(|(n, e)| (sym(&n), e)).collect())
            }),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::SetCons),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::ListCons),
            // Conditionals.
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::If {
                cond: Box::new(c),
                then: Box::new(t),
                els: Box::new(e),
            }),
            // Aggregates.
            (
                prop_oneof![
                    Just(AggFunc::Count),
                    Just(AggFunc::Sum),
                    Just(AggFunc::Min),
                    Just(AggFunc::Max),
                    Just(AggFunc::Avg)
                ],
                inner.clone()
            )
                .prop_map(|(f, e)| Expr::Aggregate {
                    func: f,
                    arg: Box::new(e),
                }),
            // isa.
            (inner.clone(), "[A-Z][a-z]{0,5}").prop_map(|(e, c)| Expr::IsA {
                expr: Box::new(e),
                class: sym(&c),
            }),
            // Parameterized-class application.
            (
                "[A-Z][a-z]{0,5}",
                prop::collection::vec(inner.clone(), 0..2)
            )
                .prop_map(|(n, args)| Expr::Apply {
                    name: sym(&n),
                    args
                }),
            // Selects (with explicit bindings).
            (
                inner.clone(),
                prop::collection::vec(("[A-Z][a-z]{0,3}", inner.clone()), 1..3),
                prop::option::of(inner.clone()),
                any::<bool>(),
            )
                .prop_map(|(proj, bindings, filter, the)| {
                    Expr::Select(SelectExpr {
                        distinct: false,
                        the,
                        proj: Box::new(proj),
                        bindings: bindings.into_iter().map(|(v, c)| (sym(&v), c)).collect(),
                        filter: filter.map(Box::new),
                    })
                }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// print → parse is the identity on ASTs.
    #[test]
    fn print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(e, reparsed, "printed form: `{}`", printed);
    }

    /// Negative numeric literals fold back into literals.
    #[test]
    fn negative_literals_fold(i in any::<i64>()) {
        // i64::MIN negates to itself modulo wrapping; skip that edge.
        prop_assume!(i != i64::MIN);
        let printed = Expr::Lit(Value::Int(i)).to_string();
        prop_assert_eq!(parse_expr(&printed).unwrap(), Expr::Lit(Value::Int(i)));
    }

    /// Lexing never panics on arbitrary input (it may error).
    #[test]
    fn lexer_is_total(s in "\\PC{0,60}") {
        let _ = ov_query::parse_expr(&s);
    }
}
