//! Property tests: the compiled predicate engine is observationally
//! identical to the tree-walking interpreter. For random predicates over a
//! scan variable, both engines produce the same value or the *same* error
//! (`QueryError` is `PartialEq`, so error variants and messages are
//! compared exactly), charge the same number of budget steps, breach
//! budgets at the same point, and surface injected faults identically.

use std::sync::Arc;

use ov_oodb::{sym, AttrDef, BinOp, Database, Expr, Type, UnOp, Value};
use ov_query::{compile_predicate, Budget, Env, Evaluator, QueryError, Scan};
use proptest::prelude::*;

/// A small database with stored and computed attributes, so random
/// predicates exercise the slot-resolution cache on both kinds.
fn db() -> Database {
    let mut db = Database::new(sym("CompDb"));
    let person = db
        .create_class(
            sym("Person"),
            &[],
            vec![
                AttrDef::stored(sym("Name"), Type::Str),
                AttrDef::stored(sym("Age"), Type::Int),
                AttrDef::computed(
                    sym("Senior"),
                    Type::Bool,
                    Expr::bin(BinOp::Ge, Expr::self_attr("Age"), Expr::lit(Value::Int(65))),
                ),
            ],
        )
        .unwrap();
    for (n, a) in [("a", 10), ("b", 30), ("c", 70)] {
        db.create_object(
            person,
            Value::tuple([("Name", Value::str(n)), ("Age", Value::Int(a))]),
        )
        .unwrap();
    }
    db
}

/// The oids of the three Person rows.
fn rows(db: &Database) -> Vec<Value> {
    let person = db.schema.class_by_name(sym("Person")).unwrap();
    db.store.extent(person).map(Value::Oid).collect()
}

fn arb_lit() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Lit(Value::Null)),
        any::<bool>().prop_map(|b| Expr::Lit(Value::Bool(b))),
        (-100i64..100).prop_map(|i| Expr::Lit(Value::Int(i))),
        (-10.0f64..10.0).prop_map(|f| Expr::Lit(Value::Float(f))),
        "[a-c]{0,3}".prop_map(|s| Expr::Lit(Value::str(&s))),
    ]
}

/// Random predicates over scan variable `V`: mostly shapes the compiler
/// covers (literals, the variable, attribute access, operators, `if`), plus
/// a low-weight tail of uncovered shapes (set/list constructors) to check
/// the fallback never panics or diverges.
fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_lit(),
        Just(Expr::name("V")),
        Just(Expr::attr(Expr::name("V"), "Age")),
        Just(Expr::attr(Expr::name("V"), "Name")),
        Just(Expr::attr(Expr::name("V"), "Senior")),
        Just(Expr::attr(Expr::name("V"), "NoSuchAttr")),
        Just(Expr::attr(Expr::lit(Value::Int(3)), "Age")),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::Concat),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::If {
                cond: Box::new(c),
                then: Box::new(t),
                els: Box::new(e),
            }),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::SetCons),
        ]
    })
}

/// The interpreter's verdict for `e` with `V` bound to `row`, under an
/// optional budget.
fn interp(
    db: &Database,
    e: &Expr,
    row: &Value,
    budget: Option<Arc<Budget>>,
) -> Result<Value, QueryError> {
    let run = || {
        let mut env = Env::new();
        env.bind(sym("V"), row.clone());
        Evaluator::new(db).eval(e, &mut env)
    };
    match budget {
        Some(b) => ov_query::budget::with(b, run),
        None => run(),
    }
}

/// The compiled engine's verdict, or `None` when the shape is uncovered.
fn compiled(
    db: &Database,
    e: &Expr,
    row: &Value,
    budget: Option<Arc<Budget>>,
) -> Option<Result<Value, QueryError>> {
    let prog = compile_predicate(e, &[sym("V")])?;
    let run = || {
        let mut scan = Scan::new(&prog, db);
        scan.bind(0, row.clone());
        scan.run(0)
    };
    Some(match budget {
        Some(b) => ov_query::budget::with(b, run),
        None => run(),
    })
}

/// Scans `rows` through the interpreter with one shared budget — the
/// sequential scan-loop shape — stopping at the first error.
fn interp_scan_all(
    db: &Database,
    e: &Expr,
    rows: &[Value],
    budget: Arc<Budget>,
) -> (Vec<Value>, Option<QueryError>) {
    ov_query::budget::with(budget, || {
        let ev = Evaluator::new(db);
        let mut vals = Vec::new();
        for row in rows {
            let mut env = Env::new();
            env.bind(sym("V"), row.clone());
            match ev.eval(e, &mut env) {
                Ok(v) => vals.push(v),
                Err(err) => return (vals, Some(err)),
            }
        }
        (vals, None)
    })
}

/// Scans `rows` through the compiled engine in batches of `batch` rows
/// (`0` = one chunk, no prefetch), sharing one budget across the whole
/// scan. `None` when the predicate is uncovered.
fn compiled_scan_all(
    db: &Database,
    e: &Expr,
    rows: &[Value],
    batch: usize,
    budget: Arc<Budget>,
) -> Option<(Vec<Value>, Option<QueryError>)> {
    let prog = compile_predicate(e, &[sym("V")])?;
    Some(ov_query::budget::with(budget, || {
        let mut scan = Scan::new(&prog, db);
        let mut vals = Vec::new();
        let sub_len = if batch == 0 { rows.len().max(1) } else { batch };
        for sub in rows.chunks(sub_len) {
            if batch > 0 {
                scan.begin_batch(0, sub);
            }
            for (i, row) in sub.iter().enumerate() {
                scan.bind(0, row.clone());
                match scan.run_row(0, i) {
                    Ok(v) => vals.push(v),
                    Err(err) => return (vals, Some(err)),
                }
            }
        }
        (vals, None)
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Batch boundaries are invisible: empty, one-row, odd-sized, and
    /// over-sized batches all produce the same values, the same first
    /// error, and the same step counts as the interpreter's row loop.
    #[test]
    fn batch_boundaries_are_invisible(e in arb_pred(), nrows in 0usize..4) {
        let db = db();
        let all = rows(&db);
        let rows = &all[..nrows.min(all.len())];
        let bi = Arc::new(Budget::new());
        let want = interp_scan_all(&db, &e, rows, bi.clone());
        for batch in [0usize, 1, 2, 3, 5] {
            let bc = Arc::new(Budget::new());
            let Some(got) = compiled_scan_all(&db, &e, rows, batch, bc.clone()) else {
                break;
            };
            prop_assert_eq!(&got, &want, "expr: {} (batch={})", e, batch);
            prop_assert_eq!(
                bc.steps_used(),
                bi.steps_used(),
                "step divergence on {} (batch={})",
                e,
                batch
            );
        }
    }

    /// A budget breach lands on the same row, with the same error and the
    /// same step count, whether or not that row sits at a batch edge.
    #[test]
    fn breach_at_chunk_edges_is_bit_identical(e in arb_pred(), max_steps in 0u64..96) {
        let db = db();
        let rows = rows(&db);
        let bi = Arc::new(Budget::new().with_max_steps(max_steps));
        let want = interp_scan_all(&db, &e, &rows, bi.clone());
        for batch in [0usize, 1, 2, 3] {
            let bc = Arc::new(Budget::new().with_max_steps(max_steps));
            let Some(got) = compiled_scan_all(&db, &e, &rows, batch, bc.clone()) else {
                break;
            };
            prop_assert_eq!(&got, &want, "expr: {} (batch={}, max_steps={})", e, batch, max_steps);
            prop_assert_eq!(
                bc.steps_used(),
                bi.steps_used(),
                "step divergence on {} (batch={}, max_steps={})",
                e,
                batch,
                max_steps
            );
        }
    }

    /// Same value, or the same error (variant *and* payload), on every row.
    #[test]
    fn compiled_matches_interpreter(e in arb_pred()) {
        let db = db();
        for row in rows(&db) {
            let want = interp(&db, &e, &row, None);
            if let Some(got) = compiled(&db, &e, &row, None) {
                prop_assert_eq!(&got, &want, "expr: {}", e);
            }
        }
    }

    /// Under a step budget, both engines charge identical step counts and
    /// breach at exactly the same point with exactly the same error —
    /// including breaches that land mid-expression.
    #[test]
    fn budget_accounting_is_bit_identical(e in arb_pred(), max_steps in 0u64..48) {
        let db = db();
        for row in rows(&db) {
            let bi = Arc::new(Budget::new().with_max_steps(max_steps));
            let want = interp(&db, &e, &row, Some(bi.clone()));
            let bc = Arc::new(Budget::new().with_max_steps(max_steps));
            let Some(got) = compiled(&db, &e, &row, Some(bc.clone())) else {
                continue;
            };
            prop_assert_eq!(&got, &want, "expr: {} (max_steps={})", e, max_steps);
            prop_assert_eq!(
                bc.steps_used(),
                bi.steps_used(),
                "step divergence on {} (max_steps={})",
                e,
                max_steps
            );
        }
    }

    /// EXPLAIN ANALYZE actuals are engine- and batch-invariant: for one
    /// query, the tree-walking interpreter and the compiled engine at batch
    /// widths 0, 1, 3, and 1024 report identical rows-scanned,
    /// rows-matched, and budget-step actuals in the query trace (batches
    /// and resolution-cache counters are compiled-engine diagnostics and
    /// legitimately differ).
    #[test]
    fn actuals_are_engine_and_batch_invariant(
        threshold in -5i64..105,
        q_idx in 0usize..4,
    ) {
        use ov_query::{run_query_traced, EngineMode};
        let db = db();
        let queries = [
            format!("select V.Name from V in Person where V.Age >= {threshold}"),
            format!("select V from V in Person where V.Age < {threshold}"),
            format!("select V.Age from V in Person where V.Senior and V.Age > {threshold}"),
            format!("count((select V from V in Person where V.Age != {threshold}))"),
        ];
        let q = &queries[q_idx];
        // Each run gets a fresh unlimited budget so the trace's `steps`
        // actual (a bracketed budget delta) is populated and comparable.
        let mut runs = Vec::new();
        let (v, trace) = ov_query::budget::with(Arc::new(Budget::new()), || {
            ov_query::with_engine_mode(EngineMode::Interp, || run_query_traced(&db, q))
        }).unwrap();
        runs.push(("interp".to_string(), v, trace.actuals));
        for batch in [0usize, 1, 3, 1024] {
            let (v, trace) = ov_query::budget::with(Arc::new(Budget::new()), || {
                ov_query::with_engine_mode(EngineMode::Compiled, || {
                    ov_query::with_batch_rows(batch, || run_query_traced(&db, q))
                })
            }).unwrap();
            runs.push((format!("compiled b={batch}"), v, trace.actuals));
        }
        let (_, v0, a0) = runs[0].clone();
        for (label, v, a) in &runs[1..] {
            prop_assert_eq!(v, &v0, "result divergence: {} on `{}`", label, q);
            prop_assert_eq!(
                a.rows_scanned, a0.rows_scanned,
                "rows_scanned: {} on `{}`", label, q
            );
            prop_assert_eq!(
                a.rows_matched, a0.rows_matched,
                "rows_matched: {} on `{}`", label, q
            );
            prop_assert_eq!(a.steps, a0.steps, "steps: {} on `{}`", label, q);
        }
    }

    /// With no budget cap, an uncapped run still meters the same steps —
    /// the accounting itself (not just the breach behaviour) is identical.
    #[test]
    fn uncapped_step_counts_match(e in arb_pred()) {
        let db = db();
        for row in rows(&db) {
            let bi = Arc::new(Budget::new());
            let want = interp(&db, &e, &row, Some(bi.clone()));
            let bc = Arc::new(Budget::new());
            let Some(got) = compiled(&db, &e, &row, Some(bc.clone())) else {
                continue;
            };
            prop_assert_eq!(&got, &want, "expr: {}", e);
            prop_assert_eq!(bc.steps_used(), bi.steps_used(), "expr: {}", e);
        }
    }
}

/// Random predicates over two scan variables `a` and `b` — the raw
/// material for multi-binding filters and correlated sub-select filters.
fn arb_pred2(a: &'static str, b: &'static str) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_lit(),
        Just(Expr::name(a)),
        Just(Expr::attr(Expr::name(a), "Age")),
        Just(Expr::attr(Expr::name(a), "Name")),
        Just(Expr::attr(Expr::name(a), "Senior")),
        Just(Expr::name(b)),
        Just(Expr::attr(Expr::name(b), "Age")),
        Just(Expr::attr(Expr::name(b), "Name")),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Div),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            }),
        ]
    })
}

/// A predicate over `V` that embeds a sub-select over `Q in Person` with a
/// (possibly correlated) random filter. `exists` picks `Exists` vs a value
/// comparison of the inner `Select`; `the` exercises the single-row
/// cardinality error path.
fn nested_pred(exists: bool, the: bool, filter: Expr) -> Expr {
    let q = ov_oodb::SelectExpr {
        distinct: false,
        the,
        proj: Box::new(Expr::attr(Expr::name("Q"), "Age")),
        bindings: vec![(sym("Q"), Expr::name("Person"))],
        filter: Some(Box::new(filter)),
    };
    if exists {
        Expr::Exists(q)
    } else {
        Expr::bin(BinOp::Ne, Expr::Select(q), Expr::Lit(Value::Null))
    }
}

/// A top-level two-binding select over `V, W in Person` with a random
/// filter and one of three projections (outer attr, inner attr, tuple of
/// both).
fn select2(the: bool, proj_idx: usize, filter: Expr) -> Expr {
    Expr::Select(ov_oodb::SelectExpr {
        distinct: false,
        the,
        proj: Box::new(match proj_idx {
            0 => Expr::attr(Expr::name("V"), "Name"),
            1 => Expr::attr(Expr::name("W"), "Age"),
            _ => Expr::TupleCons(vec![
                (sym("A"), Expr::attr(Expr::name("V"), "Age")),
                (sym("B"), Expr::attr(Expr::name("W"), "Name")),
            ]),
        }),
        bindings: vec![
            (sym("V"), Expr::name("Person")),
            (sym("W"), Expr::name("Person")),
        ],
        filter: Some(Box::new(filter)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Nested sub-selects (correlated and not, `exists` and value-compared,
    /// `the` and plain): values, error variants, budget breach points, and
    /// step counts are identical across engines and batch widths.
    #[test]
    fn nested_selects_are_bit_identical(
        filter in arb_pred2("Q", "V"),
        exists in any::<bool>(),
        the in any::<bool>(),
        max_steps in 0u64..400,
    ) {
        let db = db();
        let rows = rows(&db);
        let e = nested_pred(exists, the, filter);
        let bi = Arc::new(Budget::new().with_max_steps(max_steps));
        let want = interp_scan_all(&db, &e, &rows, bi.clone());
        for batch in [0usize, 1, 3, 1024] {
            let bc = Arc::new(Budget::new().with_max_steps(max_steps));
            let Some(got) = ov_query::with_batch_rows(batch, || {
                compiled_scan_all(&db, &e, &rows, batch, bc.clone())
            }) else {
                return Ok(()); // uncovered tail shape
            };
            prop_assert_eq!(&got, &want, "expr: {} (batch={}, max_steps={})", e, batch, max_steps);
            prop_assert_eq!(
                bc.steps_used(),
                bi.steps_used(),
                "step divergence on {} (batch={}, max_steps={})",
                e,
                batch,
                max_steps
            );
        }
    }

    /// Top-level multi-binding selects: the compiled nested-loop produces
    /// the same value (or the same error, at the same budget breach point,
    /// with the same step count) as the interpreter, at every batch width.
    #[test]
    fn multi_binding_selects_are_bit_identical(
        filter in arb_pred2("V", "W"),
        the in any::<bool>(),
        proj_idx in 0usize..3,
        max_steps in 0u64..600,
    ) {
        let db = db();
        let e = select2(the, proj_idx, filter);
        let bi = Arc::new(Budget::new().with_max_steps(max_steps));
        let want = ov_query::budget::with(bi.clone(), || {
            Evaluator::new(&db).eval(&e, &mut Env::new())
        });
        let Some(prog) = compile_predicate(&e, &[]) else {
            return Ok(()); // uncovered tail shape in the filter
        };
        for batch in [0usize, 1, 3, 1024] {
            let bc = Arc::new(Budget::new().with_max_steps(max_steps));
            let got = ov_query::with_batch_rows(batch, || {
                ov_query::budget::with(bc.clone(), || Scan::new(&prog, &db).run(0))
            });
            prop_assert_eq!(&got, &want, "expr: {} (batch={}, max_steps={})", e, batch, max_steps);
            prop_assert_eq!(
                bc.steps_used(),
                bi.steps_used(),
                "step divergence on {} (batch={}, max_steps={})",
                e,
                batch,
                max_steps
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The planner's strategy choice (index pushdown vs sequential scan vs
    /// reordered join) never changes query results: planner-on, planner-off,
    /// and the forced interpreter agree on every error-free workload.
    #[test]
    fn planner_choice_never_changes_results(t in 0i64..100, pick in 0usize..4) {
        use ov_query::{run_query, with_planner, EngineMode};
        let mut db = Database::new(sym("PlanDb"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        for i in 0..48 {
            db.create_object(
                person,
                Value::tuple([
                    ("Name", Value::str(&format!("p{i}"))),
                    ("Age", Value::Int(i % 24)),
                ]),
            )
            .unwrap();
        }
        db.create_index(person, sym("Age")).unwrap();
        let queries = [
            format!("select P from P in Person where P.Age = {t}"),
            format!("select P.Name from P in Person where P.Age >= {t}"),
            format!(
                "select P.Name from P in Person, D in Person \
                 where P.Age = D.Age and P.Age >= {t}"
            ),
            format!(
                "select P.Name from P in Person \
                 where exists(select Q from Q in Person where Q.Age > P.Age + {t})"
            ),
        ];
        let q = &queries[pick];
        // Warm the statistics plane so planning runs from measured
        // cardinality/NDV, then compare every strategy's verdict.
        ov_oodb::metrics::set_profiling(true);
        let _ = run_query(&db, "select P.Name from P in Person where P.Age >= 0");
        ov_oodb::metrics::set_profiling(false);
        let want = ov_query::with_engine_mode(EngineMode::Interp, || run_query(&db, q));
        let on = with_planner(true, || run_query(&db, q));
        let off = with_planner(false, || run_query(&db, q));
        prop_assert_eq!(&on, &want, "planner-on divergence on `{}`", q);
        prop_assert_eq!(&off, &want, "planner-off divergence on `{}`", q);
    }
}

/// An injected fault mid-scan surfaces identically through both engines
/// and at every batch size (a fault firing mid-batch must not change the
/// error, and prefetching must not change what a fault observes): the
/// parallel scan's per-chunk failpoint fires before any predicate runs, so
/// the resulting error is engine- and batch-independent — and with faults
/// cleared, everyone agrees on the result.
#[test]
fn injected_faults_surface_identically() {
    use ov_query::ParallelConfig;

    let mut db = Database::new(sym("FaultDb"));
    let person = db
        .create_class(
            sym("Person"),
            &[],
            vec![AttrDef::stored(sym("Age"), Type::Int)],
        )
        .unwrap();
    for i in 0..64 {
        db.create_object(person, Value::tuple([("Age", Value::Int(i))]))
            .unwrap();
    }
    let cfg = ParallelConfig {
        threads: 4,
        threshold: 1,
    };
    // The second query carries a nested sub-select in its filter, so the
    // fault also exercises the compiled sub-select path.
    for q in [
        "select P from P in Person where P.Age >= 21",
        "select P from P in Person \
         where P.Age >= 21 and exists(select Q from Q in Person where Q.Age > P.Age)",
    ] {
        injected_faults_surface_identically_for(&db, &cfg, q);
    }
}

fn injected_faults_surface_identically_for(db: &Database, cfg: &ov_query::ParallelConfig, q: &str) {
    use ov_oodb::faults::{arm, clear, FaultAction, FaultSchedule};
    use ov_query::{run_query_parallel, EngineMode};

    // Thread-scoped overrides: this test no longer mutates the process
    // default, so it cannot leak engine mode into concurrently running
    // tests.
    let run_with = |mode: EngineMode, batch: usize| {
        ov_query::with_engine_mode(mode, || {
            ov_query::with_batch_rows(batch, || run_query_parallel(db, cfg, q))
        })
    };

    // Batch 3 leaves odd-sized tails in every 16-row chunk; 1024 makes one
    // whole-chunk batch; 0 disables batching outright.
    for batch in [0usize, 1, 3, 1024] {
        // Fault on the 2nd chunk: both engines die with the same typed
        // error, at every batch size.
        arm(
            "query.scan_chunk",
            FaultSchedule::Nth(2),
            FaultAction::Error,
        );
        let compiled_err = run_with(EngineMode::Compiled, batch);
        clear();
        arm(
            "query.scan_chunk",
            FaultSchedule::Nth(2),
            FaultAction::Error,
        );
        let interp_err = run_with(EngineMode::Interp, batch);
        clear();
        assert!(compiled_err.is_err(), "fault must surface (batch={batch})");
        assert_eq!(compiled_err, interp_err, "batch={batch}");

        // Faults cleared: both engines agree on the value.
        let compiled_ok = run_with(EngineMode::Compiled, batch);
        let interp_ok = run_with(EngineMode::Interp, batch);
        assert!(compiled_ok.is_ok(), "batch={batch}");
        assert_eq!(compiled_ok, interp_ok, "batch={batch}");
    }
}
