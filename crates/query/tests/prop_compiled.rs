//! Property tests: the compiled predicate engine is observationally
//! identical to the tree-walking interpreter. For random predicates over a
//! scan variable, both engines produce the same value or the *same* error
//! (`QueryError` is `PartialEq`, so error variants and messages are
//! compared exactly), charge the same number of budget steps, breach
//! budgets at the same point, and surface injected faults identically.

use std::sync::Arc;

use ov_oodb::{sym, AttrDef, BinOp, Database, Expr, Type, UnOp, Value};
use ov_query::{compile_predicate, Budget, Env, Evaluator, QueryError, Scan};
use proptest::prelude::*;

/// A small database with stored and computed attributes, so random
/// predicates exercise the slot-resolution cache on both kinds.
fn db() -> Database {
    let mut db = Database::new(sym("CompDb"));
    let person = db
        .create_class(
            sym("Person"),
            &[],
            vec![
                AttrDef::stored(sym("Name"), Type::Str),
                AttrDef::stored(sym("Age"), Type::Int),
                AttrDef::computed(
                    sym("Senior"),
                    Type::Bool,
                    Expr::bin(BinOp::Ge, Expr::self_attr("Age"), Expr::lit(Value::Int(65))),
                ),
            ],
        )
        .unwrap();
    for (n, a) in [("a", 10), ("b", 30), ("c", 70)] {
        db.create_object(
            person,
            Value::tuple([("Name", Value::str(n)), ("Age", Value::Int(a))]),
        )
        .unwrap();
    }
    db
}

/// The oids of the three Person rows.
fn rows(db: &Database) -> Vec<Value> {
    let person = db.schema.class_by_name(sym("Person")).unwrap();
    db.store.extent(person).map(Value::Oid).collect()
}

fn arb_lit() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Lit(Value::Null)),
        any::<bool>().prop_map(|b| Expr::Lit(Value::Bool(b))),
        (-100i64..100).prop_map(|i| Expr::Lit(Value::Int(i))),
        (-10.0f64..10.0).prop_map(|f| Expr::Lit(Value::Float(f))),
        "[a-c]{0,3}".prop_map(|s| Expr::Lit(Value::str(&s))),
    ]
}

/// Random predicates over scan variable `V`: mostly shapes the compiler
/// covers (literals, the variable, attribute access, operators, `if`), plus
/// a low-weight tail of uncovered shapes (set/list constructors) to check
/// the fallback never panics or diverges.
fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_lit(),
        Just(Expr::name("V")),
        Just(Expr::attr(Expr::name("V"), "Age")),
        Just(Expr::attr(Expr::name("V"), "Name")),
        Just(Expr::attr(Expr::name("V"), "Senior")),
        Just(Expr::attr(Expr::name("V"), "NoSuchAttr")),
        Just(Expr::attr(Expr::lit(Value::Int(3)), "Age")),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::Concat),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::If {
                cond: Box::new(c),
                then: Box::new(t),
                els: Box::new(e),
            }),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::SetCons),
        ]
    })
}

/// The interpreter's verdict for `e` with `V` bound to `row`, under an
/// optional budget.
fn interp(
    db: &Database,
    e: &Expr,
    row: &Value,
    budget: Option<Arc<Budget>>,
) -> Result<Value, QueryError> {
    let run = || {
        let mut env = Env::new();
        env.bind(sym("V"), row.clone());
        Evaluator::new(db).eval(e, &mut env)
    };
    match budget {
        Some(b) => ov_query::budget::with(b, run),
        None => run(),
    }
}

/// The compiled engine's verdict, or `None` when the shape is uncovered.
fn compiled(
    db: &Database,
    e: &Expr,
    row: &Value,
    budget: Option<Arc<Budget>>,
) -> Option<Result<Value, QueryError>> {
    let prog = compile_predicate(e, &[sym("V")])?;
    let run = || {
        let mut scan = Scan::new(&prog, db);
        scan.bind(0, row.clone());
        scan.run(0)
    };
    Some(match budget {
        Some(b) => ov_query::budget::with(b, run),
        None => run(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Same value, or the same error (variant *and* payload), on every row.
    #[test]
    fn compiled_matches_interpreter(e in arb_pred()) {
        let db = db();
        for row in rows(&db) {
            let want = interp(&db, &e, &row, None);
            if let Some(got) = compiled(&db, &e, &row, None) {
                prop_assert_eq!(&got, &want, "expr: {}", e);
            }
        }
    }

    /// Under a step budget, both engines charge identical step counts and
    /// breach at exactly the same point with exactly the same error —
    /// including breaches that land mid-expression.
    #[test]
    fn budget_accounting_is_bit_identical(e in arb_pred(), max_steps in 0u64..48) {
        let db = db();
        for row in rows(&db) {
            let bi = Arc::new(Budget::new().with_max_steps(max_steps));
            let want = interp(&db, &e, &row, Some(bi.clone()));
            let bc = Arc::new(Budget::new().with_max_steps(max_steps));
            let Some(got) = compiled(&db, &e, &row, Some(bc.clone())) else {
                continue;
            };
            prop_assert_eq!(&got, &want, "expr: {} (max_steps={})", e, max_steps);
            prop_assert_eq!(
                bc.steps_used(),
                bi.steps_used(),
                "step divergence on {} (max_steps={})",
                e,
                max_steps
            );
        }
    }

    /// With no budget cap, an uncapped run still meters the same steps —
    /// the accounting itself (not just the breach behaviour) is identical.
    #[test]
    fn uncapped_step_counts_match(e in arb_pred()) {
        let db = db();
        for row in rows(&db) {
            let bi = Arc::new(Budget::new());
            let want = interp(&db, &e, &row, Some(bi.clone()));
            let bc = Arc::new(Budget::new());
            let Some(got) = compiled(&db, &e, &row, Some(bc.clone())) else {
                continue;
            };
            prop_assert_eq!(&got, &want, "expr: {}", e);
            prop_assert_eq!(bc.steps_used(), bi.steps_used(), "expr: {}", e);
        }
    }
}

/// An injected fault mid-scan surfaces identically through both engines:
/// the parallel scan's per-chunk failpoint fires before any predicate runs,
/// so the resulting error is engine-independent — and with faults cleared,
/// both engines agree on the result.
#[test]
fn injected_faults_surface_identically() {
    use ov_oodb::faults::{arm, clear, FaultAction, FaultSchedule};
    use ov_query::{run_query_parallel, EngineMode, ParallelConfig};

    let mut db = Database::new(sym("FaultDb"));
    let person = db
        .create_class(
            sym("Person"),
            &[],
            vec![AttrDef::stored(sym("Age"), Type::Int)],
        )
        .unwrap();
    for i in 0..64 {
        db.create_object(person, Value::tuple([("Age", Value::Int(i))]))
            .unwrap();
    }
    let cfg = ParallelConfig {
        threads: 4,
        threshold: 1,
    };
    let q = "select P from P in Person where P.Age >= 21";

    let run_with = |mode: EngineMode| {
        ov_query::set_engine_mode(mode);
        let r = run_query_parallel(&db, &cfg, q);
        ov_query::set_engine_mode(EngineMode::Auto);
        r
    };

    // Fault on the 2nd chunk: both engines die with the same typed error.
    arm(
        "query.scan_chunk",
        FaultSchedule::Nth(2),
        FaultAction::Error,
    );
    let compiled_err = run_with(EngineMode::Compiled);
    clear();
    arm(
        "query.scan_chunk",
        FaultSchedule::Nth(2),
        FaultAction::Error,
    );
    let interp_err = run_with(EngineMode::Interp);
    clear();
    assert!(compiled_err.is_err(), "fault must surface");
    assert_eq!(compiled_err, interp_err);

    // Faults cleared: both engines agree on the value.
    let compiled_ok = run_with(EngineMode::Compiled);
    let interp_ok = run_with(EngineMode::Interp);
    assert!(compiled_ok.is_ok());
    assert_eq!(compiled_ok, interp_ok);
}
