//! The object store.
//!
//! Implements the paper's **unique root rule**: "An object is real in only
//! one class" (§4.2). The store keeps, per class, the extent of objects
//! *real* in it; membership in superclasses (and, later, in virtual classes)
//! is always derived, never stored. The paper motivates this: "under this
//! rule, the structure of an object is fixed: It has a fixed set of
//! attributes and it can be stored uniformly along with similar objects."
//!
//! The store is **versioned**: every mutation bumps a counter. The view
//! layer keys its population caches on this version, which is how
//! "materialized views … acquire a new dimension" (§6) is handled here.
//!
//! Concurrency: the store has no interior mutability — every read accessor
//! takes `&self` and every mutation takes `&mut self`, so `Store` is
//! `Send + Sync` and any number of threads may read one concurrently.
//! Writers are serialized by the `RwLock` in [`crate::catalog::DbHandle`].

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::durable::DurableCore;
use crate::error::{OodbError, Result};
use crate::ids::{ClassId, Oid};
use crate::index::IndexSet;
use crate::value::Tuple;
use crate::wal::WalRecord;

/// Process-global oid allocator. Oids are unique **across databases**, which
/// is what lets a view import classes from several databases (§3) and still
/// dereference any oid unambiguously.
static NEXT_OID: AtomicU64 = AtomicU64::new(0);

/// Allocates a fresh globally-unique (non-imaginary) oid.
pub fn fresh_oid() -> Oid {
    let n = NEXT_OID.fetch_add(1, Ordering::Relaxed);
    assert!(
        n < crate::ids::IMAGINARY_OID_BASE,
        "base oid space exhausted"
    );
    Oid(n)
}

/// Raises the process-global oid allocator so it never re-issues an oid at
/// or below `oid`. Recovery calls this with every oid it replays: oids are
/// unique across databases *and across restarts*.
pub fn ensure_oid_floor(oid: Oid) {
    if oid.0 >= crate::ids::IMAGINARY_OID_BASE {
        return; // imaginary oids have their own allocator
    }
    NEXT_OID.fetch_max(oid.0 + 1, Ordering::Relaxed);
}

/// An object as stored: its oid, the single class it is *real* in, and its
/// tuple of stored attribute values.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredObject {
    /// The object's identifier.
    pub oid: Oid,
    /// The single class the object is *real* in.
    pub class: ClassId,
    /// The stored attribute values.
    pub value: Tuple,
}

/// A versioned object store with per-class extents.
#[derive(Clone, Debug, Default)]
pub struct Store {
    objects: HashMap<Oid, StoredObject>,
    extents: HashMap<ClassId, BTreeSet<Oid>>,
    version: u64,
    /// Bounded change journal: `(version, oid)` per mutation, newest at the
    /// back. Lets views maintain cached populations *incrementally* instead
    /// of recomputing (the "new dimension" of materialized views the paper
    /// flags in §6).
    journal: VecDeque<(u64, Oid)>,
    /// Every change at or below this version has been dropped from the
    /// journal; requests older than it must fall back to a full recompute.
    journal_floor: u64,
    journal_cap: usize,
    /// Secondary attribute indexes, maintained on every mutation.
    indexes: IndexSet,
    /// When attached, every mutation is appended to the WAL *before* it is
    /// applied in memory (redo logging): a failed append leaves the store
    /// untouched, so a crash recovers exactly a prefix of committed work.
    durable: Option<Arc<DurableCore>>,
}

/// Default number of retained journal entries.
pub const DEFAULT_JOURNAL_CAP: usize = 4096;

impl Store {
    /// An empty store with the default journal retention.
    pub fn new() -> Store {
        Store {
            journal_cap: DEFAULT_JOURNAL_CAP,
            ..Store::default()
        }
    }

    /// Sets the journal retention (entries), for tests and tuning.
    pub fn set_journal_cap(&mut self, cap: usize) {
        self.journal_cap = cap;
        self.trim_journal();
    }

    /// Attaches a durability core: from now on every mutation is logged to
    /// the WAL before it is applied. Called by `Database::open` *after*
    /// recovery replay, so replay itself is never re-logged.
    pub fn attach_durable(&mut self, core: Arc<DurableCore>) {
        self.durable = Some(core);
    }

    /// The attached durability core, if any.
    pub fn durable(&self) -> Option<&Arc<DurableCore>> {
        self.durable.as_ref()
    }

    /// Appends `rec` to the WAL when a durability core is attached. The
    /// strict redo-logging path: on `Err` the caller must not apply the
    /// mutation in memory.
    fn log_wal(&self, rec: &WalRecord) -> Result<()> {
        if let Some(core) = &self.durable {
            core.log(rec)?;
        }
        Ok(())
    }

    fn record(&mut self, oid: Oid) {
        self.version += 1;
        self.journal.push_back((self.version, oid));
        self.trim_journal();
        crate::metric_counter!("oodb.store.mutations").inc();
    }

    fn trim_journal(&mut self) {
        while self.journal.len() > self.journal_cap {
            let (v, _) = self.journal.pop_front().expect("len checked");
            self.journal_floor = v;
        }
    }

    /// Creates (and backfills) a secondary index on `(class, attr)`.
    /// Idempotent. Indexes cover the *shallow* extent (objects real in
    /// `class`); deep lookups combine per-class indexes.
    pub fn create_index(&mut self, class: ClassId, attr: crate::Symbol) {
        if self.indexes.contains(class, attr) {
            return;
        }
        // Index definitions are logged so recovery rebuilds them; a failed
        // append degrades (the data is unaffected, only lookup speed) and
        // the next checkpoint persists the definition anyway.
        if self
            .log_wal(&WalRecord::CreateIndex { class, attr })
            .is_err()
        {
            crate::metric_counter!("oodb.index.log_failures").inc();
        }
        self.indexes.create(class, attr);
        let members: Vec<Oid> = self.extent(class).collect();
        for oid in members {
            let v = self.objects[&oid]
                .value
                .get(attr)
                .cloned()
                .unwrap_or(crate::Value::Null);
            self.indexes.create(class, attr).insert(v, oid);
        }
    }

    /// Drops a secondary index; returns whether it existed.
    pub fn drop_index(&mut self, class: ClassId, attr: crate::Symbol) -> bool {
        if self.indexes.contains(class, attr)
            && self.log_wal(&WalRecord::DropIndex { class, attr }).is_err()
        {
            crate::metric_counter!("oodb.index.log_failures").inc();
        }
        self.indexes.drop_index(class, attr)
    }

    /// The `(class, attr)` pairs currently indexed, for checkpointing.
    pub fn index_defs(&self) -> Vec<(ClassId, crate::Symbol)> {
        self.indexes.defs()
    }

    /// Indexed lookup over the shallow extent of `class`: the oids whose
    /// stored `attr` equals `value`, or `None` if no index exists.
    pub fn index_lookup(
        &self,
        class: ClassId,
        attr: crate::Symbol,
        value: &crate::Value,
    ) -> Option<Vec<Oid>> {
        let mut span = crate::span!("store.index_lookup", attr = attr);
        crate::metric_counter!("oodb.index.lookups").inc();
        // Injected fault = forced index miss: callers already treat `None`
        // as "no index, scan instead", so degradation is exercised for free.
        if crate::faults::hit("store.index_lookup").is_err() {
            span.field("outcome", "injected_miss");
            return None;
        }
        let hits: Vec<Oid> = self.indexes.get(class, attr)?.get(value).collect();
        crate::metric_counter!("oodb.index.hits").inc();
        span.field("hits", hits.len());
        Some(hits)
    }

    /// Is `(class, attr)` indexed?
    pub fn has_index(&self, class: ClassId, attr: crate::Symbol) -> bool {
        self.indexes.contains(class, attr)
    }

    /// The oids changed (created, updated, or removed) after `version`, or
    /// `None` if the journal no longer reaches back that far. An empty list
    /// means the store is unchanged since `version`.
    pub fn changes_since(&self, version: u64) -> Option<Vec<Oid>> {
        let mut span = crate::span!("store.changes_since", since = version);
        // Injected fault = forced journal gap: `None` is the documented
        // "recompute from scratch" signal, so delta-serving faults drive the
        // same recovery path as genuine journal overflow.
        if crate::faults::hit("store.changes_since").is_err() {
            crate::metric_counter!("oodb.journal.gaps").inc();
            span.field("outcome", "injected_gap");
            return None;
        }
        if version == self.version {
            crate::metric_counter!("oodb.journal.delta_served").inc();
            span.field("outcome", "unchanged");
            return Some(Vec::new());
        }
        if version < self.journal_floor {
            crate::metric_counter!("oodb.journal.gaps").inc();
            span.field("outcome", "gap");
            return None;
        }
        crate::metric_counter!("oodb.journal.delta_served").inc();
        span.field("outcome", "delta");
        let mut out: Vec<Oid> = self
            .journal
            .iter()
            .filter(|&&(v, _)| v > version)
            .map(|&(_, o)| o)
            .collect();
        out.sort();
        out.dedup();
        Some(out)
    }

    /// The store's mutation counter. Any insert/update/delete increments it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Allocates a fresh (globally-unique) oid and inserts an object real in
    /// `class`.
    ///
    /// Infallible only on non-durable stores. With a durability core
    /// attached a WAL append can fail; use [`Store::try_insert`] there —
    /// this method panics if the append does fail.
    pub fn insert(&mut self, class: ClassId, value: Tuple) -> Oid {
        self.try_insert(class, value)
            .expect("WAL append failed; durable stores must use try_insert")
    }

    /// Like [`Store::insert`] but surfaces WAL append failures. On `Err`
    /// the store is unchanged (the burned oid is never visible — oids are
    /// not reused anyway).
    pub fn try_insert(&mut self, class: ClassId, value: Tuple) -> Result<Oid> {
        let _span = crate::span!("store.insert");
        let oid = fresh_oid();
        if self.durable.is_some() {
            self.log_wal(&WalRecord::Insert {
                oid,
                class,
                value: value.clone(),
            })?;
        }
        self.objects.insert(oid, StoredObject { oid, class, value });
        self.extents.entry(class).or_default().insert(oid);
        self.indexes
            .on_insert(class, oid, &self.objects[&oid].value);
        self.record(oid);
        Ok(oid)
    }

    /// Replays an insert with its original oid (crash recovery only — no
    /// WAL logging; the record being replayed *is* the log entry).
    pub fn insert_with_oid(&mut self, oid: Oid, class: ClassId, value: Tuple) {
        ensure_oid_floor(oid);
        self.objects.insert(oid, StoredObject { oid, class, value });
        self.extents.entry(class).or_default().insert(oid);
        self.indexes
            .on_insert(class, oid, &self.objects[&oid].value);
        self.record(oid);
    }

    /// Bulk-loads the store from a checkpoint image: objects and extents
    /// are seated wholesale, the version counter jumps to the checkpoint
    /// version, and the journal starts empty with its floor at that
    /// version (so `changes_since` older than the checkpoint reports a gap
    /// instead of a silently empty delta). Indexes are *not* built here —
    /// the caller rebuilds them from the persisted definitions.
    pub fn restore(&mut self, objects: Vec<StoredObject>, version: u64) {
        self.objects.clear();
        self.extents.clear();
        for obj in objects {
            ensure_oid_floor(obj.oid);
            self.extents.entry(obj.class).or_default().insert(obj.oid);
            self.objects.insert(obj.oid, obj);
        }
        self.version = version;
        self.journal.clear();
        self.journal_floor = version;
    }

    /// Finishes recovery: drops the journal entries produced by replay and
    /// re-seats the floor at the recovered version. Incremental callers
    /// holding pre-crash versions get `None` (full recompute), never an
    /// empty delta.
    pub fn seal_recovery(&mut self) {
        self.journal.clear();
        self.journal_floor = self.version;
    }

    /// The object with oid `oid`, if present.
    pub fn get(&self, oid: Oid) -> Option<&StoredObject> {
        self.objects.get(&oid)
    }

    /// Like [`Store::get`] but returns an error.
    pub fn require(&self, oid: Oid) -> Result<&StoredObject> {
        self.get(oid).ok_or(OodbError::UnknownObject(oid))
    }

    /// Replaces the stored value of `oid`.
    pub fn update(&mut self, oid: Oid, value: Tuple) -> Result<()> {
        let _span = crate::span!("store.update", oid = oid.0);
        crate::failpoint!("store.update");
        if !self.objects.contains_key(&oid) {
            return Err(OodbError::UnknownObject(oid));
        }
        if self.durable.is_some() {
            self.log_wal(&WalRecord::Update {
                oid,
                value: value.clone(),
            })?;
        }
        let obj = self
            .objects
            .get_mut(&oid)
            .ok_or(OodbError::UnknownObject(oid))?;
        let class = obj.class;
        let old = std::mem::replace(&mut obj.value, value);
        let new = obj.value.clone();
        self.indexes.on_remove(class, oid, &old);
        self.indexes.on_insert(class, oid, &new);
        self.record(oid);
        Ok(())
    }

    /// Sets one stored field of `oid`.
    pub fn set_field(&mut self, oid: Oid, name: crate::Symbol, value: crate::Value) -> Result<()> {
        let _span = crate::span!("store.set_field", oid = oid.0, attr = name);
        crate::failpoint!("store.set_field");
        if !self.objects.contains_key(&oid) {
            return Err(OodbError::UnknownObject(oid));
        }
        if self.durable.is_some() {
            self.log_wal(&WalRecord::SetField {
                oid,
                name,
                value: value.clone(),
            })?;
        }
        let obj = self
            .objects
            .get_mut(&oid)
            .ok_or(OodbError::UnknownObject(oid))?;
        let class = obj.class;
        let old = obj
            .value
            .set(name, value.clone())
            .unwrap_or(crate::Value::Null);
        self.indexes.on_set_field(class, oid, name, &old, &value);
        self.record(oid);
        Ok(())
    }

    /// Removes `oid`, returning the object.
    pub fn remove(&mut self, oid: Oid) -> Result<StoredObject> {
        let _span = crate::span!("store.remove", oid = oid.0);
        crate::failpoint!("store.remove");
        if !self.objects.contains_key(&oid) {
            return Err(OodbError::UnknownObject(oid));
        }
        if self.durable.is_some() {
            self.log_wal(&WalRecord::Remove { oid })?;
        }
        let obj = self
            .objects
            .remove(&oid)
            .ok_or(OodbError::UnknownObject(oid))?;
        if let Some(ext) = self.extents.get_mut(&obj.class) {
            ext.remove(&oid);
        }
        self.indexes.on_remove(obj.class, oid, &obj.value);
        self.record(oid);
        Ok(obj)
    }

    /// The *shallow* extent of `class`: oids real in exactly that class, in
    /// oid order.
    pub fn extent(&self, class: ClassId) -> impl Iterator<Item = Oid> + '_ {
        self.extents
            .get(&class)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Number of objects real in `class`.
    pub fn extent_len(&self, class: ClassId) -> usize {
        self.extents.get(&class).map_or(0, |s| s.len())
    }

    /// Iterates all objects (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &StoredObject> {
        self.objects.values()
    }

    /// All oids in ascending order (deterministic iteration for dumps).
    pub fn sorted_oids(&self) -> Vec<Oid> {
        let mut v: Vec<Oid> = self.objects.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;
    use crate::value::Value;

    /// The read path is lock-free shared state: a `&Store` can be handed to
    /// any number of threads (all mutation goes through `&mut self`).
    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Store>();
        assert_send_sync::<StoredObject>();
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut st = Store::new();
        let c = ClassId(0);
        let oid = st.insert(c, Tuple::from_fields([("Name", Value::str("Maggy"))]));
        let obj = st.get(oid).unwrap();
        assert_eq!(obj.class, c);
        assert_eq!(obj.value.get(sym("Name")), Some(&Value::str("Maggy")));
    }

    #[test]
    fn extents_track_real_class_only() {
        let mut st = Store::new();
        let a = ClassId(0);
        let b = ClassId(1);
        let o1 = st.insert(a, Tuple::new());
        let o2 = st.insert(b, Tuple::new());
        assert_eq!(st.extent(a).collect::<Vec<_>>(), vec![o1]);
        assert_eq!(st.extent(b).collect::<Vec<_>>(), vec![o2]);
        assert_eq!(st.extent_len(ClassId(9)), 0);
    }

    #[test]
    fn every_mutation_bumps_version() {
        let mut st = Store::new();
        let v0 = st.version();
        let oid = st.insert(ClassId(0), Tuple::new());
        let v1 = st.version();
        assert!(v1 > v0);
        st.set_field(oid, sym("X"), Value::Int(1)).unwrap();
        let v2 = st.version();
        assert!(v2 > v1);
        st.remove(oid).unwrap();
        assert!(st.version() > v2);
    }

    #[test]
    fn remove_clears_extent() {
        let mut st = Store::new();
        let oid = st.insert(ClassId(0), Tuple::new());
        st.remove(oid).unwrap();
        assert_eq!(st.extent(ClassId(0)).count(), 0);
        assert!(st.get(oid).is_none());
        assert!(matches!(st.remove(oid), Err(OodbError::UnknownObject(_))));
    }

    #[test]
    fn journal_reports_changes_since_version() {
        let mut st = Store::new();
        let v0 = st.version();
        let a = st.insert(ClassId(0), Tuple::new());
        let b = st.insert(ClassId(0), Tuple::new());
        let v2 = st.version();
        st.set_field(b, sym("X"), Value::Int(1)).unwrap();
        // Since v0: both objects (b deduplicated).
        let mut since0 = st.changes_since(v0).unwrap();
        since0.sort();
        assert_eq!(since0, {
            let mut v = vec![a, b];
            v.sort();
            v
        });
        // Since v2: only b.
        assert_eq!(st.changes_since(v2).unwrap(), vec![b]);
        // Up to date: empty.
        assert_eq!(st.changes_since(st.version()).unwrap(), Vec::<Oid>::new());
    }

    #[test]
    fn journal_gap_forces_recompute_signal() {
        let mut st = Store::new();
        st.set_journal_cap(2);
        let v0 = st.version();
        for _ in 0..5 {
            st.insert(ClassId(0), Tuple::new());
        }
        // v0 predates the retained window.
        assert_eq!(st.changes_since(v0), None);
        // But a recent version is still servable.
        let v_recent = st.version() - 1;
        assert_eq!(st.changes_since(v_recent).unwrap().len(), 1);
    }

    #[test]
    fn removed_objects_appear_in_the_journal() {
        let mut st = Store::new();
        let a = st.insert(ClassId(0), Tuple::new());
        let v = st.version();
        st.remove(a).unwrap();
        assert_eq!(st.changes_since(v).unwrap(), vec![a]);
    }

    #[test]
    fn oids_are_never_reused() {
        let mut st = Store::new();
        let o1 = st.insert(ClassId(0), Tuple::new());
        st.remove(o1).unwrap();
        let o2 = st.insert(ClassId(0), Tuple::new());
        assert_ne!(o1, o2);
    }
}
