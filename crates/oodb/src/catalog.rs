//! The system catalog: many named databases in one system.
//!
//! "In general, there can be many databases in a system. In such systems,
//! one database can use data from other databases via *import* statements"
//! (§3). The [`System`] is what a view binds against: it resolves database
//! names and hands out shared, lock-protected handles.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::database::Database;
use crate::error::{OodbError, Result};
use crate::ids::DbId;
use crate::symbol::Symbol;

/// A shared handle to a database.
pub type DbHandle = Arc<RwLock<Database>>;

/// A catalog of named databases.
#[derive(Clone, Default)]
pub struct System {
    databases: Vec<DbHandle>,
    by_name: HashMap<Symbol, DbId>,
}

impl System {
    /// An empty catalog.
    pub fn new() -> System {
        System::default()
    }

    /// Registers a database under its own name.
    pub fn add_database(&mut self, db: Database) -> Result<DbId> {
        let name = db.name;
        if self.by_name.contains_key(&name) {
            return Err(OodbError::DuplicateDatabase(name));
        }
        // Unreachable expect: 2^32 databases would exhaust memory first.
        let id = DbId(u32::try_from(self.databases.len()).expect("catalog overflow"));
        self.databases.push(Arc::new(RwLock::new(db)));
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Creates and registers an empty database.
    pub fn create_database(&mut self, name: Symbol) -> Result<DbHandle> {
        let id = self.add_database(Database::new(name))?;
        Ok(self.databases[id.0 as usize].clone())
    }

    /// The handle for database `name`.
    pub fn database(&self, name: Symbol) -> Result<DbHandle> {
        let id = self
            .by_name
            .get(&name)
            .copied()
            .ok_or(OodbError::UnknownDatabase(name))?;
        Ok(self.databases[id.0 as usize].clone())
    }

    /// The handle for database id `id`.
    pub fn database_by_id(&self, id: DbId) -> DbHandle {
        self.databases[id.0 as usize].clone()
    }

    /// All database names, sorted.
    pub fn names(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.by_name.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.databases.len()
    }

    /// Is the catalog empty?
    pub fn is_empty(&self) -> bool {
        self.databases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn register_and_resolve() {
        let mut sys = System::new();
        sys.add_database(Database::new(sym("Chrysler"))).unwrap();
        sys.add_database(Database::new(sym("Ford"))).unwrap();
        assert_eq!(sys.len(), 2);
        assert_eq!(sys.database(sym("Ford")).unwrap().read().name, sym("Ford"));
        assert!(matches!(
            sys.database(sym("GM")),
            Err(OodbError::UnknownDatabase(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut sys = System::new();
        sys.add_database(Database::new(sym("Navy"))).unwrap();
        assert!(matches!(
            sys.add_database(Database::new(sym("Navy"))),
            Err(OodbError::DuplicateDatabase(_))
        ));
    }

    #[test]
    fn handles_share_mutations() {
        let mut sys = System::new();
        let h1 = sys.create_database(sym("D")).unwrap();
        let h2 = sys.database(sym("D")).unwrap();
        let c = h1.write().create_class(sym("C"), &[], vec![]).unwrap();
        assert_eq!(h2.read().schema.class(c).name, sym("C"));
    }

    #[test]
    fn names_are_sorted() {
        let mut sys = System::new();
        sys.create_database(sym("Zeta")).unwrap();
        sys.create_database(sym("Alpha")).unwrap();
        let names: Vec<&str> = sys.names().iter().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["Alpha", "Zeta"]);
    }
}
