//! Class schemas.
//!
//! A schema is "a hierarchy of classes" (§2): each class has a name, a set of
//! direct superclasses (multiple inheritance is allowed), and a set of
//! attribute definitions. Following the paper's central move, **attributes
//! and methods are one notion**: an [`AttrDef`] is either *stored* (a field
//! of the object's tuple value) or *computed* (a body expression evaluated
//! with `self` bound, possibly taking arguments).
//!
//! Redefinition ("overloading", §2) is allowed and checked: a class may
//! redefine an inherited attribute — even switching it between stored and
//! computed, as in the paper's `Employee`/`Manager` `Address` example — as
//! long as the redefined type is a subtype of every inherited type
//! (covariant redefinition).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::error::{OodbError, Result};
use crate::expr::Expr;
use crate::ids::ClassId;
use crate::symbol::Symbol;
use crate::types::{ClassGraph, Type};

/// The signature of an attribute: name, optional parameters, result type.
#[derive(Clone, PartialEq, Debug)]
pub struct AttrSig {
    /// The attribute's name.
    pub name: Symbol,
    /// Parameters beyond the receiver ("zero or more arguments (besides the
    /// receiver)", §2). Stored attributes always have none.
    pub params: Vec<(Symbol, Type)>,
    /// The result type.
    pub ty: Type,
}

/// How an attribute obtains its value.
#[derive(Clone, PartialEq, Debug)]
pub enum AttrBody {
    /// Stored in the object's tuple value.
    Stored,
    /// Computed by evaluating the body with `self` (and parameters) bound.
    Computed(Expr),
    /// Signature only: the value is resolved dynamically on the object's
    /// own class. Produced by the view layer's *upward inheritance* (§4.3),
    /// where a virtual class acquires an attribute common to all its
    /// contributors; never present in base schemas.
    Abstract,
}

/// An attribute definition — the paper's unified attribute/method notion.
#[derive(Clone, PartialEq, Debug)]
pub struct AttrDef {
    /// Name, parameters, result type.
    pub sig: AttrSig,
    /// Stored, computed, or signature-only.
    pub body: AttrBody,
}

impl AttrDef {
    /// A stored attribute.
    pub fn stored(name: Symbol, ty: Type) -> AttrDef {
        AttrDef {
            sig: AttrSig {
                name,
                params: Vec::new(),
                ty,
            },
            body: AttrBody::Stored,
        }
    }

    /// A computed attribute with no parameters (`has value …`).
    pub fn computed(name: Symbol, ty: Type, body: Expr) -> AttrDef {
        AttrDef {
            sig: AttrSig {
                name,
                params: Vec::new(),
                ty,
            },
            body: AttrBody::Computed(body),
        }
    }

    /// A computed attribute with parameters — a method, in classical terms.
    pub fn method(name: Symbol, params: Vec<(Symbol, Type)>, ty: Type, body: Expr) -> AttrDef {
        AttrDef {
            sig: AttrSig { name, params, ty },
            body: AttrBody::Computed(body),
        }
    }

    /// A signature-only attribute (see [`AttrBody::Abstract`]).
    pub fn abstract_sig(name: Symbol, ty: Type) -> AttrDef {
        AttrDef {
            sig: AttrSig {
                name,
                params: Vec::new(),
                ty,
            },
            body: AttrBody::Abstract,
        }
    }

    /// Is this attribute stored?
    pub fn is_stored(&self) -> bool {
        matches!(self.body, AttrBody::Stored)
    }

    /// Is this a signature-only (upward-inherited) attribute?
    pub fn is_abstract(&self) -> bool {
        matches!(self.body, AttrBody::Abstract)
    }
}

/// A class: name, direct superclasses, own attribute definitions.
#[derive(Clone, Debug)]
pub struct Class {
    /// This class's id in its schema.
    pub id: ClassId,
    /// The class name.
    pub name: Symbol,
    /// Direct superclasses.
    pub parents: Vec<ClassId>,
    /// Attributes defined (or redefined) *in this class*.
    pub attrs: Vec<AttrDef>,
}

impl Class {
    /// The definition of `name` given in this class itself, if any.
    pub fn own_attr(&self, name: Symbol) -> Option<&AttrDef> {
        self.attrs.iter().find(|a| a.sig.name == name)
    }
}

/// A class schema: the class table plus the inheritance hierarchy.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    classes: Vec<Class>,
    by_name: HashMap<Symbol, ClassId>,
    /// Direct subclasses, parallel to `classes`.
    children: Vec<Vec<ClassId>>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates all classes in creation order.
    pub fn classes(&self) -> impl Iterator<Item = &Class> {
        self.classes.iter()
    }

    /// The class with id `id`.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: Symbol) -> Option<ClassId> {
        self.by_name.get(&name).copied()
    }

    /// Like [`Schema::class_by_name`] but returns an error naming the class.
    pub fn require_class(&self, name: Symbol) -> Result<ClassId> {
        self.class_by_name(name)
            .ok_or(OodbError::UnknownClass(name))
    }

    /// Creates a class. `parents` must already exist (which keeps the
    /// hierarchy acyclic by construction); attribute redefinitions are
    /// checked for covariance against every inherited definition.
    pub fn add_class(
        &mut self,
        name: Symbol,
        parents: &[ClassId],
        attrs: Vec<AttrDef>,
    ) -> Result<ClassId> {
        if self.by_name.contains_key(&name) {
            return Err(OodbError::DuplicateClass(name));
        }
        for &p in parents {
            if p.0 as usize >= self.classes.len() {
                return Err(OodbError::BadClassId(p));
            }
        }
        let mut seen = HashSet::new();
        for a in &attrs {
            if !seen.insert(a.sig.name) {
                return Err(OodbError::DuplicateAttr {
                    class: name,
                    attr: a.sig.name,
                });
            }
        }
        // Unreachable expect: 2^32 classes would exhaust memory first.
        let id = ClassId(u32::try_from(self.classes.len()).expect("class table overflow"));
        self.classes.push(Class {
            id,
            name,
            parents: parents.to_vec(),
            attrs,
        });
        self.children.push(Vec::new());
        self.by_name.insert(name, id);
        for &p in parents {
            self.children[p.0 as usize].push(id);
        }
        if let Err(e) = self.check_overrides(id) {
            // Roll back so a failed definition leaves the schema unchanged.
            let class = self.classes.pop().expect("just pushed");
            self.children.pop();
            self.by_name.remove(&name);
            for &p in &class.parents {
                self.children[p.0 as usize].retain(|&c| c != id);
            }
            return Err(e);
        }
        Ok(id)
    }

    /// Adds (or redefines) an attribute on an existing class — the paper's
    /// free-standing `attribute A in class C {has value V}` declaration.
    pub fn add_attr(&mut self, class: ClassId, def: AttrDef) -> Result<()> {
        let name = def.sig.name;
        let previous = {
            let c = &mut self.classes[class.0 as usize];
            if let Some(existing) = c.attrs.iter_mut().find(|a| a.sig.name == name) {
                // Redefinition in place (the paper allows re-declaring, e.g.
                // switching Address from stored to computed in a view).
                Some(std::mem::replace(existing, def))
            } else {
                c.attrs.push(def);
                None
            }
        };
        // Covariance against inherited definitions; restore on failure so a
        // rejected declaration leaves the schema unchanged.
        if let Err(e) = self.check_override_of(class, name) {
            let c = &mut self.classes[class.0 as usize];
            match previous {
                Some(old) => {
                    *c.attrs
                        .iter_mut()
                        .find(|a| a.sig.name == name)
                        .expect("present") = old;
                }
                None => c.attrs.retain(|a| a.sig.name != name),
            }
            return Err(e);
        }
        Ok(())
    }

    fn check_overrides(&self, id: ClassId) -> Result<()> {
        let names: Vec<Symbol> = self.class(id).attrs.iter().map(|a| a.sig.name).collect();
        for n in names {
            self.check_override_of(id, n)?;
        }
        Ok(())
    }

    /// Checks that `class`'s own definition of `name` (if any) is a subtype
    /// of every definition inherited from a strict ancestor.
    fn check_override_of(&self, class: ClassId, name: Symbol) -> Result<()> {
        let own = match self.class(class).own_attr(name) {
            Some(d) => d,
            None => return Ok(()),
        };
        for anc in self.strict_ancestors(class) {
            if let Some(inherited) = self.class(anc).own_attr(name) {
                if !own.sig.ty.is_subtype(&inherited.sig.ty, self) {
                    return Err(OodbError::IncompatibleOverride {
                        class: self.class(class).name,
                        attr: name,
                        parent: self.class(anc).name,
                    });
                }
            }
        }
        Ok(())
    }

    /// Adds a direct superclass edge to an existing class, rejecting cycles.
    /// Used by the view layer when hierarchy inference inserts a virtual
    /// class above existing classes.
    pub fn add_superclass(&mut self, class: ClassId, parent: ClassId) -> Result<()> {
        if class == parent || self.is_subclass(parent, class) {
            return Err(OodbError::CyclicInheritance {
                class: self.class(class).name,
                parent: self.class(parent).name,
            });
        }
        if self.classes[class.0 as usize].parents.contains(&parent) {
            return Ok(());
        }
        self.classes[class.0 as usize].parents.push(parent);
        self.children[parent.0 as usize].push(class);
        Ok(())
    }

    /// Direct subclasses of `c`.
    pub fn direct_subclasses(&self, c: ClassId) -> &[ClassId] {
        &self.children[c.0 as usize]
    }

    /// All strict ancestors of `c` (excluding `c`), breadth-first from the
    /// direct parents, deduplicated.
    pub fn strict_ancestors(&self, c: ClassId) -> Vec<ClassId> {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<ClassId> = self.class(c).parents.iter().copied().collect();
        let mut out = Vec::new();
        while let Some(p) = queue.pop_front() {
            if seen.insert(p) {
                out.push(p);
                queue.extend(self.class(p).parents.iter().copied());
            }
        }
        out
    }

    /// All strict descendants of `c` (excluding `c`).
    pub fn strict_descendants(&self, c: ClassId) -> Vec<ClassId> {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<ClassId> = self.children[c.0 as usize].iter().copied().collect();
        let mut out = Vec::new();
        while let Some(d) = queue.pop_front() {
            if seen.insert(d) {
                out.push(d);
                queue.extend(self.children[d.0 as usize].iter().copied());
            }
        }
        out
    }

    /// The *visible attribute set* of class `c`: every attribute name
    /// reachable by upward resolution, mapped to the class providing the
    /// most specific definition. Where several incomparable definitions
    /// exist (schizophrenia), the definition from the smallest class id is
    /// chosen — a deterministic default, as the paper requires a view system
    /// to "provide a default instead" of forbidding conflicts. Strict
    /// conflict *detection* is in [`crate::resolve`].
    pub fn visible_attrs(&self, c: ClassId) -> BTreeMap<Symbol, (ClassId, &AttrDef)> {
        let mut out: BTreeMap<Symbol, (ClassId, &AttrDef)> = BTreeMap::new();
        let mut chain = vec![c];
        chain.extend(self.strict_ancestors(c));
        for &cls in &chain {
            for def in &self.class(cls).attrs {
                match out.get(&def.sig.name) {
                    None => {
                        out.insert(def.sig.name, (cls, def));
                    }
                    Some(&(prev, _)) => {
                        // Keep the more specific definition; the BFS order
                        // already visits subclasses before superclasses, but
                        // diamonds can revisit: replace only if cls is a
                        // strict subclass of prev.
                        if cls != prev && self.is_subclass(cls, prev) {
                            out.insert(def.sig.name, (cls, def));
                        }
                    }
                }
            }
        }
        out
    }

    /// The tuple *type* of class `c`: all visible zero-parameter attributes.
    /// This is the type used for behavioral generalization (`like B`) and
    /// structural subtype checks.
    pub fn class_type(&self, c: ClassId) -> Type {
        let fields = self
            .visible_attrs(c)
            .into_iter()
            .filter(|(_, (_, def))| def.sig.params.is_empty())
            .map(|(name, (_, def))| (name, def.sig.ty.clone()))
            .collect();
        Type::Tuple(fields)
    }

    /// The names of *stored* attributes visible on `c` — the shape of the
    /// tuple value a real object of `c` carries (the unique-root rule's
    /// "fixed set of attributes", §4.2).
    pub fn stored_attr_types(&self, c: ClassId) -> BTreeMap<Symbol, Type> {
        self.visible_attrs(c)
            .into_iter()
            .filter(|(_, (_, def))| def.is_stored())
            .map(|(name, (_, def))| (name, def.sig.ty.clone()))
            .collect()
    }
}

impl ClassGraph for Schema {
    fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        // BFS upward from `sub`.
        let mut seen = HashSet::new();
        let mut queue: VecDeque<ClassId> = self.class(sub).parents.iter().copied().collect();
        while let Some(p) = queue.pop_front() {
            if p == sup {
                return true;
            }
            if seen.insert(p) {
                queue.extend(self.class(p).parents.iter().copied());
            }
        }
        false
    }

    fn ancestors(&self, c: ClassId) -> Vec<ClassId> {
        let mut out = vec![c];
        out.extend(self.strict_ancestors(c));
        out
    }

    fn class_name(&self, c: ClassId) -> Symbol {
        self.class(c).name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn person_schema() -> (Schema, ClassId, ClassId, ClassId) {
        let mut s = Schema::new();
        let person = s
            .add_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        let employee = s
            .add_class(
                sym("Employee"),
                &[person],
                vec![
                    AttrDef::stored(sym("Salary"), Type::Int),
                    AttrDef::stored(sym("Address"), Type::Str),
                ],
            )
            .unwrap();
        let manager = s
            .add_class(
                sym("Manager"),
                &[employee],
                vec![AttrDef::stored(sym("Budget"), Type::Int)],
            )
            .unwrap();
        (s, person, employee, manager)
    }

    #[test]
    fn subclass_relation_is_transitive_and_reflexive() {
        let (s, person, employee, manager) = person_schema();
        assert!(s.is_subclass(manager, person));
        assert!(s.is_subclass(manager, manager));
        assert!(!s.is_subclass(person, manager));
        assert!(s.is_subclass(employee, person));
    }

    #[test]
    fn duplicate_class_rejected() {
        let (mut s, ..) = person_schema();
        let err = s.add_class(sym("Person"), &[], vec![]).unwrap_err();
        assert_eq!(err, OodbError::DuplicateClass(sym("Person")));
    }

    #[test]
    fn duplicate_attr_in_one_class_rejected() {
        let mut s = Schema::new();
        let err = s
            .add_class(
                sym("C"),
                &[],
                vec![
                    AttrDef::stored(sym("X"), Type::Int),
                    AttrDef::stored(sym("X"), Type::Str),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, OodbError::DuplicateAttr { .. }));
    }

    #[test]
    fn visible_attrs_inherit_downward() {
        let (s, _, _, manager) = person_schema();
        let attrs = s.visible_attrs(manager);
        let names: Vec<&str> = attrs.keys().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["Address", "Age", "Budget", "Name", "Salary"]);
    }

    #[test]
    fn override_must_be_covariant() {
        let mut s = Schema::new();
        let a = s
            .add_class(sym("A"), &[], vec![AttrDef::stored(sym("X"), Type::Int)])
            .unwrap();
        // Redefining X at a *supertype* (Float ⊇ Int is fine: Int <: Float).
        let ok = s.add_class(sym("B"), &[a], vec![AttrDef::stored(sym("X"), Type::Int)]);
        assert!(ok.is_ok());
        // Redefining X at an unrelated type is rejected and rolled back.
        let err = s
            .add_class(sym("C"), &[a], vec![AttrDef::stored(sym("X"), Type::Str)])
            .unwrap_err();
        assert!(matches!(err, OodbError::IncompatibleOverride { .. }));
        assert!(
            s.class_by_name(sym("C")).is_none(),
            "failed add must roll back"
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn stored_computed_overloading_as_in_paper() {
        // "attribute Address in class Employee; attribute Address in class
        // Manager has value self.Company.Address." (§2)
        let (mut s, _, _, manager) = person_schema();
        s.add_attr(
            manager,
            AttrDef::computed(
                sym("Address"),
                Type::Str,
                Expr::attr(Expr::self_attr("Company"), "Address"),
            ),
        )
        .unwrap();
        let attrs = s.visible_attrs(manager);
        let (def_in, def) = attrs[&sym("Address")];
        assert_eq!(s.class(def_in).name, sym("Manager"));
        assert!(!def.is_stored());
        // Employee still stores it.
        let employee = s.class_by_name(sym("Employee")).unwrap();
        assert!(s.visible_attrs(employee)[&sym("Address")].1.is_stored());
    }

    #[test]
    fn add_superclass_rejects_cycles() {
        let (mut s, person, _, manager) = person_schema();
        let err = s.add_superclass(person, manager).unwrap_err();
        assert!(matches!(err, OodbError::CyclicInheritance { .. }));
        assert!(s.add_superclass(person, person).is_err());
    }

    #[test]
    fn add_superclass_mid_hierarchy() {
        // The paper inserts Merchant_Vessel between Ship and Tanker/Trawler.
        let mut s = Schema::new();
        let ship = s.add_class(sym("Ship"), &[], vec![]).unwrap();
        let tanker = s.add_class(sym("Tanker"), &[ship], vec![]).unwrap();
        let trawler = s.add_class(sym("Trawler"), &[ship], vec![]).unwrap();
        let merchant = s
            .add_class(sym("Merchant_Vessel"), &[ship], vec![])
            .unwrap();
        s.add_superclass(tanker, merchant).unwrap();
        s.add_superclass(trawler, merchant).unwrap();
        assert!(s.is_subclass(tanker, merchant));
        assert!(s.is_subclass(merchant, ship));
        assert!(s.is_subclass(tanker, ship));
    }

    #[test]
    fn class_type_is_structural() {
        let (s, person, ..) = person_schema();
        assert_eq!(
            s.class_type(person),
            Type::tuple([("Age", Type::Int), ("Name", Type::Str)])
        );
    }

    #[test]
    fn class_type_excludes_parameterized_attributes() {
        let mut s = Schema::new();
        let c = s
            .add_class(
                sym("Acct"),
                &[],
                vec![
                    AttrDef::stored(sym("Balance"), Type::Int),
                    AttrDef::method(
                        sym("Projected"),
                        vec![(sym("years"), Type::Int)],
                        Type::Int,
                        Expr::self_attr("Balance"),
                    ),
                ],
            )
            .unwrap();
        assert_eq!(s.class_type(c), Type::tuple([("Balance", Type::Int)]));
    }

    #[test]
    fn diamond_visible_attrs_prefer_more_specific() {
        // D < B < A, D < C < A; B redefines X; resolution on D must pick B's.
        let mut s = Schema::new();
        let a = s
            .add_class(sym("A"), &[], vec![AttrDef::stored(sym("X"), Type::Float)])
            .unwrap();
        let b = s
            .add_class(sym("B"), &[a], vec![AttrDef::stored(sym("X"), Type::Int)])
            .unwrap();
        let c = s.add_class(sym("C"), &[a], vec![]).unwrap();
        let d = s.add_class(sym("D"), &[b, c], vec![]).unwrap();
        let attrs = s.visible_attrs(d);
        let (def_in, def) = attrs[&sym("X")];
        assert_eq!(def_in, b);
        assert_eq!(def.sig.ty, Type::Int);
    }

    #[test]
    fn strict_descendants_cover_the_subtree() {
        let (s, person, employee, manager) = person_schema();
        let mut d = s.strict_descendants(person);
        d.sort();
        assert_eq!(d, vec![employee, manager]);
        assert!(s.strict_descendants(manager).is_empty());
    }
}
