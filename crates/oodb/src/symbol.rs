//! Interned identifiers.
//!
//! Schema and attribute names appear in every tuple and every expression, so
//! they are interned once into a process-global table and carried around as a
//! copyable [`Symbol`]. Interning is global (rather than per-database) so that
//! symbols remain meaningful across databases and views — a view imports
//! classes from several databases and must compare their attribute names
//! directly.
//!
//! `Symbol` ordering is **by string**, not by intern index, so that any
//! ordered container keyed by symbols (tuples, dumps, error listings) is
//! deterministic regardless of interning order.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use parking_lot::RwLock;

/// An interned string. Cheap to copy, compare and hash; resolves back to its
/// text via [`Symbol::as_str`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `text` and returns its symbol. Repeated calls with equal text
    /// return equal symbols.
    pub fn new(text: &str) -> Symbol {
        let lock = interner();
        if let Some(&id) = lock.read().map.get(text) {
            return Symbol(id);
        }
        let mut w = lock.write();
        if let Some(&id) = w.map.get(text) {
            return Symbol(id);
        }
        // Names are schema-level identifiers: a small, bounded set per
        // process, so leaking the backing string is the right trade.
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        // Unreachable expect: 2^32 distinct symbols would exhaust memory
        // first (each one leaks its backing string by design).
        let id = u32::try_from(w.strings.len()).expect("interner overflow");
        w.strings.push(leaked);
        w.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }
}

/// Shorthand for [`Symbol::new`].
pub fn sym(text: &str) -> Symbol {
    Symbol::new(text)
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the text so that hash is consistent with (string-based) Eq/Ord
        // across interner instances; symbols equal by id always have equal
        // text.
        self.as_str().hash(state);
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(sym("Person"), sym("Person"));
        assert_ne!(sym("Person"), sym("Employee"));
    }

    #[test]
    fn resolves_to_text() {
        assert_eq!(sym("Address").as_str(), "Address");
    }

    #[test]
    fn orders_by_string() {
        // Intern in reverse lexicographic order; comparison must still be
        // lexicographic.
        let z = sym("zzz-order-test");
        let a = sym("aaa-order-test");
        assert!(a < z);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(sym("City").to_string(), "City");
        assert_eq!(format!("{:?}", sym("City")), "`City`");
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: Symbol| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(sym("Spouse")), h(sym("Spouse")));
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        assert_eq!(sym("").as_str(), "");
    }
}
