//! Identifier newtypes.
//!
//! Object identifiers ([`Oid`]) are the heart of the paper: "To create new
//! objects, the view mechanism creates new object identifiers (oid's) and
//! assigns them to objects" (§5.1). Oids here are opaque 64-bit values drawn
//! from a per-store counter; the view layer draws *imaginary* oids from a
//! disjoint range so that a dangling id can never be confused with a base
//! object (see `ov-views::imaginary`).

use std::fmt;

/// An object identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

/// First oid of the range reserved for imaginary objects. Base stores
/// allocate strictly below this bound, the view layer strictly at or above
/// it.
pub const IMAGINARY_OID_BASE: u64 = 1 << 48;

impl Oid {
    /// Does this oid lie in the imaginary range (allocated by a view rather
    /// than by a base store)?
    pub fn is_imaginary(self) -> bool {
        self.0 >= IMAGINARY_OID_BASE
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_imaginary() {
            write!(f, "#i{}", self.0 - IMAGINARY_OID_BASE)
        } else {
            write!(f, "#{}", self.0)
        }
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A class identifier, an index into a [`crate::Schema`]'s class table.
///
/// Class ids are local to one schema. The view layer allocates ids for
/// virtual classes in the same space as the (copied) imported schema, so a
/// bound view manipulates a single uniform id space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A database identifier within a [`crate::System`] catalog.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DbId(pub u32);

impl fmt::Debug for DbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "db{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imaginary_range_is_disjoint() {
        assert!(!Oid(0).is_imaginary());
        assert!(!Oid(IMAGINARY_OID_BASE - 1).is_imaginary());
        assert!(Oid(IMAGINARY_OID_BASE).is_imaginary());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{}", Oid(7)), "#7");
        assert_eq!(format!("{}", Oid(IMAGINARY_OID_BASE + 3)), "#i3");
        assert_eq!(format!("{:?}", ClassId(2)), "c2");
        assert_eq!(format!("{:?}", DbId(1)), "db1");
    }
}
