//! Attribute (method) resolution.
//!
//! "To find the code for a method of a particular object, it suffices to
//! 'climb' the class hierarchy until a class is found that provides the
//! code" — the paper's *upward resolution* rule (§4.2). With multiple
//! inheritance (and, in the view layer, with overlapping virtual classes)
//! several incomparable classes may provide code, which the paper names
//! **schizophrenia**: "the receiver doesn't know which personality to
//! choose" (§4.3).
//!
//! The paper's position: "A view system should not strictly disallow
//! schizophrenia, but should provide a default instead." We therefore
//! expose the conflict *explicitly* ([`Resolution::Conflict`]) and resolve
//! it under a configurable [`ConflictPolicy`].

use crate::error::{OodbError, Result};
use crate::ids::ClassId;
use crate::schema::{AttrDef, Schema};
use crate::symbol::Symbol;
use crate::types::ClassGraph;

/// The result of upward resolution of `attr` starting at a class.
#[derive(Debug)]
pub enum Resolution<'a> {
    /// Exactly one most-specific definition.
    Found {
        /// The class providing the definition.
        def_in: ClassId,
        /// The definition itself.
        def: &'a AttrDef,
    },
    /// No definition anywhere above.
    NotFound,
    /// Several incomparable most-specific definitions — schizophrenia. The
    /// classes are listed in ascending id (creation) order.
    Conflict(Vec<ClassId>),
}

/// How to pick a definition when resolution is schizophrenic.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ConflictPolicy {
    /// Raise [`OodbError::Schizophrenia`].
    Error,
    /// Pick the definition from the earliest-created class — the paper
    /// mentions "priorities based on creation time" as one proposed
    /// solution; it is our default because it is total and deterministic.
    #[default]
    CreationOrder,
    /// Explicit priority list of class names; the first listed class that
    /// provides a definition wins ("explicitly assigning levels of
    /// priority"). Falls back to creation order if none is listed.
    Priority(Vec<Symbol>),
}

/// Upward resolution of `name` for (an object real in) `class`.
///
/// Finds all classes in `{class} ∪ ancestors(class)` that define `name`
/// themselves, then keeps the minimal ones with respect to the subclass
/// order. Zero → `NotFound`; one → `Found`; several → `Conflict`.
pub fn resolve_attr<'a>(schema: &'a Schema, class: ClassId, name: Symbol) -> Resolution<'a> {
    let mut defining: Vec<ClassId> = Vec::new();
    for c in schema.ancestors(class) {
        if schema.class(c).own_attr(name).is_some() {
            defining.push(c);
        }
    }
    if defining.is_empty() {
        return Resolution::NotFound;
    }
    let mut minimal: Vec<ClassId> = defining
        .iter()
        .copied()
        .filter(|&c| !defining.iter().any(|&d| d != c && schema.is_subclass(d, c)))
        .collect();
    minimal.sort();
    match minimal.as_slice() {
        [one] => Resolution::Found {
            def_in: *one,
            // Unreachable expect: `minimal` only holds classes that were
            // collected above precisely because they define `name`.
            def: schema.class(*one).own_attr(name).expect("defines it"),
        },
        _ => Resolution::Conflict(minimal),
    }
}

/// Resolution with a conflict policy applied; errors only under
/// [`ConflictPolicy::Error`] (or when the attribute is simply absent).
pub fn resolve_with_policy<'a>(
    schema: &'a Schema,
    class: ClassId,
    name: Symbol,
    policy: &ConflictPolicy,
) -> Result<(ClassId, &'a AttrDef)> {
    match resolve_attr(schema, class, name) {
        Resolution::Found { def_in, def } => Ok((def_in, def)),
        Resolution::NotFound => Err(OodbError::UnknownAttr {
            class: schema.class(class).name,
            attr: name,
        }),
        Resolution::Conflict(candidates) => match policy {
            ConflictPolicy::Error => Err(OodbError::Schizophrenia {
                class: schema.class(class).name,
                attr: name,
                defined_in: candidates.iter().map(|&c| schema.class(c).name).collect(),
            }),
            ConflictPolicy::CreationOrder => {
                let c = candidates[0]; // candidates are id-sorted
                Ok((c, schema.class(c).own_attr(name).expect("defines it")))
            }
            ConflictPolicy::Priority(order) => {
                let chosen = order
                    .iter()
                    .find_map(|n| {
                        let id = schema.class_by_name(*n)?;
                        candidates.contains(&id).then_some(id)
                    })
                    .unwrap_or(candidates[0]);
                Ok((
                    chosen,
                    schema.class(chosen).own_attr(name).expect("defines it"),
                ))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::schema::AttrDef;
    use crate::symbol::sym;
    use crate::types::Type;
    use crate::value::Value;

    fn print_def() -> AttrDef {
        AttrDef::computed(sym("Print"), Type::Str, Expr::lit(Value::str("…")))
    }

    /// Rich and Senior both define Print; RichSenior inherits from both —
    /// the paper's schizophrenia setting.
    fn schizo_schema() -> (Schema, ClassId, ClassId, ClassId) {
        let mut s = Schema::new();
        let rich = s.add_class(sym("Rich"), &[], vec![print_def()]).unwrap();
        let senior = s.add_class(sym("Senior"), &[], vec![print_def()]).unwrap();
        let both = s
            .add_class(sym("RichSenior"), &[rich, senior], vec![])
            .unwrap();
        (s, rich, senior, both)
    }

    #[test]
    fn upward_resolution_climbs() {
        let mut s = Schema::new();
        let a = s.add_class(sym("A"), &[], vec![print_def()]).unwrap();
        let b = s.add_class(sym("B"), &[a], vec![]).unwrap();
        let c = s.add_class(sym("C"), &[b], vec![]).unwrap();
        match resolve_attr(&s, c, sym("Print")) {
            Resolution::Found { def_in, .. } => assert_eq!(def_in, a),
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn own_definition_shadows_inherited() {
        let mut s = Schema::new();
        let a = s.add_class(sym("A"), &[], vec![print_def()]).unwrap();
        let b = s.add_class(sym("B"), &[a], vec![print_def()]).unwrap();
        match resolve_attr(&s, b, sym("Print")) {
            Resolution::Found { def_in, .. } => assert_eq!(def_in, b),
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn incomparable_definitions_conflict() {
        let (s, rich, senior, both) = schizo_schema();
        match resolve_attr(&s, both, sym("Print")) {
            Resolution::Conflict(cs) => assert_eq!(cs, vec![rich, senior]),
            other => panic!("expected Conflict, got {other:?}"),
        }
    }

    #[test]
    fn redefinition_in_subclass_resolves_the_conflict() {
        // "One can then redefine the conflicting methods in the new class."
        let (mut s, _, _, both) = schizo_schema();
        s.add_attr(both, print_def()).unwrap();
        match resolve_attr(&s, both, sym("Print")) {
            Resolution::Found { def_in, .. } => assert_eq!(def_in, both),
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn policy_error_raises_schizophrenia() {
        let (s, _, _, both) = schizo_schema();
        let err = resolve_with_policy(&s, both, sym("Print"), &ConflictPolicy::Error).unwrap_err();
        assert!(matches!(err, OodbError::Schizophrenia { .. }));
    }

    #[test]
    fn policy_creation_order_is_deterministic() {
        let (s, rich, _, both) = schizo_schema();
        let (c, _) =
            resolve_with_policy(&s, both, sym("Print"), &ConflictPolicy::CreationOrder).unwrap();
        assert_eq!(c, rich);
    }

    #[test]
    fn policy_priority_list_wins() {
        let (s, _, senior, both) = schizo_schema();
        let policy = ConflictPolicy::Priority(vec![sym("Senior"), sym("Rich")]);
        let (c, _) = resolve_with_policy(&s, both, sym("Print"), &policy).unwrap();
        assert_eq!(c, senior);
    }

    #[test]
    fn priority_list_with_no_match_falls_back() {
        let (s, rich, _, both) = schizo_schema();
        let policy = ConflictPolicy::Priority(vec![sym("Unrelated")]);
        let (c, _) = resolve_with_policy(&s, both, sym("Print"), &policy).unwrap();
        assert_eq!(c, rich);
    }

    #[test]
    fn not_found_reports_unknown_attr() {
        let (s, _, _, both) = schizo_schema();
        let err = resolve_with_policy(&s, both, sym("Ghost"), &ConflictPolicy::CreationOrder)
            .unwrap_err();
        assert!(matches!(err, OodbError::UnknownAttr { .. }));
    }

    #[test]
    fn diamond_with_common_root_is_not_a_conflict() {
        // A defines Print; B, C inherit from A; D from B and C. Only one
        // minimal definition (A) exists.
        let mut s = Schema::new();
        let a = s.add_class(sym("A"), &[], vec![print_def()]).unwrap();
        let b = s.add_class(sym("B"), &[a], vec![]).unwrap();
        let c = s.add_class(sym("C"), &[a], vec![]).unwrap();
        let d = s.add_class(sym("D"), &[b, c], vec![]).unwrap();
        assert!(matches!(
            resolve_attr(&s, d, sym("Print")),
            Resolution::Found { def_in, .. } if def_in == a
        ));
    }
}
