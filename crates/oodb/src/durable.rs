//! The per-database durability core: a shared WAL handle plus the durable
//! mirror of the view layer's imaginary identity tables.
//!
//! A [`DurableCore`] is created by `Database::open` and threaded (as an
//! `Arc`) into the [`crate::Store`] and into every view bound over the
//! database. It owns:
//!
//! * the write-ahead log ([`crate::wal::Wal`]) — every store mutation is
//!   appended *before* it is applied in memory, so a crash recovers exactly
//!   a prefix of committed work;
//! * the **identity mirror** — a durable copy of each view's
//!   tuple → imaginary-oid tables (§5.1 of the paper). The view layer keeps
//!   its own working tables; the mirror exists so identity survives
//!   restarts and can be checkpointed without consulting live views.
//!
//! ## Lock discipline
//!
//! Checkpointing locks `wal` **then** `identity`. Identity logging locks
//! `identity`, *releases it*, then locks `wal` — no thread ever holds
//! `identity` while waiting for `wal`, so the two orders cannot deadlock.
//! The window between a mirror update and its WAL append is benign: if a
//! checkpoint interleaves, the snapshot already carries the mirror entry
//! and replaying the (idempotent) `IdentityAssign` record is a no-op.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;
use crate::ids::{Oid, IMAGINARY_OID_BASE};
use crate::pager::{self, IdentityEntry, SnapshotImage};
use crate::symbol::Symbol;
use crate::value::Tuple;
use crate::wal::{Durability, Wal, WalRecord};

/// File name of the write-ahead log within a database directory.
pub const WAL_FILE: &str = "wal.ovl";

/// The durable mirror of all imaginary identity tables, keyed by
/// `(view name, imaginary class name)`. Class *names* are the durable key:
/// class ids are rebuilt on every view bind.
#[derive(Clone, Debug)]
pub struct IdentityMirror {
    tables: HashMap<(Symbol, Symbol), HashMap<Tuple, Oid>>,
    next_imaginary: u64,
}

impl Default for IdentityMirror {
    fn default() -> IdentityMirror {
        IdentityMirror {
            tables: HashMap::new(),
            next_imaginary: IMAGINARY_OID_BASE,
        }
    }
}

impl IdentityMirror {
    /// Records (or re-records) an assignment. Idempotent.
    pub fn assign(&mut self, view: Symbol, class: Symbol, core: Tuple, oid: Oid) {
        self.tables
            .entry((view, class))
            .or_default()
            .insert(core, oid);
        if oid.0 >= self.next_imaginary {
            self.next_imaginary = oid.0 + 1;
        }
    }

    /// Drops an assignment; `true` if it existed.
    pub fn drop_entry(&mut self, view: Symbol, class: Symbol, core: &Tuple) -> bool {
        self.tables
            .get_mut(&(view, class))
            .is_some_and(|t| t.remove(core).is_some())
    }

    /// Flattens the mirror for a snapshot, in a deterministic order.
    pub fn entries(&self) -> Vec<IdentityEntry> {
        let mut out: Vec<IdentityEntry> = self
            .tables
            .iter()
            .flat_map(|((view, class), table)| {
                table.iter().map(|(core, oid)| IdentityEntry {
                    view: *view,
                    class: *class,
                    core: core.clone(),
                    oid: *oid,
                })
            })
            .collect();
        out.sort_by_key(|e| e.oid);
        out
    }

    /// All durable entries for one view: `(class name, core tuple, oid)`.
    pub fn entries_for_view(&self, view: Symbol) -> Vec<(Symbol, Tuple, Oid)> {
        let mut out: Vec<(Symbol, Tuple, Oid)> = self
            .tables
            .iter()
            .filter(|((v, _), _)| *v == view)
            .flat_map(|((_, class), table)| {
                table.iter().map(|(core, oid)| (*class, core.clone(), *oid))
            })
            .collect();
        out.sort_by_key(|(_, _, oid)| *oid);
        out
    }

    /// Number of live entries across all tables.
    pub fn len(&self) -> usize {
        self.tables.values().map(HashMap::len).sum()
    }

    /// Is the mirror empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lowest imaginary oid not yet assigned.
    pub fn next_imaginary(&self) -> u64 {
        self.next_imaginary
    }

    /// Raises the allocator floor to at least `floor`.
    pub fn raise_floor(&mut self, floor: u64) {
        if floor > self.next_imaginary {
            self.next_imaginary = floor;
        }
    }
}

/// A point-in-time report of the durability layer, for the ovq `.wal`
/// command and tests.
#[derive(Clone, Debug)]
pub struct WalStatus {
    /// The database's on-disk directory.
    pub dir: PathBuf,
    /// The configured durability level.
    pub durability: Durability,
    /// Next LSN the WAL will assign.
    pub next_lsn: u64,
    /// Records appended since the last checkpoint truncated the log.
    pub records_since_reset: u64,
    /// Current WAL file size in bytes.
    pub wal_bytes: u64,
    /// Live entries in the durable identity mirror.
    pub identity_entries: usize,
}

/// The shared durability core of one open database. See the module docs
/// for the lock discipline.
pub struct DurableCore {
    dir: PathBuf,
    durability: Durability,
    wal: Mutex<Wal>,
    identity: Mutex<IdentityMirror>,
}

impl fmt::Debug for DurableCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableCore")
            .field("dir", &self.dir)
            .field("durability", &self.durability)
            .finish_non_exhaustive()
    }
}

/// What [`DurableCore::open`] recovers: the core itself, the latest
/// snapshot (if any), and the WAL tail — the records appended after that
/// snapshot — for the caller to replay.
pub type RecoveredCore = (
    Arc<DurableCore>,
    Option<SnapshotImage>,
    Vec<(u64, WalRecord)>,
);

impl DurableCore {
    /// Opens (creating if needed) the durability directory `dir`.
    pub fn open(dir: &Path, durability: Durability) -> Result<RecoveredCore> {
        std::fs::create_dir_all(dir)
            .map_err(|e| crate::error::OodbError::io("create database directory", e))?;
        let snapshot = pager::read_snapshot(dir)?;
        let (wal, tail) = Wal::open(&dir.join(WAL_FILE))?;
        let mut identity = IdentityMirror::default();
        if let Some(img) = &snapshot {
            for e in &img.identity {
                identity.assign(e.view, e.class, e.core.clone(), e.oid);
            }
            identity.raise_floor(img.next_imaginary);
        }
        // Identity records in the WAL tail are applied to the mirror here;
        // store records are left for the caller's replay loop.
        for (_, rec) in &tail {
            match rec {
                WalRecord::IdentityAssign {
                    view,
                    class,
                    core,
                    oid,
                } => {
                    identity.assign(*view, *class, core.clone(), *oid);
                }
                WalRecord::IdentityDrop { view, class, core } => {
                    identity.drop_entry(*view, *class, core);
                }
                _ => {}
            }
        }
        let core = Arc::new(DurableCore {
            dir: dir.to_path_buf(),
            durability,
            wal: Mutex::new(wal),
            identity: Mutex::new(identity),
        });
        Ok((core, snapshot, tail))
    }

    /// Appends a record and applies the configured commit policy. This is
    /// the strict path used by store mutations: the caller must *not*
    /// apply the mutation in memory if this fails.
    pub fn log(&self, rec: &WalRecord) -> Result<u64> {
        let mut wal = self.wal.lock();
        let lsn = wal.append(rec)?;
        wal.commit(self.durability)?;
        Ok(lsn)
    }

    /// Records an imaginary identity assignment: mirror first, then WAL.
    /// WAL failures degrade (counted, not raised) — the in-memory
    /// assignment stands either way, and identity records are idempotent,
    /// so a later retry or checkpoint heals the log.
    pub fn log_identity_assign(&self, view: Symbol, class: Symbol, core: Tuple, oid: Oid) {
        self.identity.lock().assign(view, class, core.clone(), oid);
        let rec = WalRecord::IdentityAssign {
            view,
            class,
            core,
            oid,
        };
        if self.log(&rec).is_err() {
            crate::metric_counter!("identity.log_failures").inc();
        }
    }

    /// Records an imaginary identity drop (mirror first, then WAL; WAL
    /// failures degrade as in [`Self::log_identity_assign`]).
    pub fn log_identity_drop(&self, view: Symbol, class: Symbol, core: &Tuple) {
        self.identity.lock().drop_entry(view, class, core);
        let rec = WalRecord::IdentityDrop {
            view,
            class,
            core: core.clone(),
        };
        if self.log(&rec).is_err() {
            crate::metric_counter!("identity.log_failures").inc();
        }
    }

    /// Durable identity entries for one view, for re-adoption at bind time.
    pub fn identity_for_view(&self, view: Symbol) -> Vec<(Symbol, Tuple, Oid)> {
        self.identity.lock().entries_for_view(view)
    }

    /// Lowest imaginary oid recovery knows to be unassigned.
    pub fn next_imaginary(&self) -> u64 {
        self.identity.lock().next_imaginary()
    }

    /// Raises the imaginary allocator floor (e.g. after a view allocated
    /// fresh oids) so a checkpoint never re-issues a live oid.
    pub fn raise_imaginary_floor(&self, floor: u64) {
        self.identity.lock().raise_floor(floor);
    }

    /// Forces the WAL to disk regardless of durability level.
    pub fn sync(&self) -> Result<()> {
        self.wal.lock().sync()
    }

    /// Writes a checkpoint. The caller fills the image with store state via
    /// `fill`; the core contributes the identity mirror and the WAL
    /// watermark, writes the snapshot atomically, then truncates the WAL.
    /// The WAL lock is held throughout, so no mutation can slip between
    /// the captured image and the truncation.
    pub fn checkpoint(&self, fill: impl FnOnce(&mut SnapshotImage)) -> Result<()> {
        let mut wal = self.wal.lock();
        wal.sync()?;
        let mut image = SnapshotImage::default();
        {
            let identity = self.identity.lock();
            image.identity = identity.entries();
            image.next_imaginary = identity.next_imaginary();
        }
        image.checkpoint_lsn = wal.next_lsn();
        fill(&mut image);
        pager::write_snapshot(&self.dir, &image)?;
        wal.reset()?;
        Ok(())
    }

    /// The database's on-disk directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured durability level.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Snapshot of the durability layer's current state.
    pub fn status(&self) -> WalStatus {
        let wal = self.wal.lock();
        WalStatus {
            dir: self.dir.clone(),
            durability: self.durability,
            next_lsn: wal.next_lsn(),
            records_since_reset: wal.records_since_reset(),
            wal_bytes: wal.bytes(),
            identity_entries: self.identity.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;
    use crate::value::Value;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ov-durable-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn core_tuple(city: &str) -> Tuple {
        Tuple::from_fields([("City", Value::str(city))])
    }

    #[test]
    fn identity_survives_reopen_via_wal_tail() {
        let dir = tmpdir("identity-wal");
        let oid = Oid(IMAGINARY_OID_BASE + 3);
        {
            let (core, snap, tail) = DurableCore::open(&dir, Durability::Wal).unwrap();
            assert!(snap.is_none());
            assert!(tail.is_empty());
            core.log_identity_assign(sym("V"), sym("Addr"), core_tuple("Paris"), oid);
            core.sync().unwrap();
        }
        let (core, _, tail) = DurableCore::open(&dir, Durability::Wal).unwrap();
        assert_eq!(tail.len(), 1);
        let got = core.identity_for_view(sym("V"));
        assert_eq!(got, vec![(sym("Addr"), core_tuple("Paris"), oid)]);
        assert_eq!(core.next_imaginary(), oid.0 + 1);
    }

    #[test]
    fn checkpoint_truncates_wal_and_keeps_identity() {
        let dir = tmpdir("identity-ckpt");
        let oid = Oid(IMAGINARY_OID_BASE + 7);
        {
            let (core, _, _) = DurableCore::open(&dir, Durability::Wal).unwrap();
            core.log_identity_assign(sym("V"), sym("Addr"), core_tuple("Lyon"), oid);
            core.checkpoint(|img| {
                img.name = sym("Db");
                img.store_version = 5;
            })
            .unwrap();
            assert_eq!(core.status().records_since_reset, 0);
        }
        let (core, snap, tail) = DurableCore::open(&dir, Durability::Wal).unwrap();
        assert!(tail.is_empty(), "WAL should be empty after checkpoint");
        let snap = snap.unwrap();
        assert_eq!(snap.store_version, 5);
        assert_eq!(snap.identity.len(), 1);
        assert_eq!(
            core.identity_for_view(sym("V")),
            vec![(sym("Addr"), core_tuple("Lyon"), oid)]
        );
    }

    #[test]
    fn drop_removes_entry_durably() {
        let dir = tmpdir("identity-drop");
        let oid = Oid(IMAGINARY_OID_BASE + 1);
        {
            let (core, _, _) = DurableCore::open(&dir, Durability::Wal).unwrap();
            core.log_identity_assign(sym("V"), sym("Addr"), core_tuple("Nice"), oid);
            core.log_identity_drop(sym("V"), sym("Addr"), &core_tuple("Nice"));
            core.sync().unwrap();
        }
        let (core, _, _) = DurableCore::open(&dir, Durability::Wal).unwrap();
        assert!(core.identity_for_view(sym("V")).is_empty());
        // The floor still clears the dropped oid: identity is never reused.
        assert_eq!(core.next_imaginary(), oid.0 + 1);
    }

    #[test]
    fn status_reports_progress() {
        let dir = tmpdir("status");
        let (core, _, _) = DurableCore::open(&dir, Durability::WalSync).unwrap();
        let s0 = core.status();
        assert_eq!(s0.next_lsn, 1);
        assert_eq!(s0.durability, Durability::WalSync);
        core.log(&WalRecord::Remove { oid: Oid(1) }).unwrap();
        let s1 = core.status();
        assert_eq!(s1.next_lsn, 2);
        assert_eq!(s1.records_since_reset, 1);
        assert!(s1.wal_bytes > 0);
    }
}
