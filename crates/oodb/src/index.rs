//! Secondary attribute indexes.
//!
//! The paper's §4.2 "Implementation Issues" motivates the unique root rule
//! with storage efficiency: objects of one class "can be stored uniformly
//! along with similar objects." This module adds the natural companion: a
//! hash index per `(class, stored attribute)` mapping values to the oids
//! real in that class, maintained on every mutation. The view layer uses
//! these to push equality predicates of specialization queries down into
//! the store (see `ov-views`), turning population evaluation from a scan
//! into a lookup.

use std::collections::{BTreeSet, HashMap};

use crate::ids::{ClassId, Oid};
use crate::symbol::Symbol;
use crate::value::Value;

/// A value → oids index for one `(class, attribute)` pair.
#[derive(Clone, Debug, Default)]
pub struct AttrIndex {
    map: HashMap<Value, BTreeSet<Oid>>,
}

impl AttrIndex {
    /// All oids whose indexed attribute equals `value`.
    pub fn get(&self, value: &Value) -> impl Iterator<Item = Oid> + '_ {
        self.map.get(value).into_iter().flatten().copied()
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn insert(&mut self, value: Value, oid: Oid) {
        self.map.entry(value).or_default().insert(oid);
    }

    pub(crate) fn remove(&mut self, value: &Value, oid: Oid) {
        if let Some(set) = self.map.get_mut(value) {
            set.remove(&oid);
            if set.is_empty() {
                self.map.remove(value);
            }
        }
    }
}

/// The index registry of a store: `(real class, attribute)` → index.
#[derive(Clone, Debug, Default)]
pub struct IndexSet {
    indexes: HashMap<(ClassId, Symbol), AttrIndex>,
}

impl IndexSet {
    /// Registers an (empty) index; the caller backfills it.
    pub(crate) fn create(&mut self, class: ClassId, attr: Symbol) -> &mut AttrIndex {
        self.indexes.entry((class, attr)).or_default()
    }

    /// Drops an index.
    pub(crate) fn drop_index(&mut self, class: ClassId, attr: Symbol) -> bool {
        self.indexes.remove(&(class, attr)).is_some()
    }

    /// The index for `(class, attr)`, if one exists.
    pub fn get(&self, class: ClassId, attr: Symbol) -> Option<&AttrIndex> {
        self.indexes.get(&(class, attr))
    }

    /// Is `(class, attr)` indexed?
    pub fn contains(&self, class: ClassId, attr: Symbol) -> bool {
        self.indexes.contains_key(&(class, attr))
    }

    /// All `(class, attr)` pairs currently indexed, in a deterministic
    /// order (checkpoints persist these so recovery can rebuild).
    pub fn defs(&self) -> Vec<(ClassId, Symbol)> {
        let mut v: Vec<(ClassId, Symbol)> = self.indexes.keys().copied().collect();
        v.sort();
        v
    }

    /// All attributes indexed for `class`.
    pub(crate) fn attrs_of(&self, class: ClassId) -> Vec<Symbol> {
        self.indexes
            .keys()
            .filter(|(c, _)| *c == class)
            .map(|(_, a)| *a)
            .collect()
    }

    /// Called on object insertion: adds entries for every indexed attribute
    /// of `class`.
    pub(crate) fn on_insert(&mut self, class: ClassId, oid: Oid, value: &crate::Tuple) {
        for attr in self.attrs_of(class) {
            let v = value.get(attr).cloned().unwrap_or(Value::Null);
            self.create(class, attr).insert(v, oid);
        }
    }

    /// Called on object removal.
    pub(crate) fn on_remove(&mut self, class: ClassId, oid: Oid, value: &crate::Tuple) {
        for attr in self.attrs_of(class) {
            let v = value.get(attr).cloned().unwrap_or(Value::Null);
            if let Some(ix) = self.indexes.get_mut(&(class, attr)) {
                ix.remove(&v, oid);
            }
        }
    }

    /// Called on a single-field update.
    pub(crate) fn on_set_field(
        &mut self,
        class: ClassId,
        oid: Oid,
        attr: Symbol,
        old: &Value,
        new: &Value,
    ) {
        if let Some(ix) = self.indexes.get_mut(&(class, attr)) {
            ix.remove(old, oid);
            ix.insert(new.clone(), oid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Index lookups (`get`, `candidates`) take `&self` and may run from
    /// many threads at once; maintenance hooks take `&mut self`.
    #[test]
    fn indexes_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttrIndex>();
        assert_send_sync::<IndexSet>();
    }

    #[test]
    fn index_tracks_inserts_and_removals() {
        let mut set = IndexSet::default();
        set.create(ClassId(0), Symbol::new("City"));
        let t1 = crate::Tuple::from_fields([("City", Value::str("Paris"))]);
        let t2 = crate::Tuple::from_fields([("City", Value::str("Paris"))]);
        set.on_insert(ClassId(0), Oid(1), &t1);
        set.on_insert(ClassId(0), Oid(2), &t2);
        let ix = set.get(ClassId(0), Symbol::new("City")).unwrap();
        assert_eq!(ix.get(&Value::str("Paris")).count(), 2);
        set.on_remove(ClassId(0), Oid(1), &t1);
        let ix = set.get(ClassId(0), Symbol::new("City")).unwrap();
        assert_eq!(ix.get(&Value::str("Paris")).count(), 1);
    }

    #[test]
    fn set_field_moves_entries() {
        let mut set = IndexSet::default();
        set.create(ClassId(0), Symbol::new("City"));
        let t = crate::Tuple::from_fields([("City", Value::str("Paris"))]);
        set.on_insert(ClassId(0), Oid(1), &t);
        set.on_set_field(
            ClassId(0),
            Oid(1),
            Symbol::new("City"),
            &Value::str("Paris"),
            &Value::str("Roma"),
        );
        let ix = set.get(ClassId(0), Symbol::new("City")).unwrap();
        assert_eq!(ix.get(&Value::str("Paris")).count(), 0);
        assert_eq!(ix.get(&Value::str("Roma")).count(), 1);
    }

    #[test]
    fn missing_fields_index_as_null() {
        let mut set = IndexSet::default();
        set.create(ClassId(0), Symbol::new("City"));
        set.on_insert(ClassId(0), Oid(7), &crate::Tuple::new());
        let ix = set.get(ClassId(0), Symbol::new("City")).unwrap();
        assert_eq!(ix.get(&Value::Null).count(), 1);
    }

    #[test]
    fn unindexed_classes_are_untouched() {
        let mut set = IndexSet::default();
        set.on_insert(ClassId(3), Oid(1), &crate::Tuple::new());
        assert!(set.get(ClassId(3), Symbol::new("X")).is_none());
    }
}
