//! Runtime values.
//!
//! The O₂ model of the paper assumes that "the value of an object is a tuple"
//! (§2) and that attribute values range over atoms, tuples, sets, lists and
//! object identifiers. The paper's §5.1 identity semantics for imaginary
//! objects requires a *function mapping tuples to oids* — i.e. tuples must be
//! usable as map keys — so [`Value`] implements a **total** `Eq`/`Ord`/`Hash`,
//! including for floats (via `f64::total_cmp` / bit hashing, which are
//! mutually coherent).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::ids::Oid;
use crate::symbol::Symbol;

/// A tuple value: a finite map from attribute names to values.
///
/// Backed by a `BTreeMap` keyed on (string-ordered) symbols, so iteration
/// order, display, equality and hashing are all deterministic — which is what
/// makes tuples usable as keys in the imaginary-object identity tables.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple(pub BTreeMap<Symbol, Value>);

impl Tuple {
    /// The empty tuple.
    pub fn new() -> Tuple {
        Tuple(BTreeMap::new())
    }

    /// Builds a tuple from `(name, value)` pairs.
    pub fn from_fields<N: Into<Symbol>>(fields: impl IntoIterator<Item = (N, Value)>) -> Tuple {
        Tuple(fields.into_iter().map(|(n, v)| (n.into(), v)).collect())
    }

    /// The value of field `name`, if present.
    pub fn get(&self, name: Symbol) -> Option<&Value> {
        self.0.get(&name)
    }

    /// Sets field `name` to `value`, returning the previous value if any.
    pub fn set(&mut self, name: Symbol, value: Value) -> Option<Value> {
        self.0.insert(name, value)
    }

    /// Removes field `name`, returning its value if it was present.
    pub fn remove(&mut self, name: Symbol) -> Option<Value> {
        self.0.remove(&name)
    }

    /// Does the tuple have a field called `name`?
    pub fn has(&self, name: Symbol) -> bool {
        self.0.contains_key(&name)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is this the empty tuple?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates fields in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.0.iter().map(|(k, v)| (*k, v))
    }

    /// A new tuple containing only the fields in `names` (missing names are
    /// silently dropped). Used by the view layer to project core attributes.
    pub fn project(&self, names: impl IntoIterator<Item = Symbol>) -> Tuple {
        let mut out = BTreeMap::new();
        for n in names {
            if let Some(v) = self.0.get(&n) {
                out.insert(n, v.clone());
            }
        }
        Tuple(out)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:?}", k, v)?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// The absence of a value; member of every type.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// Floats carry a total order (`f64::total_cmp`), so `Value` is `Ord`.
    Float(f64),
    /// An immutable string (cheaply clonable).
    Str(Arc<str>),
    /// A reference to an object (base or imaginary).
    Oid(Oid),
    /// A tuple of named fields.
    Tuple(Tuple),
    /// A set (deduplicated by [`Value`]'s total order).
    Set(BTreeSet<Value>),
    /// An ordered list.
    List(Vec<Value>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Convenience constructor for tuple values from `(name, value)` pairs.
    pub fn tuple<N: Into<Symbol>>(fields: impl IntoIterator<Item = (N, Value)>) -> Value {
        Value::Tuple(Tuple::from_fields(fields))
    }

    /// The empty tuple value.
    pub fn empty_tuple() -> Value {
        Value::Tuple(Tuple::new())
    }

    /// Convenience constructor for set values.
    pub fn set(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// Convenience constructor for list values.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Oid(_) => "oid",
            Value::Tuple(_) => "tuple",
            Value::Set(_) => "set",
            Value::List(_) => "list",
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric coercion: ints widen to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object reference, if this is an `Oid`.
    pub fn as_oid(&self) -> Option<Oid> {
        match self {
            Value::Oid(o) => Some(*o),
            _ => None,
        }
    }

    /// The tuple payload, if this is a `Tuple`.
    pub fn as_tuple(&self) -> Option<&Tuple> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// The set payload, if this is a `Set`.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Is this value null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Iterates the elements of a set or list; `None` for other kinds.
    pub fn elements(&self) -> Option<Box<dyn Iterator<Item = &Value> + '_>> {
        match self {
            Value::Set(s) => Some(Box::new(s.iter())),
            Value::List(l) => Some(Box::new(l.iter())),
            _ => None,
        }
    }

    /// All oids reachable in this value (shallow traversal of the value
    /// structure, no dereferencing). Used for referential-integrity checks.
    pub fn collect_oids(&self, out: &mut Vec<Oid>) {
        match self {
            Value::Oid(o) => out.push(*o),
            Value::Tuple(t) => {
                for (_, v) in t.iter() {
                    v.collect_oids(out);
                }
            }
            Value::Set(s) => {
                for v in s {
                    v.collect_oids(out);
                }
            }
            Value::List(l) => {
                for v in l {
                    v.collect_oids(out);
                }
            }
            _ => {}
        }
    }

    /// Rank used to order values of different kinds; gives `Value` a total
    /// order across kinds (null < bool < numbers < string < oid < tuple <
    /// set < list).
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Oid(_) => 4,
            Value::Tuple(_) => 5,
            Value::Set(_) => 6,
            Value::List(_) => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            // Numbers form one ordered kind: compare through f64's total
            // order. An i64 survives the f64 round-trip only approximately
            // above 2^53; for schema-level data that is acceptable, and
            // equal ints still compare equal because the mapping is
            // deterministic.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Oid(a), Oid(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a.cmp(b),
            (Set(a), Set(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with Eq: Int(2) == Float(2.0) is *false* (they differ by
        // the Int-before-Float tiebreak), so hashing ints and floats
        // differently is fine; each kind hashes its own discriminant.
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Oid(o) => o.hash(state),
            Value::Tuple(t) => t.hash(state),
            Value::Set(s) => s.hash(state),
            Value::List(l) => l.hash(state),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Oid(o) => write!(f, "{o}"),
            Value::Tuple(t) => write!(f, "{t:?}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "}}")
            }
            Value::List(l) => {
                write!(f, "list(")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn tuple_fields_are_name_ordered() {
        let t = Tuple::from_fields([("Zip", Value::str("75001")), ("City", Value::str("Paris"))]);
        let names: Vec<_> = t.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["City", "Zip"]);
    }

    #[test]
    fn tuple_equality_ignores_insertion_order() {
        let a = Tuple::from_fields([("A", Value::Int(1)), ("B", Value::Int(2))]);
        let b = Tuple::from_fields([("B", Value::Int(2)), ("A", Value::Int(1))]);
        assert_eq!(a, b);
    }

    #[test]
    fn project_keeps_only_requested_fields() {
        let t = Tuple::from_fields([
            ("City", Value::str("Paris")),
            ("Street", Value::str("Rivoli")),
            ("Zip", Value::str("75001")),
        ]);
        let p = t.project([sym("City"), sym("Zip"), sym("Missing")]);
        assert_eq!(p.len(), 2);
        assert!(p.has(sym("City")) && p.has(sym("Zip")));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        assert_eq!(nan.cmp(&nan), std::cmp::Ordering::Equal);
        assert_ne!(nan.cmp(&one), std::cmp::Ordering::Equal);
    }

    #[test]
    fn cross_kind_ordering_is_total_and_antisymmetric() {
        let vals = vec![
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::Float(0.5),
            Value::str("a"),
            Value::Oid(Oid(1)),
            Value::tuple([("x", Value::Int(1))]),
            Value::set([Value::Int(1)]),
            Value::list([Value::Int(1)]),
        ];
        for a in &vals {
            for b in &vals {
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
            }
        }
    }

    #[test]
    fn int_float_interleave_consistently() {
        // 1 < 1.5 < 2 and Int(2) vs Float(2.0) is deterministic (Int first).
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::Int(2) < Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn sets_deduplicate() {
        let s = Value::set([Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(s.as_set().unwrap().len(), 2);
    }

    #[test]
    fn collect_oids_traverses_nested_structure() {
        let v = Value::tuple([
            ("a", Value::Oid(Oid(1))),
            (
                "b",
                Value::set([Value::Oid(Oid(2)), Value::list([Value::Oid(Oid(3))])]),
            ),
        ]);
        let mut oids = Vec::new();
        v.collect_oids(&mut oids);
        oids.sort();
        assert_eq!(oids, vec![Oid(1), Oid(2), Oid(3)]);
    }

    #[test]
    fn display_is_readable() {
        let v = Value::tuple([("Name", Value::str("Maggy")), ("Age", Value::Int(65))]);
        assert_eq!(v.to_string(), r#"[Age: 65, Name: "Maggy"]"#);
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
    }

    #[test]
    fn hash_agrees_with_eq_for_tuples() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        let a = Tuple::from_fields([("H", Value::Oid(Oid(10))), ("W", Value::Oid(Oid(11)))]);
        let b = Tuple::from_fields([("W", Value::Oid(Oid(11))), ("H", Value::Oid(Oid(10)))]);
        m.insert(a, 42);
        assert_eq!(m.get(&b), Some(&42));
    }
}
