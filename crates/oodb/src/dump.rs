//! Textual dump of a database in the surface DDL.
//!
//! The dump is valid input for the `ov-query` statement parser, so
//! dump → parse → dump is the crate's serialization round-trip (tested in
//! `ov-query`). Oids print as `#n` literals; the loader re-creates objects
//! preserving relative references.

use std::fmt::Write as _;

use crate::codec::crc32;
use crate::database::Database;
use crate::error::OodbError;
use crate::schema::AttrBody;
use crate::types::Type;
use crate::value::Value;

/// Magic prefix of a checked dump's header line. A `--` comment, so checked
/// dumps remain valid scripts for parsers that skip the header.
pub const DUMP_MAGIC: &str = "-- ovdump";

/// Current checked-dump format version. Bump on incompatible header changes.
pub const DUMP_FORMAT: u32 = 1;

/// Wraps script text in the checked dump format: a single `-- ovdump`
/// comment line carrying the format version, the body's byte length, and a
/// CRC32 of the body. The result is still a valid script (the header is a
/// comment); [`read_checked`] verifies and strips it.
pub fn wrap_checked(body: &str) -> String {
    format!(
        "{DUMP_MAGIC} {DUMP_FORMAT} len={} crc32={:08x}\n{body}",
        body.len(),
        crc32(body.as_bytes())
    )
}

/// Verifies a checked dump produced by [`wrap_checked`] and returns the body.
///
/// Rejections are typed, never panics: a file that does not start with the
/// `-- ovdump` magic, a malformed header, a truncated or padded body, or a
/// checksum mismatch all yield [`OodbError::Corrupt`]; a format version newer
/// than this build understands yields [`OodbError::UnsupportedFormat`].
pub fn read_checked(text: &str) -> Result<&str, OodbError> {
    let Some(rest) = text.strip_prefix(DUMP_MAGIC) else {
        return Err(OodbError::corrupt(
            "dump: missing `-- ovdump` header (not a checked dump)",
        ));
    };
    let (header, body) = match rest.split_once('\n') {
        Some(split) => split,
        None => (rest, ""),
    };
    let mut version = None;
    let mut len = None;
    let mut crc = None;
    for field in header.split_whitespace() {
        if let Some(v) = field.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = field.strip_prefix("crc32=") {
            crc = u32::from_str_radix(v, 16).ok();
        } else if version.is_none() {
            version = field.parse::<u32>().ok();
        }
    }
    let (Some(version), Some(len), Some(crc)) = (version, len, crc) else {
        return Err(OodbError::corrupt("dump: malformed `-- ovdump` header"));
    };
    if version > DUMP_FORMAT {
        return Err(OodbError::UnsupportedFormat {
            found: version,
            supported: DUMP_FORMAT,
        });
    }
    if body.len() != len {
        return Err(OodbError::corrupt(format!(
            "dump: body is {} bytes, header says {len} (truncated or padded)",
            body.len()
        )));
    }
    let actual = crc32(body.as_bytes());
    if actual != crc {
        return Err(OodbError::corrupt(format!(
            "dump: checksum mismatch (header {crc:08x}, body {actual:08x})"
        )));
    }
    Ok(body)
}

/// Renders `db` as DDL text: class declarations (stored attributes inline),
/// computed-attribute declarations, objects, then names.
pub fn dump_database(db: &Database) -> String {
    dump_database_with_offset(db, 0)
}

/// Like [`dump_database`], but script-local `#k` literals start at
/// `offset`. Concatenating the dumps of several databases into one script
/// (e.g. a whole-session save) requires disjoint literal ranges.
pub fn dump_database_with_offset(db: &Database, offset: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "database {};", db.name);
    // Classes, in creation order (parents always precede children).
    for class in db.schema.classes() {
        let _ = write!(out, "class {}", class.name);
        if !class.parents.is_empty() {
            let _ = write!(out, " inherits ");
            for (i, p) in class.parents.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}", db.schema.class(*p).name);
            }
        }
        let stored: Vec<_> = class.attrs.iter().filter(|a| a.is_stored()).collect();
        if !stored.is_empty() {
            let _ = write!(out, " type [");
            for (i, a) in stored.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}: {}", a.sig.name, a.sig.ty.display(&db.schema));
            }
            let _ = write!(out, "]");
        }
        let _ = writeln!(out, ";");
    }
    // Computed attributes, after all classes exist.
    for class in db.schema.classes() {
        for a in &class.attrs {
            if let AttrBody::Computed(body) = &a.body {
                let _ = write!(out, "attribute {}", a.sig.name);
                if !a.sig.params.is_empty() {
                    let _ = write!(out, "(");
                    for (i, (p, t)) in a.sig.params.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{}: {}", p, t.display(&db.schema));
                    }
                    let _ = write!(out, ")");
                }
                if a.sig.ty != Type::Any {
                    let _ = write!(out, " of type {}", a.sig.ty.display(&db.schema));
                }
                let _ = writeln!(out, " in class {} has value {};", class.name, body);
            }
        }
    }
    // Objects in oid order, with oids renumbered 0..n script-locally so that
    // dumps are position-independent (base oids are globally unique and
    // allocation-order dependent; the loader remaps `#k` literals anyway).
    // References may be forward; the loader resolves them in a second pass.
    let sorted = db.store.sorted_oids();
    let renumber: std::collections::HashMap<crate::Oid, u64> = sorted
        .iter()
        .enumerate()
        .map(|(i, &oid)| (oid, offset + i as u64))
        .collect();
    for &oid in &sorted {
        // Unreachable expect: `sorted` came from this store's own listing
        // and `db` is borrowed for the whole dump, so no oid can vanish.
        let obj = db.store.get(oid).expect("listed");
        let class_name = db.schema.class(obj.class).name;
        let _ = write!(out, "object #{} in {} value ", renumber[&oid], class_name);
        fmt_value_renumbered(
            &Value::Tuple(crate::value::Tuple(
                obj.value
                    .iter()
                    .filter(|(_, v)| !v.is_null())
                    .map(|(n, v)| (n, v.clone()))
                    .collect(),
            )),
            &renumber,
            &mut out,
        );
        let _ = writeln!(out, ";");
    }
    for (name, oid) in db.names() {
        match renumber.get(&oid) {
            Some(k) => {
                let _ = writeln!(out, "name {name} = #{k};");
            }
            None => {
                let _ = writeln!(out, "name {name} = {oid};");
            }
        }
    }
    out
}

/// Prints a value with oid references rewritten through `renumber` (unknown
/// oids — cross-database references — print verbatim).
fn fmt_value_renumbered(
    v: &Value,
    renumber: &std::collections::HashMap<crate::Oid, u64>,
    out: &mut String,
) {
    match v {
        Value::Oid(o) => match renumber.get(o) {
            Some(k) => {
                let _ = write!(out, "#{k}");
            }
            None => {
                let _ = write!(out, "{o}");
            }
        },
        Value::Tuple(t) => {
            let _ = write!(out, "[");
            for (i, (n, fv)) in t.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{n}: ");
                fmt_value_renumbered(fv, renumber, out);
            }
            let _ = write!(out, "]");
        }
        Value::Set(s) => {
            let _ = write!(out, "{{");
            for (i, e) in s.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                fmt_value_renumbered(e, renumber, out);
            }
            let _ = write!(out, "}}");
        }
        Value::List(l) => {
            let _ = write!(out, "list(");
            for (i, e) in l.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                fmt_value_renumbered(e, renumber, out);
            }
            let _ = write!(out, ")");
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::schema::AttrDef;
    use crate::symbol::sym;

    #[test]
    fn dump_contains_all_sections() {
        let mut db = Database::new(sym("Staff"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        db.create_class(
            sym("Employee"),
            &[person],
            vec![AttrDef::stored(sym("Salary"), Type::Int)],
        )
        .unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::computed(sym("Adultish"), Type::Bool, Expr::self_attr("Age")),
            )
            .unwrap();
        let o = db
            .create_object(person, Value::tuple([("Name", Value::str("Maggy"))]))
            .unwrap();
        db.name_object(sym("maggy"), o).unwrap();

        let text = dump_database(&db);
        assert!(text.contains("database Staff;"));
        // Stored attributes print in declaration order.
        assert!(text.contains("class Person type [Name: string, Age: integer];"));
        assert!(text.contains("class Employee inherits Person type [Salary: integer];"));
        assert!(
            text.contains("attribute Adultish of type boolean in class Person has value self.Age;")
        );
        assert!(text.contains(r#"object #0 in Person value [Name: "Maggy"];"#));
        assert!(text.contains("name maggy = #0;"));
    }

    #[test]
    fn checked_dump_round_trips() {
        let body = "database D;\nclass C;\n";
        let wrapped = wrap_checked(body);
        assert!(wrapped.starts_with(DUMP_MAGIC));
        assert_eq!(read_checked(&wrapped).unwrap(), body);
    }

    #[test]
    fn checked_dump_rejects_foreign_truncated_and_corrupt() {
        // Foreign file: no magic.
        let err = read_checked("#!/bin/sh\nexit 1\n").unwrap_err();
        assert!(matches!(err, OodbError::Corrupt { .. }), "{err}");
        // Truncated body.
        let wrapped = wrap_checked("database D;\nobject #0 in C value [];\n");
        let cut = &wrapped[..wrapped.len() - 10];
        let err = read_checked(cut).unwrap_err();
        assert!(matches!(err, OodbError::Corrupt { .. }), "{err}");
        // Bit flip in the body.
        let flipped = wrapped.replace("database D", "database X");
        let err = read_checked(&flipped).unwrap_err();
        assert!(matches!(err, OodbError::Corrupt { .. }), "{err}");
        // Future format version.
        let future = wrapped.replacen("-- ovdump 1", "-- ovdump 99", 1);
        let err = read_checked(&future).unwrap_err();
        assert!(matches!(err, OodbError::UnsupportedFormat { .. }), "{err}");
    }

    #[test]
    fn null_fields_are_omitted() {
        let mut db = Database::new(sym("D"));
        let c = db
            .create_class(sym("C"), &[], vec![AttrDef::stored(sym("X"), Type::Int)])
            .unwrap();
        db.create_object(c, Value::empty_tuple()).unwrap();
        let text = dump_database(&db);
        assert!(text.contains("object #0 in C value [];"));
    }
}
