//! Textual dump of a database in the surface DDL.
//!
//! The dump is valid input for the `ov-query` statement parser, so
//! dump → parse → dump is the crate's serialization round-trip (tested in
//! `ov-query`). Oids print as `#n` literals; the loader re-creates objects
//! preserving relative references.

use std::fmt::Write as _;

use crate::database::Database;
use crate::schema::AttrBody;
use crate::types::Type;
use crate::value::Value;

/// Renders `db` as DDL text: class declarations (stored attributes inline),
/// computed-attribute declarations, objects, then names.
pub fn dump_database(db: &Database) -> String {
    dump_database_with_offset(db, 0)
}

/// Like [`dump_database`], but script-local `#k` literals start at
/// `offset`. Concatenating the dumps of several databases into one script
/// (e.g. a whole-session save) requires disjoint literal ranges.
pub fn dump_database_with_offset(db: &Database, offset: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "database {};", db.name);
    // Classes, in creation order (parents always precede children).
    for class in db.schema.classes() {
        let _ = write!(out, "class {}", class.name);
        if !class.parents.is_empty() {
            let _ = write!(out, " inherits ");
            for (i, p) in class.parents.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}", db.schema.class(*p).name);
            }
        }
        let stored: Vec<_> = class.attrs.iter().filter(|a| a.is_stored()).collect();
        if !stored.is_empty() {
            let _ = write!(out, " type [");
            for (i, a) in stored.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}: {}", a.sig.name, a.sig.ty.display(&db.schema));
            }
            let _ = write!(out, "]");
        }
        let _ = writeln!(out, ";");
    }
    // Computed attributes, after all classes exist.
    for class in db.schema.classes() {
        for a in &class.attrs {
            if let AttrBody::Computed(body) = &a.body {
                let _ = write!(out, "attribute {}", a.sig.name);
                if !a.sig.params.is_empty() {
                    let _ = write!(out, "(");
                    for (i, (p, t)) in a.sig.params.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{}: {}", p, t.display(&db.schema));
                    }
                    let _ = write!(out, ")");
                }
                if a.sig.ty != Type::Any {
                    let _ = write!(out, " of type {}", a.sig.ty.display(&db.schema));
                }
                let _ = writeln!(out, " in class {} has value {};", class.name, body);
            }
        }
    }
    // Objects in oid order, with oids renumbered 0..n script-locally so that
    // dumps are position-independent (base oids are globally unique and
    // allocation-order dependent; the loader remaps `#k` literals anyway).
    // References may be forward; the loader resolves them in a second pass.
    let sorted = db.store.sorted_oids();
    let renumber: std::collections::HashMap<crate::Oid, u64> = sorted
        .iter()
        .enumerate()
        .map(|(i, &oid)| (oid, offset + i as u64))
        .collect();
    for &oid in &sorted {
        // Unreachable expect: `sorted` came from this store's own listing
        // and `db` is borrowed for the whole dump, so no oid can vanish.
        let obj = db.store.get(oid).expect("listed");
        let class_name = db.schema.class(obj.class).name;
        let _ = write!(out, "object #{} in {} value ", renumber[&oid], class_name);
        fmt_value_renumbered(
            &Value::Tuple(crate::value::Tuple(
                obj.value
                    .iter()
                    .filter(|(_, v)| !v.is_null())
                    .map(|(n, v)| (n, v.clone()))
                    .collect(),
            )),
            &renumber,
            &mut out,
        );
        let _ = writeln!(out, ";");
    }
    for (name, oid) in db.names() {
        match renumber.get(&oid) {
            Some(k) => {
                let _ = writeln!(out, "name {name} = #{k};");
            }
            None => {
                let _ = writeln!(out, "name {name} = {oid};");
            }
        }
    }
    out
}

/// Prints a value with oid references rewritten through `renumber` (unknown
/// oids — cross-database references — print verbatim).
fn fmt_value_renumbered(
    v: &Value,
    renumber: &std::collections::HashMap<crate::Oid, u64>,
    out: &mut String,
) {
    match v {
        Value::Oid(o) => match renumber.get(o) {
            Some(k) => {
                let _ = write!(out, "#{k}");
            }
            None => {
                let _ = write!(out, "{o}");
            }
        },
        Value::Tuple(t) => {
            let _ = write!(out, "[");
            for (i, (n, fv)) in t.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{n}: ");
                fmt_value_renumbered(fv, renumber, out);
            }
            let _ = write!(out, "]");
        }
        Value::Set(s) => {
            let _ = write!(out, "{{");
            for (i, e) in s.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                fmt_value_renumbered(e, renumber, out);
            }
            let _ = write!(out, "}}");
        }
        Value::List(l) => {
            let _ = write!(out, "list(");
            for (i, e) in l.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                fmt_value_renumbered(e, renumber, out);
            }
            let _ = write!(out, ")");
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::schema::AttrDef;
    use crate::symbol::sym;

    #[test]
    fn dump_contains_all_sections() {
        let mut db = Database::new(sym("Staff"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        db.create_class(
            sym("Employee"),
            &[person],
            vec![AttrDef::stored(sym("Salary"), Type::Int)],
        )
        .unwrap();
        db.schema
            .add_attr(
                person,
                AttrDef::computed(sym("Adultish"), Type::Bool, Expr::self_attr("Age")),
            )
            .unwrap();
        let o = db
            .create_object(person, Value::tuple([("Name", Value::str("Maggy"))]))
            .unwrap();
        db.name_object(sym("maggy"), o).unwrap();

        let text = dump_database(&db);
        assert!(text.contains("database Staff;"));
        // Stored attributes print in declaration order.
        assert!(text.contains("class Person type [Name: string, Age: integer];"));
        assert!(text.contains("class Employee inherits Person type [Salary: integer];"));
        assert!(
            text.contains("attribute Adultish of type boolean in class Person has value self.Age;")
        );
        assert!(text.contains(r#"object #0 in Person value [Name: "Maggy"];"#));
        assert!(text.contains("name maggy = #0;"));
    }

    #[test]
    fn null_fields_are_omitted() {
        let mut db = Database::new(sym("D"));
        let c = db
            .create_class(sym("C"), &[], vec![AttrDef::stored(sym("X"), Type::Int)])
            .unwrap();
        db.create_object(c, Value::empty_tuple()).unwrap();
        let text = dump_database(&db);
        assert!(text.contains("object #0 in C value [];"));
    }
}
