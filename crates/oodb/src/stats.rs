//! Optimizer statistics: per-class cardinality and per-attribute
//! NDV / min–max / null-fraction sketches.
//!
//! The statistics plane is fed *opportunistically*: nothing ever scans the
//! store just to build statistics. Instead, the compiled scan executor and
//! the view population paths — work that is already touching every row —
//! drop what they see into this registry when profiling is enabled
//! ([`crate::metrics::profiling_enabled`]). The sketches are deliberately
//! cheap: NDV is a 64-register HyperLogLog over an FNV-1a hash of the
//! value's canonical rendering (≈ 13% relative error, 64 bytes per
//! attribute), min/max ride on [`Value`]'s total order, and null fraction
//! is two integers.
//!
//! Staleness is handled the same way as the compiled engine's resolution
//! caches: every observation carries the source's generation, and a
//! generation mismatch resets the class's statistics before the new
//! observation lands. A future cost model reads the typed [`Statistics`]
//! snapshot; today `ovq .stats` and `harness` surface it for humans.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::symbol::Symbol;
use crate::value::Value;

/// HyperLogLog register count (m). 64 registers ⇒ ~13% NDV error — plenty
/// for join-ordering-class decisions at 64 bytes per attribute.
const HLL_REGS: usize = 64;
/// Bias-correction constant α for m = 64: 0.7213 / (1 + 1.079/64).
const HLL_ALPHA: f64 = 0.709_2;

/// FNV-1a 64 (same algorithm as `ov_query::fingerprint`; duplicated here
/// because the dependency points the other way).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cheap per-attribute sketch: sampled rows, nulls, HLL registers for
/// NDV, and the running min/max.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrSketch {
    /// Values observed (the sketch's sample size, not the class
    /// cardinality).
    pub rows: u64,
    /// Observed values that were `Null`.
    pub nulls: u64,
    /// HyperLogLog registers over non-null values.
    regs: [u8; HLL_REGS],
    /// Smallest non-null value observed.
    pub min: Option<Value>,
    /// Largest non-null value observed.
    pub max: Option<Value>,
}

impl Default for AttrSketch {
    fn default() -> AttrSketch {
        AttrSketch {
            rows: 0,
            nulls: 0,
            regs: [0; HLL_REGS],
            min: None,
            max: None,
        }
    }
}

impl AttrSketch {
    /// Folds one observed value into the sketch.
    pub fn observe(&mut self, v: &Value) {
        self.rows += 1;
        if matches!(v, Value::Null) {
            self.nulls += 1;
            return;
        }
        let h = fnv1a(v.to_string().as_bytes());
        let reg = (h & (HLL_REGS as u64 - 1)) as usize;
        // Rank of the first set bit in the remaining 58 bits (+1), capped
        // so the u8 register never overflows.
        let rest = h >> 6;
        let rank = (rest.trailing_zeros() + 1).min(58) as u8;
        if rank > self.regs[reg] {
            self.regs[reg] = rank;
        }
        let better_min = self.min.as_ref().is_none_or(|m| v < m);
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self.max.as_ref().is_none_or(|m| v > m);
        if better_max {
            self.max = Some(v.clone());
        }
    }

    /// The estimated number of distinct non-null values.
    pub fn ndv(&self) -> u64 {
        let m = HLL_REGS as f64;
        let mut sum = 0.0f64;
        let mut zeros = 0u32;
        for &r in &self.regs {
            sum += 2f64.powi(-(r as i32));
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = HLL_ALPHA * m * m / sum;
        let est = if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting over empty registers.
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        est.round() as u64
    }

    /// The fraction of observed values that were null (0.0 when nothing
    /// was observed).
    pub fn null_fraction(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.nulls as f64 / self.rows as f64
        }
    }
}

/// Mutable statistics state for one class, guarded by its generation.
#[derive(Clone, Debug, Default, PartialEq)]
struct ClassStatsInner {
    /// The source generation the statistics were observed under.
    generation: u64,
    /// Last observed extent size, if any scan reported one.
    cardinality: Option<u64>,
    /// Per-attribute sketches.
    attrs: BTreeMap<Symbol, AttrSketch>,
}

/// Statistics for one class. Observations carry the source's resolution
/// generation; a mismatch resets everything first (same invalidation
/// discipline as the compiled engine's resolution caches).
#[derive(Debug, Default)]
pub struct ClassStats {
    inner: RwLock<ClassStatsInner>,
}

impl ClassStats {
    fn fresh<'a>(
        inner: &'a mut parking_lot::RwLockWriteGuard<'_, ClassStatsInner>,
        generation: u64,
    ) -> &'a mut ClassStatsInner {
        if inner.generation != generation {
            **inner = ClassStatsInner {
                generation,
                ..ClassStatsInner::default()
            };
        }
        inner
    }

    /// Records the class's extent size as seen by a full scan or a
    /// completed population.
    pub fn note_cardinality(&self, generation: u64, n: u64) {
        let mut inner = self.inner.write();
        Self::fresh(&mut inner, generation).cardinality = Some(n);
    }

    /// Folds a column of observed attribute values into the class's
    /// sketch for `attr`. `None` entries (rows the scan could not probe)
    /// are skipped, not counted as nulls.
    pub fn observe_column<'v>(
        &self,
        generation: u64,
        attr: Symbol,
        values: impl IntoIterator<Item = Option<&'v Value>>,
    ) {
        let mut inner = self.inner.write();
        let fresh = Self::fresh(&mut inner, generation);
        let sketch = fresh.attrs.entry(attr).or_default();
        for v in values.into_iter().flatten() {
            sketch.observe(v);
        }
    }

    /// A point-in-time copy of this class's statistics.
    pub fn snapshot(&self) -> ClassStatistics {
        let inner = self.inner.read();
        ClassStatistics {
            generation: inner.generation,
            cardinality: inner.cardinality,
            attrs: inner
                .attrs
                .iter()
                .map(|(name, s)| {
                    (
                        *name,
                        AttrStatistics {
                            rows: s.rows,
                            nulls: s.nulls,
                            ndv: s.ndv(),
                            null_fraction: s.null_fraction(),
                            min: s.min.clone(),
                            max: s.max.clone(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// The process-wide statistics registry, keyed by class name.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    classes: RwLock<BTreeMap<Symbol, Arc<ClassStats>>>,
}

impl StatsRegistry {
    /// An empty registry (the process normally uses [`stats`]).
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// The statistics slot for `class`, created on first use. Hot call
    /// sites should hold the returned `Arc` for the duration of a scan.
    pub fn class(&self, class: Symbol) -> Arc<ClassStats> {
        if let Some(c) = self.classes.read().get(&class) {
            return c.clone();
        }
        self.classes.write().entry(class).or_default().clone()
    }

    /// Drops every class's statistics.
    pub fn clear(&self) {
        self.classes.write().clear();
    }

    /// A typed point-in-time copy of everything observed so far.
    pub fn snapshot(&self) -> Statistics {
        Statistics {
            classes: self
                .classes
                .read()
                .iter()
                .map(|(name, c)| (*name, c.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide statistics registry.
pub fn stats() -> &'static StatsRegistry {
    static GLOBAL: OnceLock<StatsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(StatsRegistry::default)
}

/// A typed snapshot of the statistics plane — the interface a cost model
/// consumes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Statistics {
    /// Per-class statistics by class name.
    pub classes: BTreeMap<Symbol, ClassStatistics>,
}

/// Point-in-time statistics for one class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassStatistics {
    /// The source generation the statistics were observed under.
    pub generation: u64,
    /// Last observed extent size, when a scan reported one.
    pub cardinality: Option<u64>,
    /// Per-attribute estimates.
    pub attrs: BTreeMap<Symbol, AttrStatistics>,
}

/// Point-in-time estimates for one attribute of one class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttrStatistics {
    /// Values the sketch observed (sample size).
    pub rows: u64,
    /// Observed nulls.
    pub nulls: u64,
    /// Estimated distinct non-null values.
    pub ndv: u64,
    /// `nulls / rows` (0.0 when nothing observed).
    pub null_fraction: f64,
    /// Smallest non-null value observed.
    pub min: Option<Value>,
    /// Largest non-null value observed.
    pub max: Option<Value>,
}

impl Statistics {
    /// Serializes the statistics as a JSON document keyed by class name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (class, c)) in self.classes.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n  \"{class}\": {{\"generation\": {}, \"cardinality\": {}, \"attrs\": {{",
                c.generation,
                match c.cardinality {
                    Some(n) => n.to_string(),
                    None => "null".to_owned(),
                },
            );
            for (j, (attr, a)) in c.attrs.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(
                    out,
                    "{sep}\"{attr}\": {{\"rows\": {}, \"nulls\": {}, \"ndv\": {}, \
                     \"null_fraction\": {:.4}, \"min\": {}, \"max\": {}}}",
                    a.rows,
                    a.nulls,
                    a.ndv,
                    a.null_fraction,
                    json_value(&a.min),
                    json_value(&a.max),
                );
            }
            out.push_str("}}");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Renders an optional min/max value as a JSON string (or `null`).
fn json_value(v: &Option<Value>) -> String {
    match v {
        Some(v) => {
            let rendered = v.to_string();
            let mut out = String::with_capacity(rendered.len() + 2);
            out.push('"');
            for c in rendered.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        None => "null".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn sketch_tracks_min_max_nulls() {
        let mut s = AttrSketch::default();
        for v in [
            Value::Int(5),
            Value::Int(2),
            Value::Null,
            Value::Int(9),
            Value::Int(2),
        ] {
            s.observe(&v);
        }
        assert_eq!(s.rows, 5);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.min, Some(Value::Int(2)));
        assert_eq!(s.max, Some(Value::Int(9)));
        assert!((s.null_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn ndv_estimate_is_in_the_right_ballpark() {
        let mut s = AttrSketch::default();
        for i in 0..1_000 {
            // 100 distinct values, observed 10× each.
            s.observe(&Value::Int(i % 100));
        }
        let ndv = s.ndv();
        assert!(
            (60..=150).contains(&ndv),
            "NDV estimate {ndv} too far from 100"
        );
        // Low-cardinality attributes estimate (near-)exactly via the
        // small-range correction.
        let mut s2 = AttrSketch::default();
        for i in 0..1_000 {
            s2.observe(&Value::Int(i % 3));
        }
        assert_eq!(s2.ndv(), 3);
        assert_eq!(AttrSketch::default().ndv(), 0);
    }

    #[test]
    fn generation_mismatch_resets_class_stats() {
        let c = ClassStats::default();
        c.note_cardinality(1, 100);
        c.observe_column(1, sym("Age"), [Some(&Value::Int(1))]);
        let snap = c.snapshot();
        assert_eq!(snap.cardinality, Some(100));
        assert_eq!(snap.attrs[&sym("Age")].rows, 1);
        // A new generation wipes the old observations before landing.
        c.observe_column(2, sym("Age"), [Some(&Value::Int(7))]);
        let snap = c.snapshot();
        assert_eq!(snap.generation, 2);
        assert_eq!(snap.cardinality, None, "stale cardinality dropped");
        assert_eq!(snap.attrs[&sym("Age")].rows, 1);
        assert_eq!(snap.attrs[&sym("Age")].min, Some(Value::Int(7)));
    }

    #[test]
    fn none_entries_are_skipped_not_null() {
        let c = ClassStats::default();
        c.observe_column(1, sym("Age"), [Some(&Value::Int(1)), None, None]);
        let a = &c.snapshot().attrs[&sym("Age")];
        assert_eq!(a.rows, 1);
        assert_eq!(a.nulls, 0);
    }

    #[test]
    fn registry_snapshot_and_json() {
        let r = StatsRegistry::new();
        r.class(sym("Person")).note_cardinality(1, 42);
        r.class(sym("Person")).observe_column(
            1,
            sym("Name"),
            [Some(&Value::str("a")), Some(&Value::Null)],
        );
        let snap = r.snapshot();
        assert_eq!(snap.classes[&sym("Person")].cardinality, Some(42));
        let json = snap.to_json();
        assert!(json.contains("\"cardinality\": 42"), "got: {json}");
        assert!(json.contains("\"Name\""), "got: {json}");
        assert!(json.contains("\"null_fraction\": 0.5000"), "got: {json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        r.clear();
        assert!(r.snapshot().classes.is_empty());
    }
}
