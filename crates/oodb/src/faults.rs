//! Deterministic fault injection: a dependency-free failpoint registry.
//!
//! The view pipeline built in PRs 1–3 assumes every store mutation, journal
//! read, index lookup, and population recompute succeeds. A production-scale
//! system (ROADMAP north star) must *prove* it survives when they do not —
//! which requires making them fail **on demand and deterministically**. This
//! module is that switchboard: code declares named failpoint *sites* with
//! [`failpoint!`](crate::failpoint), and a test (or the chaos harness mode,
//! or `ovq .faults`) arms a site with a *schedule* — fail at exactly the Nth
//! hit, or with a seeded-RNG probability — and an *action*: return a typed
//! error, sleep, or panic.
//!
//! ## Design
//!
//! * **Disabled path is one relaxed atomic load**, the same discipline as
//!   [`crate::trace`] — proved by `disabled_path_touches_nothing` below.
//!   The registry mutex is touched only while some site is armed.
//! * **Deterministic.** Probability mode draws from a per-site SplitMix64
//!   stream seeded from `global_seed ^ fnv(site)`; each hit atomically
//!   consumes one draw, so a given seed produces the same multiset of
//!   fire/no-fire decisions per site regardless of thread interleaving.
//! * **Typed.** A firing site yields [`InjectedFault`], a real
//!   `std::error::Error` carried by [`OodbError::Fault`](crate::OodbError)
//!   — so injected failures travel the same `source()` chains as organic
//!   ones and degradation logic can classify them as transient.
//! * **Observable.** Every fire bumps `faults.injected` in
//!   [`crate::metrics`] and emits a `fault.injected` span into the flight
//!   recorder.
//!
//! ## Sites
//!
//! | site | layer |
//! |---|---|
//! | `store.insert` / `store.update` / `store.set_field` / `store.remove` | store mutations |
//! | `store.changes_since` | journal delta serving |
//! | `store.index_lookup` | secondary-index lookups |
//! | `query.scan_chunk` | parallel scan chunks |
//! | `view.population_recompute` | virtual-class population recompute |
//! | `wal.append` | WAL record append (fails before any bytes are written) |
//! | `wal.torn_write` | WAL append that writes only a partial frame (crash mid-write) |
//! | `wal.fsync` | WAL group-commit fsync |
//! | `checkpoint.write` | snapshot temp-file write |
//! | `checkpoint.rename` | snapshot atomic rename (crash before commit) |

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::OodbError;

/// Master switch: `true` iff at least one site is armed. Reading it is the
/// *entire* cost of the disabled path.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Is any failpoint armed? One relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// What an armed failpoint does when its schedule fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an [`InjectedFault`] error from the site.
    Error,
    /// Sleep for the given duration, then succeed (latency injection).
    Delay(Duration),
    /// Panic at the site (exercises `catch_unwind` conversion paths).
    Panic,
}

/// When an armed failpoint fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSchedule {
    /// Fire on exactly the `nth` hit (1-based) after arming.
    Nth(u64),
    /// Fire on every hit from the `nth` (1-based) onward.
    From(u64),
    /// Fire independently on each hit with probability `p`, drawn from the
    /// site's seeded stream.
    Probability(f64),
}

/// The error produced by a firing failpoint.
///
/// Deliberately a struct (not a variant of [`OodbError`] directly) so that
/// `OodbError::Fault(InjectedFault)` has a real `source()` and the unified
/// `objects_and_views::Error` chain bottoms out in a distinct type that
/// retry logic can `downcast_ref` for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: &'static str,
    /// The hit ordinal (1-based) at which it fired.
    pub hit: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at `{}` (hit #{})", self.site, self.hit)
    }
}

impl std::error::Error for InjectedFault {}

impl From<InjectedFault> for OodbError {
    fn from(f: InjectedFault) -> OodbError {
        OodbError::Fault(f)
    }
}

/// SplitMix64 step — the same generator as the vendored `rand` shim, inlined
/// here so the registry stays dependency-free inside `ov-oodb`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site name: folds the site into the seed so distinct
/// sites armed from one global seed draw from distinct streams.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01B3);
    }
    h
}

#[derive(Clone, Debug)]
struct Site {
    schedule: FaultSchedule,
    action: FaultAction,
    /// Hits since this site was armed.
    hits: u64,
    /// Times the schedule fired.
    fired: u64,
    /// Per-site RNG stream (probability mode).
    rng: u64,
}

#[derive(Default)]
struct Registry {
    /// Global seed the per-site streams derive from.
    seed: u64,
    sites: BTreeMap<&'static str, Site>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

/// Sets the global seed for probability-mode streams. Sites armed *after*
/// this call derive their stream from the new seed; re-arming a site
/// restarts its stream. Defaults to 0.
pub fn set_seed(seed: u64) {
    registry().lock().seed = seed;
}

/// Arms `site` with a schedule and action. Re-arming replaces the previous
/// configuration and resets the site's hit count and RNG stream.
pub fn arm(site: &'static str, schedule: FaultSchedule, action: FaultAction) {
    if let FaultSchedule::Probability(p) = schedule {
        assert!((0.0..=1.0).contains(&p), "fault probability out of [0,1]");
    }
    let mut reg = registry().lock();
    let rng = reg.seed ^ fnv1a(site);
    reg.sites.insert(
        site,
        Site {
            schedule,
            action,
            hits: 0,
            fired: 0,
            rng,
        },
    );
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms `site`. Other sites stay armed.
pub fn disarm(site: &str) {
    let mut reg = registry().lock();
    reg.sites.remove(site);
    if reg.sites.is_empty() {
        ARMED.store(false, Ordering::Relaxed);
    }
}

/// Disarms every site and restores the zero-cost disabled path.
pub fn clear() {
    let mut reg = registry().lock();
    reg.sites.clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Per-site status: `(site, hits, fired)` for every armed site, sorted by
/// name. For `.faults status` and test assertions.
pub fn status() -> Vec<(&'static str, u64, u64)> {
    registry()
        .lock()
        .sites
        .iter()
        .map(|(name, s)| (*name, s.hits, s.fired))
        .collect()
}

/// The slow path of [`hit`]: decide whether the armed schedule fires, and
/// apply the action. Out of line so the armed check inlines tight.
#[cold]
fn hit_armed(site: &'static str) -> Result<(), InjectedFault> {
    // Decide under the lock; act (sleep / panic) outside it.
    let decision = {
        let mut reg = registry().lock();
        let Some(s) = reg.sites.get_mut(site) else {
            return Ok(());
        };
        s.hits += 1;
        let fire = match s.schedule {
            FaultSchedule::Nth(n) => s.hits == n,
            FaultSchedule::From(n) => s.hits >= n,
            FaultSchedule::Probability(p) => {
                let unit = (splitmix64(&mut s.rng) >> 11) as f64 / (1u64 << 53) as f64;
                unit < p
            }
        };
        if !fire {
            return Ok(());
        }
        s.fired += 1;
        (s.action, s.hits)
    };
    let (action, hits) = decision;
    crate::metric_counter!("faults.injected").inc();
    let _span = crate::span!("fault.injected", site = site, hit = hits);
    match action {
        FaultAction::Error => Err(InjectedFault { site, hit: hits }),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FaultAction::Panic => panic!("injected panic at failpoint `{site}` (hit #{hits})"),
    }
}

/// Evaluates the failpoint `site`: a no-op unless some site is armed.
/// Prefer the [`failpoint!`](crate::failpoint) macro at call sites.
#[inline(always)]
pub fn hit(site: &'static str) -> Result<(), InjectedFault> {
    if !enabled() {
        return Ok(());
    }
    hit_armed(site)
}

/// Declares a failpoint site. Expands to a `?`-propagated check: a no-op
/// (one relaxed atomic load) unless a fault schedule is armed. The
/// enclosing function's error type must implement `From<OodbError>` (or be
/// `OodbError` itself).
///
/// ```
/// use ov_oodb::{failpoint, OodbError};
/// fn mutate() -> Result<(), OodbError> {
///     failpoint!("doc.example");
///     Ok(())
/// }
/// assert!(mutate().is_ok());
/// ```
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        if $crate::faults::enabled() {
            $crate::faults::hit($site).map_err($crate::OodbError::Fault)?;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The registry is process-global; tests serialize here so they cannot
    /// observe each other's schedules (same pattern as `trace::tests`).
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_path_touches_nothing() {
        let _l = test_lock();
        clear();
        // With nothing armed, hit() must not create registry entries or
        // count hits — the whole path is the one atomic load.
        assert!(hit("faults.test.cold").is_ok());
        assert!(status().is_empty());
        assert!(!enabled());
    }

    #[test]
    fn nth_schedule_fires_exactly_once() {
        let _l = test_lock();
        clear();
        arm("faults.test.nth", FaultSchedule::Nth(3), FaultAction::Error);
        assert!(hit("faults.test.nth").is_ok());
        assert!(hit("faults.test.nth").is_ok());
        let e = hit("faults.test.nth").unwrap_err();
        assert_eq!(e.site, "faults.test.nth");
        assert_eq!(e.hit, 3);
        assert!(hit("faults.test.nth").is_ok());
        assert_eq!(status(), vec![("faults.test.nth", 4, 1)]);
        clear();
    }

    #[test]
    fn from_schedule_fires_repeatedly() {
        let _l = test_lock();
        clear();
        arm(
            "faults.test.from",
            FaultSchedule::From(2),
            FaultAction::Error,
        );
        assert!(hit("faults.test.from").is_ok());
        assert!(hit("faults.test.from").is_err());
        assert!(hit("faults.test.from").is_err());
        clear();
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let _l = test_lock();
        let run = |seed: u64| -> Vec<bool> {
            clear();
            set_seed(seed);
            arm(
                "faults.test.prob",
                FaultSchedule::Probability(0.5),
                FaultAction::Error,
            );
            (0..64).map(|_| hit("faults.test.prob").is_err()).collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must reproduce the same decisions");
        assert_ne!(a, c, "different seeds must diverge");
        assert!(a.iter().any(|&f| f) && !a.iter().all(|&f| f));
        clear();
        set_seed(0);
    }

    #[test]
    fn delay_action_succeeds_after_sleeping() {
        let _l = test_lock();
        clear();
        arm(
            "faults.test.delay",
            FaultSchedule::Nth(1),
            FaultAction::Delay(Duration::from_millis(5)),
        );
        let t0 = std::time::Instant::now();
        assert!(hit("faults.test.delay").is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(5));
        clear();
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _l = test_lock();
        clear();
        arm(
            "faults.test.panic",
            FaultSchedule::Nth(1),
            FaultAction::Panic,
        );
        let r = std::panic::catch_unwind(|| {
            let _ = hit("faults.test.panic");
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("faults.test.panic"));
        clear();
    }

    #[test]
    fn disarm_one_site_keeps_others_armed() {
        let _l = test_lock();
        clear();
        arm("faults.test.a", FaultSchedule::Nth(1), FaultAction::Error);
        arm("faults.test.b", FaultSchedule::Nth(1), FaultAction::Error);
        disarm("faults.test.a");
        assert!(enabled());
        assert!(hit("faults.test.a").is_ok());
        assert!(hit("faults.test.b").is_err());
        clear();
        assert!(!enabled());
    }

    #[test]
    fn failpoint_macro_propagates_as_oodb_error() {
        let _l = test_lock();
        clear();
        fn site() -> crate::Result<()> {
            failpoint!("faults.test.macro");
            Ok(())
        }
        assert!(site().is_ok());
        arm(
            "faults.test.macro",
            FaultSchedule::Nth(1),
            FaultAction::Error,
        );
        match site() {
            Err(OodbError::Fault(f)) => assert_eq!(f.site, "faults.test.macro"),
            other => panic!("expected injected fault, got {other:?}"),
        }
        clear();
    }
}
