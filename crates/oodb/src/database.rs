//! A database: a named schema plus an object store plus named roots.
//!
//! This is the unit the view mechanism imports from: "In general, there can
//! be many databases in a system. … one database can use data from other
//! databases via *import* statements" (§3).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use crate::durable::DurableCore;
use crate::error::{OodbError, Result};
use crate::ids::{ClassId, Oid};
use crate::schema::{AttrDef, Schema};
use crate::store::{Store, StoredObject};
use crate::symbol::Symbol;
use crate::types::{ClassGraph, Type};
use crate::value::{Tuple, Value};
use crate::wal::{Durability, WalRecord};

/// Referential action applied when deleting an object (DECISION: the paper
/// does not define deletion semantics; these are the standard choices).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeleteMode {
    /// Delete without checking; references become dangling.
    #[default]
    Unchecked,
    /// Refuse the deletion while any object still references the target.
    Restrict,
    /// Replace every reference to the target with `null`, then delete.
    Nullify,
}

/// Replaces references to `target` with null, recursively through tuples,
/// sets and lists.
fn nullify_refs(v: &Value, target: Oid) -> Value {
    match v {
        Value::Oid(o) if *o == target => Value::Null,
        Value::Tuple(t) => Value::Tuple(Tuple(
            t.iter()
                .map(|(n, fv)| (n, nullify_refs(fv, target)))
                .collect(),
        )),
        Value::Set(s) => Value::Set(s.iter().map(|e| nullify_refs(e, target)).collect()),
        Value::List(l) => Value::List(l.iter().map(|e| nullify_refs(e, target)).collect()),
        other => other.clone(),
    }
}

/// A named database.
#[derive(Clone, Debug)]
pub struct Database {
    /// The database's name (how imports refer to it).
    pub name: Symbol,
    /// The class schema.
    pub schema: Schema,
    /// The object store.
    pub store: Store,
    /// Named root objects (O₂'s persistence roots; handy in examples).
    names: HashMap<Symbol, Oid>,
}

impl Database {
    /// An empty database called `name`.
    pub fn new(name: Symbol) -> Database {
        Database {
            name,
            schema: Schema::new(),
            store: Store::new(),
            names: HashMap::new(),
        }
    }

    /// Opens (or creates) a **durable** database rooted at the directory
    /// `dir`: loads the latest snapshot if one exists, replays the WAL
    /// tail, rebuilds secondary indexes, re-seats the journal floor at the
    /// recovered version, and attaches the durability core so every
    /// subsequent mutation is redo-logged. The §5.1 imaginary identity
    /// tables recovered alongside are exposed via
    /// [`Database::durable_core`] for views to re-adopt at bind time.
    pub fn open(name: Symbol, dir: &Path, durability: Durability) -> Result<Database> {
        let t0 = std::time::Instant::now();
        let mut span = crate::span!("recovery.replay", db = name);
        let (core, snapshot, tail) = DurableCore::open(dir, durability)?;
        let mut db = Database::new(name);
        if let Some(img) = snapshot {
            db.schema = img.restore_schema()?;
            db.store.restore(img.objects, img.store_version);
            db.names = img.names.into_iter().collect();
            // Indexes are derived: rebuild from the persisted definitions.
            // The durability core is not attached yet, so nothing re-logs.
            for (class, attr) in img.index_defs {
                db.store.create_index(class, attr);
            }
        }
        let mut replayed = 0u64;
        for (lsn, rec) in tail {
            db.apply_wal_record(rec).map_err(|e| {
                OodbError::corrupt(format!("recovery: replay of LSN {lsn} failed: {e}"))
            })?;
            replayed += 1;
        }
        // A Remove in the WAL tail does not carry the name-map cleanup its
        // original `delete_object` performed; drop bindings to dead oids.
        let store = &db.store;
        db.names.retain(|_, oid| store.get(*oid).is_some());
        db.store.seal_recovery();
        db.store.attach_durable(core);
        crate::metric_counter!("recovery.replayed_records").add(replayed);
        crate::metric_histogram!("recovery_ns").record(t0.elapsed().as_nanos() as u64);
        span.field("replayed", replayed);
        span.field("version", db.store.version());
        Ok(db)
    }

    /// Applies one WAL record during recovery replay (never re-logged:
    /// the durability core is attached only after replay finishes).
    /// Identity records are a no-op here — [`DurableCore::open`] already
    /// folded them into the identity mirror.
    fn apply_wal_record(&mut self, rec: WalRecord) -> Result<()> {
        match rec {
            WalRecord::Insert { oid, class, value } => {
                self.store.insert_with_oid(oid, class, value);
            }
            WalRecord::Update { oid, value } => self.store.update(oid, value)?,
            WalRecord::SetField { oid, name, value } => self.store.set_field(oid, name, value)?,
            WalRecord::Remove { oid } => {
                self.store.remove(oid)?;
            }
            WalRecord::CreateIndex { class, attr } => self.store.create_index(class, attr),
            WalRecord::DropIndex { class, attr } => {
                self.store.drop_index(class, attr);
            }
            WalRecord::NameBind { name, oid } => {
                self.names.insert(name, oid);
            }
            WalRecord::AddClass {
                name,
                parents,
                attrs,
            } => {
                self.schema.add_class(name, &parents, attrs)?;
            }
            WalRecord::AddAttr { class, def } => self.schema.add_attr(class, def)?,
            WalRecord::IdentityAssign { .. } | WalRecord::IdentityDrop { .. } => {}
        }
        Ok(())
    }

    /// The durability core, when this database was opened with
    /// [`Database::open`]. Views hold a clone to log identity assignments.
    pub fn durable_core(&self) -> Option<Arc<DurableCore>> {
        self.store.durable().cloned()
    }

    /// Writes a snapshot checkpoint of the current state and truncates the
    /// WAL behind it. Errors if the database is not durable.
    pub fn checkpoint(&self) -> Result<()> {
        let core = self.store.durable().ok_or_else(|| OodbError::Io {
            context: "checkpoint".to_string(),
            message: "database was not opened durably".to_string(),
        })?;
        core.checkpoint(|img| {
            img.name = self.name;
            img.store_version = self.store.version();
            img.capture_schema(&self.schema);
            img.objects = self
                .store
                .sorted_oids()
                .into_iter()
                .filter_map(|o| self.store.get(o).cloned())
                .collect();
            img.names = self.names();
            img.index_defs = self.store.index_defs();
        })
    }

    /// Creates a class; see [`Schema::add_class`].
    ///
    /// On a durable database the DDL is validated against a trial copy of
    /// the schema, WAL-logged, and only then applied — the log never
    /// contains a record that would fail to replay, and a failed append
    /// leaves the schema untouched.
    pub fn create_class(
        &mut self,
        name: Symbol,
        parents: &[ClassId],
        attrs: Vec<AttrDef>,
    ) -> Result<ClassId> {
        if let Some(core) = self.store.durable().cloned() {
            let mut trial = self.schema.clone();
            let id = trial.add_class(name, parents, attrs.clone())?;
            core.log(&WalRecord::AddClass {
                name,
                parents: parents.to_vec(),
                attrs,
            })?;
            self.schema = trial;
            Ok(id)
        } else {
            self.schema.add_class(name, parents, attrs)
        }
    }

    /// Adds (or redefines) an attribute on a class; see
    /// [`Schema::add_attr`]. WAL-logged on durable databases — callers
    /// should prefer this over mutating [`Database::schema`] directly so
    /// schema DDL survives a crash.
    pub fn add_attr(&mut self, class: ClassId, def: AttrDef) -> Result<()> {
        if let Some(core) = self.store.durable().cloned() {
            let mut trial = self.schema.clone();
            trial.add_attr(class, def.clone())?;
            core.log(&WalRecord::AddAttr { class, def })?;
            self.schema = trial;
            Ok(())
        } else {
            self.schema.add_attr(class, def)
        }
    }

    /// Creates a class naming its parents.
    pub fn create_class_named(
        &mut self,
        name: Symbol,
        parent_names: &[Symbol],
        attrs: Vec<AttrDef>,
    ) -> Result<ClassId> {
        let parents: Vec<ClassId> = parent_names
            .iter()
            .map(|&p| self.schema.require_class(p))
            .collect::<Result<_>>()?;
        self.schema.add_class(name, &parents, attrs)
    }

    /// Creates an object *real* in `class` (unique root rule) with the given
    /// stored attribute values. Fields are validated against the class's
    /// stored attribute types; missing stored attributes are filled with
    /// `null` (DECISION: the paper is silent on partial objects; O₂ allowed
    /// undefined values), unknown fields are rejected.
    pub fn create_object(&mut self, class: ClassId, value: Value) -> Result<Oid> {
        let tuple = match value {
            Value::Tuple(t) => t,
            other => {
                // "When the value is not a tuple … it can be treated as a
                // tuple with a single field" (§2); we follow that literally
                // with a field named `Value`.
                Tuple::from_fields([(Symbol::new("Value"), other)])
            }
        };
        let stored = self.schema.stored_attr_types(class);
        for (name, v) in tuple.iter() {
            let ty = stored.get(&name).ok_or(OodbError::UnknownAttr {
                class: self.schema.class(class).name,
                attr: name,
            })?;
            self.check_value(v, ty, &format!("attribute `{name}`"))?;
        }
        let mut full = tuple;
        for name in stored.keys() {
            if !full.has(*name) {
                full.set(*name, Value::Null);
            }
        }
        // Before the insert: a firing failpoint rejects the creation with
        // no store state touched. A WAL append failure behaves the same
        // way (redo logging happens before the in-memory apply).
        crate::failpoint!("store.insert");
        self.store.try_insert(class, full)
    }

    /// Reads a stored attribute of `oid`, resolving the attribute name along
    /// the hierarchy. Computed attributes cannot be read here — evaluate
    /// them with `ov-query`.
    pub fn stored_attr(&self, oid: Oid, name: Symbol) -> Result<&Value> {
        let obj = self.store.require(oid)?;
        let class_name = self.schema.class(obj.class).name;
        let visible = self.schema.visible_attrs(obj.class);
        match visible.get(&name) {
            None => Err(OodbError::UnknownAttr {
                class: class_name,
                attr: name,
            }),
            Some((_, def)) if !def.is_stored() => Err(OodbError::NotStored {
                class: class_name,
                attr: name,
            }),
            Some(_) => Ok(obj.value.get(name).unwrap_or(&Value::Null)),
        }
    }

    /// Updates a stored attribute of `oid`, type-checked.
    pub fn set_attr(&mut self, oid: Oid, name: Symbol, value: Value) -> Result<()> {
        let class = self.store.require(oid)?.class;
        let class_name = self.schema.class(class).name;
        let stored = self.schema.stored_attr_types(class);
        match stored.get(&name) {
            None => {
                // Either unknown or computed.
                if self.schema.visible_attrs(class).contains_key(&name) {
                    Err(OodbError::NotStored {
                        class: class_name,
                        attr: name,
                    })
                } else {
                    Err(OodbError::UnknownAttr {
                        class: class_name,
                        attr: name,
                    })
                }
            }
            Some(ty) => {
                self.check_value(&value, ty, &format!("attribute `{name}`"))?;
                self.store.set_field(oid, name, value)
            }
        }
    }

    /// Deletes an object. References to it elsewhere become dangling
    /// (DECISION: the paper does not define deletion semantics; we expose
    /// [`Database::dangling_refs`] as an integrity check and
    /// [`Database::delete_object_with`] for checked deletion).
    pub fn delete_object(&mut self, oid: Oid) -> Result<StoredObject> {
        self.names.retain(|_, &mut o| o != oid);
        self.store.remove(oid)
    }

    /// Deletes an object under a referential action.
    pub fn delete_object_with(&mut self, oid: Oid, mode: DeleteMode) -> Result<StoredObject> {
        match mode {
            DeleteMode::Unchecked => {}
            DeleteMode::Restrict => {
                let holder = self.store.iter().find(|obj| {
                    obj.oid != oid && {
                        let mut oids = Vec::new();
                        for (_, v) in obj.value.iter() {
                            v.collect_oids(&mut oids);
                        }
                        oids.contains(&oid)
                    }
                });
                if let Some(h) = holder {
                    return Err(OodbError::BadReference {
                        context: format!("delete restricted: object {} still references it", h.oid),
                        oid,
                    });
                }
            }
            DeleteMode::Nullify => {
                // Replace every reference to `oid` with null, everywhere.
                let holders: Vec<Oid> = self
                    .store
                    .iter()
                    .filter(|obj| {
                        let mut oids = Vec::new();
                        for (_, v) in obj.value.iter() {
                            v.collect_oids(&mut oids);
                        }
                        oids.contains(&oid)
                    })
                    .map(|obj| obj.oid)
                    .collect();
                for h in holders {
                    let fields: Vec<(Symbol, Value)> = self
                        .store
                        .require(h)?
                        .value
                        .iter()
                        .map(|(n, v)| (n, nullify_refs(v, oid)))
                        .collect();
                    for (n, v) in fields {
                        self.store.set_field(h, n, v)?;
                    }
                }
            }
        }
        self.delete_object(oid)
    }

    /// Binds a persistent name to an object.
    pub fn name_object(&mut self, name: Symbol, oid: Oid) -> Result<()> {
        self.store.require(oid)?;
        if self.names.contains_key(&name) {
            return Err(OodbError::DuplicateName(name));
        }
        if let Some(core) = self.store.durable() {
            core.log(&WalRecord::NameBind { name, oid })?;
        }
        self.names.insert(name, oid);
        Ok(())
    }

    /// Resolves a persistent name.
    pub fn named(&self, name: Symbol) -> Result<Oid> {
        self.names
            .get(&name)
            .copied()
            .ok_or(OodbError::UnknownName(name))
    }

    /// All `(name, oid)` bindings, name-ordered.
    pub fn names(&self) -> Vec<(Symbol, Oid)> {
        let mut v: Vec<(Symbol, Oid)> = self.names.iter().map(|(n, o)| (*n, *o)).collect();
        v.sort();
        v
    }

    /// The *deep* extent of `class`: objects real in it or in any
    /// (transitive) subclass, in oid order. This is what a class denotes in
    /// a query.
    pub fn deep_extent(&self, class: ClassId) -> Vec<Oid> {
        let mut out: Vec<Oid> = self.store.extent(class).collect();
        for sub in self.schema.strict_descendants(class) {
            out.extend(self.store.extent(sub));
        }
        out.sort();
        out
    }

    /// Is `oid` a (possibly virtual) member of `class`?
    pub fn is_member(&self, oid: Oid, class: ClassId) -> bool {
        self.store
            .get(oid)
            .is_some_and(|o| self.schema.is_subclass(o.class, class))
    }

    /// The database's mutation version (see [`Store::version`]).
    pub fn version(&self) -> u64 {
        self.store.version()
    }

    /// Checks `value` against `ty`, including class-membership of oid
    /// references.
    pub fn check_value(&self, value: &Value, ty: &Type, context: &str) -> Result<()> {
        if self.value_conforms(value, ty) {
            Ok(())
        } else {
            Err(OodbError::TypeMismatch {
                context: context.to_string(),
                expected: format!("{}", ty.display(&self.schema)),
                found: format!("{value} ({})", value.kind()),
            })
        }
    }

    /// Does `value` inhabit `ty`? `null` inhabits every type.
    pub fn value_conforms(&self, value: &Value, ty: &Type) -> bool {
        match (value, ty) {
            (Value::Null, _) => true,
            (_, Type::Any) => true,
            (_, Type::Nothing) => false,
            (Value::Bool(_), Type::Bool) => true,
            (Value::Int(_), Type::Int) | (Value::Int(_), Type::Float) => true,
            (Value::Float(_), Type::Float) => true,
            (Value::Str(_), Type::Str) => true,
            (Value::Oid(o), Type::Class(c)) => self.is_member(*o, *c),
            (Value::Tuple(t), Type::Tuple(fields)) => fields
                .iter()
                .all(|(name, ft)| t.get(*name).is_none_or(|v| self.value_conforms(v, ft))),
            (Value::Set(s), Type::Set(et)) => s.iter().all(|v| self.value_conforms(v, et)),
            (Value::List(l), Type::List(et)) => l.iter().all(|v| self.value_conforms(v, et)),
            _ => false,
        }
    }

    /// Creates secondary indexes on `attr` for `class` **and every
    /// subclass** (indexes cover shallow extents; deep lookups combine
    /// them). The attribute must be stored on the class.
    pub fn create_index(&mut self, class: ClassId, attr: Symbol) -> Result<()> {
        match self.schema.visible_attrs(class).get(&attr) {
            None => {
                return Err(OodbError::UnknownAttr {
                    class: self.schema.class(class).name,
                    attr,
                })
            }
            Some((_, def)) if !def.is_stored() => {
                return Err(OodbError::NotStored {
                    class: self.schema.class(class).name,
                    attr,
                })
            }
            Some(_) => {}
        }
        self.store.create_index(class, attr);
        for sub in self.schema.strict_descendants(class) {
            self.store.create_index(sub, attr);
        }
        Ok(())
    }

    /// Indexed lookup over the **deep** extent of `class`: all objects
    /// (real in the class or a subclass) whose stored `attr` equals
    /// `value`. `None` when any class in the subtree lacks the index.
    pub fn indexed_deep_lookup(
        &self,
        class: ClassId,
        attr: Symbol,
        value: &Value,
    ) -> Option<Vec<Oid>> {
        let mut out = self.store.index_lookup(class, attr, value)?;
        for sub in self.schema.strict_descendants(class) {
            out.extend(self.store.index_lookup(sub, attr, value)?);
        }
        out.sort();
        out.dedup();
        Some(out)
    }

    /// Returns every `(holder, referenced)` pair where `holder`'s value
    /// references an oid that is no longer in the store.
    pub fn dangling_refs(&self) -> Vec<(Oid, Oid)> {
        let mut out = Vec::new();
        for obj in self.store.iter() {
            let mut oids = Vec::new();
            for (_, v) in obj.value.iter() {
                v.collect_oids(&mut oids);
            }
            for r in oids {
                if !r.is_imaginary() && self.store.get(r).is_none() {
                    out.push((obj.oid, r));
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    /// Concurrent readers may share a `&Database` (or hold simultaneous
    /// read guards on a `DbHandle`); all mutation takes `&mut self`.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<crate::catalog::DbHandle>();
    }

    fn staff_db() -> (Database, ClassId, ClassId) {
        let mut db = Database::new(sym("Staff"));
        let person = db
            .create_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        let employee = db
            .create_class(
                sym("Employee"),
                &[person],
                vec![AttrDef::stored(sym("Salary"), Type::Int)],
            )
            .unwrap();
        (db, person, employee)
    }

    #[test]
    fn create_and_read_object() {
        let (mut db, person, _) = staff_db();
        let o = db
            .create_object(
                person,
                Value::tuple([("Name", Value::str("Maggy")), ("Age", Value::Int(65))]),
            )
            .unwrap();
        assert_eq!(db.stored_attr(o, sym("Age")).unwrap(), &Value::Int(65));
    }

    #[test]
    fn missing_stored_fields_default_to_null() {
        let (mut db, person, _) = staff_db();
        let o = db
            .create_object(person, Value::tuple([("Name", Value::str("X"))]))
            .unwrap();
        assert_eq!(db.stored_attr(o, sym("Age")).unwrap(), &Value::Null);
    }

    #[test]
    fn unknown_field_rejected() {
        let (mut db, person, _) = staff_db();
        let err = db
            .create_object(person, Value::tuple([("Wings", Value::Int(2))]))
            .unwrap_err();
        assert!(matches!(err, OodbError::UnknownAttr { .. }));
    }

    #[test]
    fn type_mismatch_rejected_on_create_and_set() {
        let (mut db, person, _) = staff_db();
        let err = db
            .create_object(person, Value::tuple([("Age", Value::str("old"))]))
            .unwrap_err();
        assert!(matches!(err, OodbError::TypeMismatch { .. }));
        let o = db
            .create_object(person, Value::tuple([("Age", Value::Int(1))]))
            .unwrap();
        let err = db.set_attr(o, sym("Age"), Value::Bool(true)).unwrap_err();
        assert!(matches!(err, OodbError::TypeMismatch { .. }));
    }

    #[test]
    fn deep_extent_includes_subclasses() {
        let (mut db, person, employee) = staff_db();
        let p = db
            .create_object(person, Value::tuple([("Age", Value::Int(30))]))
            .unwrap();
        let e = db
            .create_object(employee, Value::tuple([("Salary", Value::Int(100))]))
            .unwrap();
        assert_eq!(db.deep_extent(person), vec![p, e]);
        assert_eq!(db.deep_extent(employee), vec![e]);
        // Unique root: e is *real* only in Employee.
        assert_eq!(db.store.extent(person).collect::<Vec<_>>(), vec![p]);
    }

    #[test]
    fn membership_is_virtual_upward() {
        let (mut db, person, employee) = staff_db();
        let e = db
            .create_object(employee, Value::tuple([("Age", Value::Int(3))]))
            .unwrap();
        assert!(db.is_member(e, person));
        assert!(db.is_member(e, employee));
    }

    #[test]
    fn class_typed_references_are_checked() {
        let mut db = Database::new(sym("D"));
        let person = db.create_class(sym("Person"), &[], vec![]).unwrap();
        let dog = db.create_class(sym("Dog"), &[], vec![]).unwrap();
        let friendly = db
            .create_class(
                sym("Owner"),
                &[],
                vec![AttrDef::stored(sym("Pet"), Type::Class(dog))],
            )
            .unwrap();
        let fido = db.create_object(dog, Value::empty_tuple()).unwrap();
        let alice = db.create_object(person, Value::empty_tuple()).unwrap();
        assert!(db
            .create_object(friendly, Value::tuple([("Pet", Value::Oid(fido))]))
            .is_ok());
        let err = db
            .create_object(friendly, Value::tuple([("Pet", Value::Oid(alice))]))
            .unwrap_err();
        assert!(matches!(err, OodbError::TypeMismatch { .. }));
    }

    #[test]
    fn named_roots() {
        let (mut db, person, _) = staff_db();
        let o = db.create_object(person, Value::empty_tuple()).unwrap();
        db.name_object(sym("maggy"), o).unwrap();
        assert_eq!(db.named(sym("maggy")).unwrap(), o);
        assert!(db.name_object(sym("maggy"), o).is_err());
        db.delete_object(o).unwrap();
        assert!(db.named(sym("maggy")).is_err(), "deleting clears names");
    }

    #[test]
    fn set_attr_rejects_computed() {
        let (mut db, person, _) = staff_db();
        db.schema
            .add_attr(
                person,
                AttrDef::computed(
                    sym("Greeting"),
                    Type::Str,
                    crate::Expr::lit(Value::str("hi")),
                ),
            )
            .unwrap();
        let o = db.create_object(person, Value::empty_tuple()).unwrap();
        let err = db
            .set_attr(o, sym("Greeting"), Value::str("x"))
            .unwrap_err();
        assert!(matches!(err, OodbError::NotStored { .. }));
    }

    #[test]
    fn dangling_refs_detected() {
        let mut db = Database::new(sym("D"));
        let c = db
            .create_class(
                sym("Node"),
                &[],
                vec![AttrDef::stored(sym("Next"), Type::Class(ClassId(0)))],
            )
            .unwrap();
        let a = db.create_object(c, Value::empty_tuple()).unwrap();
        let b = db
            .create_object(c, Value::tuple([("Next", Value::Oid(a))]))
            .unwrap();
        assert!(db.dangling_refs().is_empty());
        // Bypass set_attr's check by deleting after linking.
        db.delete_object(a).unwrap();
        assert_eq!(db.dangling_refs(), vec![(b, a)]);
    }

    #[test]
    fn indexed_deep_lookup_spans_subclasses() {
        let (mut db, person, employee) = staff_db();
        let p = db
            .create_object(person, Value::tuple([("Age", Value::Int(30))]))
            .unwrap();
        let e = db
            .create_object(
                employee,
                Value::tuple([("Age", Value::Int(30)), ("Salary", Value::Int(1))]),
            )
            .unwrap();
        db.create_object(person, Value::tuple([("Age", Value::Int(31))]))
            .unwrap();
        db.create_index(person, sym("Age")).unwrap();
        let hits = db
            .indexed_deep_lookup(person, sym("Age"), &Value::Int(30))
            .unwrap();
        assert_eq!(hits, vec![p, e]);
        // Index maintained under updates.
        db.set_attr(p, sym("Age"), Value::Int(31)).unwrap();
        let hits = db
            .indexed_deep_lookup(person, sym("Age"), &Value::Int(30))
            .unwrap();
        assert_eq!(hits, vec![e]);
        // Unindexed attribute: no answer.
        assert!(db
            .indexed_deep_lookup(person, sym("Name"), &Value::str("x"))
            .is_none());
    }

    #[test]
    fn index_requires_stored_attribute() {
        let (mut db, person, _) = staff_db();
        assert!(matches!(
            db.create_index(person, sym("Wings")),
            Err(OodbError::UnknownAttr { .. })
        ));
        db.schema
            .add_attr(
                person,
                AttrDef::computed(sym("Virt"), Type::Int, crate::Expr::lit(Value::Int(1))),
            )
            .unwrap();
        assert!(matches!(
            db.create_index(person, sym("Virt")),
            Err(OodbError::NotStored { .. })
        ));
    }

    #[test]
    fn delete_modes() {
        let mk = || {
            let mut db = Database::new(sym("D"));
            let node = db
                .create_class(
                    sym("Node"),
                    &[],
                    vec![
                        AttrDef::stored(sym("Next"), Type::Class(ClassId(0))),
                        AttrDef::stored(sym("Kids"), Type::set(Type::Class(ClassId(0)))),
                    ],
                )
                .unwrap();
            let a = db.create_object(node, Value::empty_tuple()).unwrap();
            let b = db
                .create_object(
                    node,
                    Value::tuple([
                        ("Next", Value::Oid(a)),
                        ("Kids", Value::set([Value::Oid(a)])),
                    ]),
                )
                .unwrap();
            (db, a, b)
        };
        // Restrict refuses while referenced.
        let (mut db, a, b) = mk();
        assert!(matches!(
            db.delete_object_with(a, DeleteMode::Restrict),
            Err(OodbError::BadReference { .. })
        ));
        db.delete_object(b).unwrap();
        db.delete_object_with(a, DeleteMode::Restrict).unwrap();
        // Nullify clears references everywhere, including inside sets.
        let (mut db, a, b) = mk();
        db.delete_object_with(a, DeleteMode::Nullify).unwrap();
        assert_eq!(db.stored_attr(b, sym("Next")).unwrap(), &Value::Null);
        assert_eq!(
            db.stored_attr(b, sym("Kids")).unwrap(),
            &Value::set([Value::Null])
        );
        assert!(db.dangling_refs().is_empty());
    }

    #[test]
    fn non_tuple_values_wrap_in_a_single_field() {
        let mut db = Database::new(sym("D"));
        let c = db
            .create_class(
                sym("Tag"),
                &[],
                vec![AttrDef::stored(sym("Value"), Type::Str)],
            )
            .unwrap();
        let o = db.create_object(c, Value::str("hello")).unwrap();
        assert_eq!(
            db.stored_attr(o, sym("Value")).unwrap(),
            &Value::str("hello")
        );
    }
}
