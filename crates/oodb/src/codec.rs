//! Binary encoding for the durability layer.
//!
//! The WAL ([`crate::wal`]) and snapshot pager ([`crate::pager`]) share one
//! hand-rolled, dependency-free binary codec: little-endian fixed-width
//! integers, length-prefixed strings, and a one-byte tag per enum variant.
//! Decoding is **bounds-checked everywhere** and returns
//! [`OodbError::Corrupt`] with a context string instead of panicking — a
//! torn or foreign file must surface as a typed error (the same discipline
//! the dump loader follows).
//!
//! [`Symbol`]s serialize as their strings: symbol ids are process-local
//! intern indices and mean nothing across restarts. [`ClassId`]s serialize
//! as raw `u32` indices, which is sound because [`crate::Schema`] assigns
//! ids sequentially in creation order and both snapshot encode and WAL
//! replay walk classes in that same order.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{OodbError, Result};
use crate::expr::{AggFunc, BinOp, Expr, SelectExpr, UnOp};
use crate::ids::{ClassId, Oid};
use crate::schema::{AttrBody, AttrDef, AttrSig};
use crate::symbol::Symbol;
use crate::types::Type;
use crate::value::{Tuple, Value};

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, table-driven)
// ---------------------------------------------------------------------------

/// The 256-entry lookup table for the reflected IEEE polynomial 0xEDB88320,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum used by every durable structure
/// in this crate (WAL record frames, snapshot pages, checked dumps).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// An append-only byte buffer with typed little-endian put methods.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed (`u32`) UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string longer than 4 GiB"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a symbol (as its string — intern ids are process-local).
    pub fn put_symbol(&mut self, s: Symbol) {
        self.put_str(s.as_str());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over encoded bytes. Every take method returns
/// [`OodbError::Corrupt`] naming `context` when the buffer runs out.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'a str,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`; `context` names the structure being decoded in
    /// corruption errors (e.g. `"wal record"`).
    pub fn new(buf: &'a [u8], context: &'a str) -> Reader<'a> {
        Reader {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has the whole buffer been consumed?
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn short(&self, what: &str) -> OodbError {
        OodbError::corrupt(format!(
            "{}: truncated while reading {what} at offset {}",
            self.context, self.pos
        ))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.short(what));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64> {
        Ok(self.take_u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len, "string body")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| OodbError::corrupt(format!("{}: string is not valid UTF-8", self.context)))
    }

    /// Reads a symbol (interning its string).
    pub fn take_symbol(&mut self) -> Result<Symbol> {
        Ok(Symbol::new(&self.take_str()?))
    }

    /// Reads a `u32` length prefix, validated against the remaining buffer
    /// so a corrupt length cannot drive an over-allocation.
    pub fn take_len(&mut self, elem_min_bytes: usize) -> Result<usize> {
        let n = self.take_u32()? as usize;
        if n.saturating_mul(elem_min_bytes.max(1)) > self.remaining() {
            return Err(OodbError::corrupt(format!(
                "{}: implausible element count {n} at offset {}",
                self.context,
                self.pos - 4
            )));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// Encodes a [`Value`] (one tag byte, then the payload).
pub fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Bool(b) => {
            w.put_u8(1);
            w.put_u8(*b as u8);
        }
        Value::Int(i) => {
            w.put_u8(2);
            w.put_i64(*i);
        }
        Value::Float(x) => {
            w.put_u8(3);
            w.put_f64(*x);
        }
        Value::Str(s) => {
            w.put_u8(4);
            w.put_str(s);
        }
        Value::Oid(o) => {
            w.put_u8(5);
            w.put_u64(o.0);
        }
        Value::Tuple(t) => {
            w.put_u8(6);
            put_tuple(w, t);
        }
        Value::Set(s) => {
            w.put_u8(7);
            w.put_u32(s.len() as u32);
            for e in s {
                put_value(w, e);
            }
        }
        Value::List(l) => {
            w.put_u8(8);
            w.put_u32(l.len() as u32);
            for e in l {
                put_value(w, e);
            }
        }
    }
}

/// Decodes a [`Value`].
pub fn take_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.take_u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.take_u8()? != 0),
        2 => Value::Int(r.take_i64()?),
        3 => Value::Float(r.take_f64()?),
        4 => Value::Str(r.take_str()?.into()),
        5 => Value::Oid(Oid(r.take_u64()?)),
        6 => Value::Tuple(take_tuple(r)?),
        7 => {
            let n = r.take_len(1)?;
            let mut s = BTreeSet::new();
            for _ in 0..n {
                s.insert(take_value(r)?);
            }
            Value::Set(s)
        }
        8 => {
            let n = r.take_len(1)?;
            let mut l = Vec::with_capacity(n);
            for _ in 0..n {
                l.push(take_value(r)?);
            }
            Value::List(l)
        }
        tag => return Err(bad_tag(r, "value", tag)),
    })
}

/// Encodes a [`Tuple`] (field count, then name-ordered `(symbol, value)`
/// pairs — the `BTreeMap` iteration order, so encoding is deterministic).
pub fn put_tuple(w: &mut Writer, t: &Tuple) {
    w.put_u32(t.len() as u32);
    for (name, v) in t.iter() {
        w.put_symbol(name);
        put_value(w, v);
    }
}

/// Decodes a [`Tuple`].
pub fn take_tuple(r: &mut Reader<'_>) -> Result<Tuple> {
    let n = r.take_len(5)?;
    let mut fields = BTreeMap::new();
    for _ in 0..n {
        let name = r.take_symbol()?;
        fields.insert(name, take_value(r)?);
    }
    Ok(Tuple(fields))
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

/// Encodes a [`Type`].
pub fn put_type(w: &mut Writer, t: &Type) {
    match t {
        Type::Any => w.put_u8(0),
        Type::Nothing => w.put_u8(1),
        Type::Bool => w.put_u8(2),
        Type::Int => w.put_u8(3),
        Type::Float => w.put_u8(4),
        Type::Str => w.put_u8(5),
        Type::Class(c) => {
            w.put_u8(6);
            w.put_u32(c.0);
        }
        Type::Tuple(fields) => {
            w.put_u8(7);
            w.put_u32(fields.len() as u32);
            for (name, ft) in fields {
                w.put_symbol(*name);
                put_type(w, ft);
            }
        }
        Type::Set(e) => {
            w.put_u8(8);
            put_type(w, e);
        }
        Type::List(e) => {
            w.put_u8(9);
            put_type(w, e);
        }
    }
}

/// Decodes a [`Type`].
pub fn take_type(r: &mut Reader<'_>) -> Result<Type> {
    Ok(match r.take_u8()? {
        0 => Type::Any,
        1 => Type::Nothing,
        2 => Type::Bool,
        3 => Type::Int,
        4 => Type::Float,
        5 => Type::Str,
        6 => Type::Class(ClassId(r.take_u32()?)),
        7 => {
            let n = r.take_len(5)?;
            let mut fields = BTreeMap::new();
            for _ in 0..n {
                let name = r.take_symbol()?;
                fields.insert(name, take_type(r)?);
            }
            Type::Tuple(fields)
        }
        8 => Type::set(take_type(r)?),
        9 => Type::list(take_type(r)?),
        tag => return Err(bad_tag(r, "type", tag)),
    })
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Concat => 5,
        BinOp::Eq => 6,
        BinOp::Ne => 7,
        BinOp::Lt => 8,
        BinOp::Le => 9,
        BinOp::Gt => 10,
        BinOp::Ge => 11,
        BinOp::And => 12,
        BinOp::Or => 13,
        BinOp::In => 14,
        BinOp::Union => 15,
        BinOp::Intersect => 16,
        BinOp::Except => 17,
    }
}

fn bin_op_from_tag(r: &Reader<'_>, tag: u8) -> Result<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Concat,
        6 => BinOp::Eq,
        7 => BinOp::Ne,
        8 => BinOp::Lt,
        9 => BinOp::Le,
        10 => BinOp::Gt,
        11 => BinOp::Ge,
        12 => BinOp::And,
        13 => BinOp::Or,
        14 => BinOp::In,
        15 => BinOp::Union,
        16 => BinOp::Intersect,
        17 => BinOp::Except,
        t => return Err(bad_tag(r, "binary operator", t)),
    })
}

fn agg_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Avg => 4,
        AggFunc::Flatten => 5,
    }
}

fn agg_from_tag(r: &Reader<'_>, tag: u8) -> Result<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Avg,
        5 => AggFunc::Flatten,
        t => return Err(bad_tag(r, "aggregate function", t)),
    })
}

/// Encodes an [`Expr`].
pub fn put_expr(w: &mut Writer, e: &Expr) {
    match e {
        Expr::Lit(v) => {
            w.put_u8(0);
            put_value(w, v);
        }
        Expr::SelfRef => w.put_u8(1),
        Expr::Name(n) => {
            w.put_u8(2);
            w.put_symbol(*n);
        }
        Expr::Attr { recv, name, args } => {
            w.put_u8(3);
            put_expr(w, recv);
            w.put_symbol(*name);
            w.put_u32(args.len() as u32);
            for a in args {
                put_expr(w, a);
            }
        }
        Expr::TupleCons(fields) => {
            w.put_u8(4);
            w.put_u32(fields.len() as u32);
            for (n, fe) in fields {
                w.put_symbol(*n);
                put_expr(w, fe);
            }
        }
        Expr::SetCons(es) => {
            w.put_u8(5);
            w.put_u32(es.len() as u32);
            for fe in es {
                put_expr(w, fe);
            }
        }
        Expr::ListCons(es) => {
            w.put_u8(6);
            w.put_u32(es.len() as u32);
            for fe in es {
                put_expr(w, fe);
            }
        }
        Expr::Unary { op, expr } => {
            w.put_u8(7);
            w.put_u8(match op {
                UnOp::Not => 0,
                UnOp::Neg => 1,
            });
            put_expr(w, expr);
        }
        Expr::Binary { op, lhs, rhs } => {
            w.put_u8(8);
            w.put_u8(bin_op_tag(*op));
            put_expr(w, lhs);
            put_expr(w, rhs);
        }
        Expr::If { cond, then, els } => {
            w.put_u8(9);
            put_expr(w, cond);
            put_expr(w, then);
            put_expr(w, els);
        }
        Expr::Select(s) => {
            w.put_u8(10);
            put_select(w, s);
        }
        Expr::Exists(s) => {
            w.put_u8(11);
            put_select(w, s);
        }
        Expr::Aggregate { func, arg } => {
            w.put_u8(12);
            w.put_u8(agg_tag(*func));
            put_expr(w, arg);
        }
        Expr::IsA { expr, class } => {
            w.put_u8(13);
            put_expr(w, expr);
            w.put_symbol(*class);
        }
        Expr::Apply { name, args } => {
            w.put_u8(14);
            w.put_symbol(*name);
            w.put_u32(args.len() as u32);
            for a in args {
                put_expr(w, a);
            }
        }
    }
}

/// Decodes an [`Expr`].
pub fn take_expr(r: &mut Reader<'_>) -> Result<Expr> {
    Ok(match r.take_u8()? {
        0 => Expr::Lit(take_value(r)?),
        1 => Expr::SelfRef,
        2 => Expr::Name(r.take_symbol()?),
        3 => {
            let recv = Box::new(take_expr(r)?);
            let name = r.take_symbol()?;
            let n = r.take_len(1)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(take_expr(r)?);
            }
            Expr::Attr { recv, name, args }
        }
        4 => {
            let n = r.take_len(5)?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = r.take_symbol()?;
                fields.push((name, take_expr(r)?));
            }
            Expr::TupleCons(fields)
        }
        5 => {
            let n = r.take_len(1)?;
            let mut es = Vec::with_capacity(n);
            for _ in 0..n {
                es.push(take_expr(r)?);
            }
            Expr::SetCons(es)
        }
        6 => {
            let n = r.take_len(1)?;
            let mut es = Vec::with_capacity(n);
            for _ in 0..n {
                es.push(take_expr(r)?);
            }
            Expr::ListCons(es)
        }
        7 => {
            let op = match r.take_u8()? {
                0 => UnOp::Not,
                1 => UnOp::Neg,
                t => return Err(bad_tag(r, "unary operator", t)),
            };
            Expr::Unary {
                op,
                expr: Box::new(take_expr(r)?),
            }
        }
        8 => {
            let tag = r.take_u8()?;
            let op = bin_op_from_tag(r, tag)?;
            Expr::Binary {
                op,
                lhs: Box::new(take_expr(r)?),
                rhs: Box::new(take_expr(r)?),
            }
        }
        9 => Expr::If {
            cond: Box::new(take_expr(r)?),
            then: Box::new(take_expr(r)?),
            els: Box::new(take_expr(r)?),
        },
        10 => Expr::Select(take_select(r)?),
        11 => Expr::Exists(take_select(r)?),
        12 => {
            let tag = r.take_u8()?;
            let func = agg_from_tag(r, tag)?;
            Expr::Aggregate {
                func,
                arg: Box::new(take_expr(r)?),
            }
        }
        13 => Expr::IsA {
            expr: Box::new(take_expr(r)?),
            class: r.take_symbol()?,
        },
        14 => {
            let name = r.take_symbol()?;
            let n = r.take_len(1)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(take_expr(r)?);
            }
            Expr::Apply { name, args }
        }
        tag => return Err(bad_tag(r, "expression", tag)),
    })
}

fn put_select(w: &mut Writer, s: &SelectExpr) {
    w.put_u8(s.distinct as u8);
    w.put_u8(s.the as u8);
    put_expr(w, &s.proj);
    w.put_u32(s.bindings.len() as u32);
    for (var, coll) in &s.bindings {
        w.put_symbol(*var);
        put_expr(w, coll);
    }
    match &s.filter {
        None => w.put_u8(0),
        Some(f) => {
            w.put_u8(1);
            put_expr(w, f);
        }
    }
}

fn take_select(r: &mut Reader<'_>) -> Result<SelectExpr> {
    let distinct = r.take_u8()? != 0;
    let the = r.take_u8()? != 0;
    let proj = Box::new(take_expr(r)?);
    let n = r.take_len(5)?;
    let mut bindings = Vec::with_capacity(n);
    for _ in 0..n {
        let var = r.take_symbol()?;
        bindings.push((var, take_expr(r)?));
    }
    let filter = match r.take_u8()? {
        0 => None,
        1 => Some(Box::new(take_expr(r)?)),
        t => return Err(bad_tag(r, "select filter marker", t)),
    };
    Ok(SelectExpr {
        distinct,
        the,
        proj,
        bindings,
        filter,
    })
}

// ---------------------------------------------------------------------------
// Attribute definitions
// ---------------------------------------------------------------------------

/// Encodes an [`AttrDef`].
pub fn put_attr_def(w: &mut Writer, def: &AttrDef) {
    w.put_symbol(def.sig.name);
    w.put_u32(def.sig.params.len() as u32);
    for (p, t) in &def.sig.params {
        w.put_symbol(*p);
        put_type(w, t);
    }
    put_type(w, &def.sig.ty);
    match &def.body {
        AttrBody::Stored => w.put_u8(0),
        AttrBody::Computed(e) => {
            w.put_u8(1);
            put_expr(w, e);
        }
        AttrBody::Abstract => w.put_u8(2),
    }
}

/// Decodes an [`AttrDef`].
pub fn take_attr_def(r: &mut Reader<'_>) -> Result<AttrDef> {
    let name = r.take_symbol()?;
    let n = r.take_len(5)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        let p = r.take_symbol()?;
        params.push((p, take_type(r)?));
    }
    let ty = take_type(r)?;
    let body = match r.take_u8()? {
        0 => AttrBody::Stored,
        1 => AttrBody::Computed(take_expr(r)?),
        2 => AttrBody::Abstract,
        t => return Err(bad_tag(r, "attribute body", t)),
    };
    Ok(AttrDef {
        sig: AttrSig { name, params, ty },
        body,
    })
}

fn bad_tag(r: &Reader<'_>, what: &str, tag: u8) -> OodbError {
    OodbError::corrupt(format!(
        "{}: unknown {what} tag {tag} at offset {}",
        r.context,
        r.pos - 1
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    fn roundtrip_value(v: &Value) {
        let mut w = Writer::new();
        put_value(&mut w, v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        let back = take_value(&mut r).unwrap();
        assert_eq!(&back, v);
        assert!(r.is_exhausted());
    }

    #[test]
    fn values_roundtrip() {
        roundtrip_value(&Value::Null);
        roundtrip_value(&Value::Bool(true));
        roundtrip_value(&Value::Int(-42));
        roundtrip_value(&Value::Float(f64::NAN)); // bit pattern preserved
        roundtrip_value(&Value::str("héllo"));
        roundtrip_value(&Value::Oid(Oid(crate::ids::IMAGINARY_OID_BASE + 7)));
        roundtrip_value(&Value::tuple([
            ("Name", Value::str("Maggy")),
            ("Pets", Value::set([Value::Oid(Oid(3)), Value::Int(1)])),
            ("L", Value::list([Value::Null, Value::Float(2.5)])),
        ]));
    }

    #[test]
    fn float_nan_bits_survive() {
        let v = Value::Float(f64::from_bits(0x7FF8_0000_0000_1234));
        let mut w = Writer::new();
        put_value(&mut w, &v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        match take_value(&mut r).unwrap() {
            Value::Float(x) => assert_eq!(x.to_bits(), 0x7FF8_0000_0000_1234),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn types_roundtrip() {
        let t = Type::tuple([
            ("A", Type::set(Type::Class(ClassId(3)))),
            ("B", Type::list(Type::tuple([("X", Type::Int)]))),
            ("C", Type::Any),
            ("D", Type::Nothing),
        ]);
        let mut w = Writer::new();
        put_type(&mut w, &t);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(take_type(&mut r).unwrap(), t);
    }

    #[test]
    fn exprs_roundtrip() {
        let q = Expr::Select(SelectExpr {
            distinct: true,
            the: false,
            proj: Box::new(Expr::TupleCons(vec![(
                sym("City"),
                Expr::self_attr("City"),
            )])),
            bindings: vec![(sym("P"), Expr::name("Person"))],
            filter: Some(Box::new(Expr::bin(
                BinOp::Ge,
                Expr::attr(Expr::name("P"), "Age"),
                Expr::lit(Value::Int(21)),
            ))),
        });
        let variants = vec![
            q.clone(),
            Expr::Exists(match q {
                Expr::Select(s) => s,
                _ => unreachable!(),
            }),
            Expr::If {
                cond: Box::new(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(Expr::SelfRef),
                }),
                then: Box::new(Expr::Aggregate {
                    func: AggFunc::Flatten,
                    arg: Box::new(Expr::SetCons(vec![Expr::lit(Value::Int(1))])),
                }),
                els: Box::new(Expr::IsA {
                    expr: Box::new(Expr::name("x")),
                    class: sym("Person"),
                }),
            },
            Expr::Apply {
                name: sym("Resident"),
                args: vec![Expr::ListCons(vec![Expr::lit(Value::str("Paris"))])],
            },
        ];
        for e in variants {
            let mut w = Writer::new();
            put_expr(&mut w, &e);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes, "test");
            assert_eq!(take_expr(&mut r).unwrap(), e);
        }
    }

    #[test]
    fn attr_defs_roundtrip() {
        let defs = vec![
            AttrDef::stored(sym("Age"), Type::Int),
            AttrDef::computed(sym("Addr"), Type::Str, Expr::self_attr("City")),
            AttrDef::method(
                sym("Proj"),
                vec![(sym("years"), Type::Int)],
                Type::Float,
                Expr::self_attr("Balance"),
            ),
            AttrDef::abstract_sig(sym("Ghost"), Type::Any),
        ];
        for d in defs {
            let mut w = Writer::new();
            put_attr_def(&mut w, &d);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes, "test");
            assert_eq!(take_attr_def(&mut r).unwrap(), d);
        }
    }

    #[test]
    fn truncation_yields_typed_corrupt_errors() {
        let mut w = Writer::new();
        put_value(&mut w, &Value::str("hello world"));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut], "truncation test");
            match take_value(&mut r) {
                Err(OodbError::Corrupt { context }) => {
                    assert!(context.contains("truncation test"));
                }
                Ok(_) => panic!("decoded from a truncated prefix of len {cut}"),
                Err(other) => panic!("wrong error kind: {other:?}"),
            }
        }
    }

    #[test]
    fn bogus_tags_and_lengths_are_rejected() {
        let mut r = Reader::new(&[99u8], "tag test");
        assert!(matches!(take_value(&mut r), Err(OodbError::Corrupt { .. })));
        // A huge length prefix must not drive allocation.
        let mut w = Writer::new();
        w.put_u8(8); // list tag
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "len test");
        assert!(matches!(take_value(&mut r), Err(OodbError::Corrupt { .. })));
    }
}
