//! The type lattice: subtyping, least upper bounds, greatest lower bounds.
//!
//! Types in the paper's model combine **nominal** class types (ordered by the
//! class hierarchy) with **structural** tuple/set/list types (ordered by
//! width-and-depth subtyping). Three view-mechanism features are defined in
//! terms of this lattice:
//!
//! * *behavioral generalization* (§4.1): `like B` groups "all classes whose
//!   type is at least as specific as the type of B" — a structural
//!   subtype test;
//! * *upward inheritance* (§4.3): a virtual class acquires attribute `A`
//!   when the types of `A` across its contributors "have a least upper
//!   bound τ";
//! * *hierarchy inference* (§4.2): superclass relationships are derived with
//!   "standard type inference techniques".
//!
//! Subtype checks and bound computations are parameterized by a
//! [`ClassGraph`] so the same code runs against a base [`crate::Schema`] or
//! against a view's overlay hierarchy.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::ClassId;
use crate::symbol::Symbol;

/// Access to a class hierarchy, as needed by type-level operations.
///
/// Implemented by [`crate::Schema`] and by the view layer's overlay
/// hierarchy.
pub trait ClassGraph {
    /// Is `sub` equal to, or a (transitive) subclass of, `sup`?
    fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool;

    /// All superclasses of `c`, including `c` itself.
    fn ancestors(&self, c: ClassId) -> Vec<ClassId>;

    /// Resolves a class id to its name (for display).
    fn class_name(&self, c: ClassId) -> Symbol;
}

/// A database type.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// Top: every value has this type.
    Any,
    /// Bottom: the type of `null` and of elements of the empty set; subtype
    /// of everything.
    Nothing,
    /// Booleans.
    Bool,
    /// 64-bit integers (`integer`); subtype of `Float`.
    Int,
    /// 64-bit floats (`float`).
    Float,
    /// Strings (`string`).
    Str,
    /// A nominal class type; its values are oids of objects (virtually)
    /// belonging to the class.
    Class(ClassId),
    /// A structural tuple type. Width subtyping: a tuple type with *more*
    /// fields is a subtype ("Such a class may have more attributes than B,
    /// but not fewer" — §4.1).
    Tuple(BTreeMap<Symbol, Type>),
    /// A set type `{T}` (covariant).
    Set(Box<Type>),
    /// A list type `list(T)` (covariant).
    List(Box<Type>),
}

impl Type {
    /// Builds a tuple type from `(name, type)` pairs.
    pub fn tuple<N: Into<Symbol>>(fields: impl IntoIterator<Item = (N, Type)>) -> Type {
        Type::Tuple(fields.into_iter().map(|(n, t)| (n.into(), t)).collect())
    }

    /// Builds a set type.
    pub fn set(elem: Type) -> Type {
        Type::Set(Box::new(elem))
    }

    /// Builds a list type.
    pub fn list(elem: Type) -> Type {
        Type::List(Box::new(elem))
    }

    /// Is `self` a subtype of `other` under hierarchy `g`?
    ///
    /// Reflexive and transitive. `Int <: Float` (numeric widening,
    /// DECISION: the paper is silent; O₂ allowed it).
    pub fn is_subtype(&self, other: &Type, g: &dyn ClassGraph) -> bool {
        use Type::*;
        match (self, other) {
            (Nothing, _) => true,
            (_, Any) => true,
            (Any, _) => false,
            (_, Nothing) => false,
            (Bool, Bool) | (Int, Int) | (Float, Float) | (Str, Str) => true,
            (Int, Float) => true,
            (Class(a), Class(b)) => g.is_subclass(*a, *b),
            (Tuple(a), Tuple(b)) => b
                .iter()
                .all(|(name, bt)| a.get(name).is_some_and(|at| at.is_subtype(bt, g))),
            (Set(a), Set(b)) => a.is_subtype(b, g),
            (List(a), List(b)) => a.is_subtype(b, g),
            _ => false,
        }
    }

    /// Least upper bound of two types, if a *unique least* one exists.
    ///
    /// Returns `None` only when the class-level bound is ambiguous (several
    /// incomparable minimal common superclasses under multiple inheritance);
    /// the paper's upward inheritance then leaves the attribute undefined.
    /// For types of different kinds the bound is `Any`, which is genuinely
    /// least because no smaller common supertype exists.
    pub fn lub(&self, other: &Type, g: &dyn ClassGraph) -> Option<Type> {
        use Type::*;
        if self == other {
            return Some(self.clone());
        }
        match (self, other) {
            (Nothing, t) | (t, Nothing) => Some(t.clone()),
            (Any, _) | (_, Any) => Some(Any),
            (Int, Float) | (Float, Int) => Some(Float),
            (Class(a), Class(b)) => match minimal_common_superclasses(*a, *b, g).as_slice() {
                [one] => Some(Class(*one)),
                [] => Some(Any),
                _ => None, // ambiguous: several incomparable bounds
            },
            (Tuple(a), Tuple(b)) => {
                // Width subtyping makes the lub the *intersection* of fields,
                // each at the lub of the two field types. A field whose types
                // have no unique bound is dropped (it is not common).
                let mut out = BTreeMap::new();
                for (name, at) in a {
                    if let Some(bt) = b.get(name) {
                        if let Some(t) = at.lub(bt, g) {
                            out.insert(*name, t);
                        } else {
                            return None;
                        }
                    }
                }
                Some(Tuple(out))
            }
            (Set(a), Set(b)) => Some(Set(Box::new(a.lub(b, g)?))),
            (List(a), List(b)) => Some(List(Box::new(a.lub(b, g)?))),
            _ => Some(Any),
        }
    }

    /// Least upper bound of a non-empty sequence of types (folds [`Type::lub`]).
    pub fn lub_all<'a>(
        mut types: impl Iterator<Item = &'a Type>,
        g: &dyn ClassGraph,
    ) -> Option<Type> {
        let first = types.next()?;
        let mut acc = first.clone();
        for t in types {
            acc = acc.lub(t, g)?;
        }
        Some(acc)
    }

    /// Greatest lower bound of two types, if one exists. Used when a query
    /// constrains a variable to lie in two classes at once (the paper's
    /// `Rich&Beautiful`).
    pub fn glb(&self, other: &Type, g: &dyn ClassGraph) -> Option<Type> {
        use Type::*;
        if self == other {
            return Some(self.clone());
        }
        match (self, other) {
            (Any, t) | (t, Any) => Some(t.clone()),
            (Nothing, _) | (_, Nothing) => Some(Nothing),
            (Int, Float) | (Float, Int) => Some(Int),
            (Class(a), Class(b)) => {
                if g.is_subclass(*a, *b) {
                    Some(Class(*a))
                } else if g.is_subclass(*b, *a) {
                    Some(Class(*b))
                } else {
                    // No common subclass is derivable in an open hierarchy;
                    // the intersection may still be non-empty at runtime, but
                    // as a *type* the glb is Nothing-or-unknown. DECISION:
                    // report no glb, callers fall back to runtime checks.
                    None
                }
            }
            (Tuple(a), Tuple(b)) => {
                // Union of fields; shared fields at the glb of their types.
                let mut out = a.clone();
                for (name, bt) in b {
                    match out.get(name) {
                        None => {
                            out.insert(*name, bt.clone());
                        }
                        Some(at) => {
                            let t = at.glb(bt, g)?;
                            out.insert(*name, t);
                        }
                    }
                }
                Some(Tuple(out))
            }
            (Set(a), Set(b)) => Some(Set(Box::new(a.glb(b, g)?))),
            (List(a), List(b)) => Some(List(Box::new(a.glb(b, g)?))),
            _ => None,
        }
    }

    /// Pretty form using class names from `g`.
    pub fn display<'a>(&'a self, g: &'a dyn ClassGraph) -> TypeDisplay<'a> {
        TypeDisplay { ty: self, g }
    }
}

/// The set of minimal elements (w.r.t. the subclass order) among the common
/// superclasses of `a` and `b`.
fn minimal_common_superclasses(a: ClassId, b: ClassId, g: &dyn ClassGraph) -> Vec<ClassId> {
    let ancestors_a = g.ancestors(a);
    let common: Vec<ClassId> = ancestors_a
        .into_iter()
        .filter(|&s| g.is_subclass(b, s))
        .collect();
    let mut minimal: Vec<ClassId> = Vec::new();
    for &c in &common {
        // c is minimal if no *strictly smaller* common superclass exists.
        let strictly_below_exists = common.iter().any(|&d| d != c && g.is_subclass(d, c));
        if !strictly_below_exists {
            minimal.push(c);
        }
    }
    minimal.sort();
    minimal.dedup();
    minimal
}

/// Helper for rendering a type with class names resolved.
pub struct TypeDisplay<'a> {
    ty: &'a Type,
    g: &'a dyn ClassGraph,
}

impl fmt::Display for TypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_type(self.ty, Some(self.g), f)
    }
}

fn fmt_type(ty: &Type, g: Option<&dyn ClassGraph>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match ty {
        Type::Any => write!(f, "any"),
        Type::Nothing => write!(f, "nothing"),
        Type::Bool => write!(f, "boolean"),
        Type::Int => write!(f, "integer"),
        Type::Float => write!(f, "float"),
        Type::Str => write!(f, "string"),
        Type::Class(c) => match g {
            Some(g) => write!(f, "{}", g.class_name(*c)),
            None => write!(f, "{c:?}"),
        },
        Type::Tuple(fields) => {
            write!(f, "[")?;
            for (i, (name, t)) in fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}: ")?;
                fmt_type(t, g, f)?;
            }
            write!(f, "]")
        }
        Type::Set(t) => {
            write!(f, "{{")?;
            fmt_type(t, g, f)?;
            write!(f, "}}")
        }
        Type::List(t) => {
            write!(f, "list(")?;
            fmt_type(t, g, f)?;
            write!(f, ")")
        }
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_type(self, None, f)
    }
}

/// An empty class graph, for purely structural settings (no classes).
pub struct NoClasses;

impl ClassGraph for NoClasses {
    fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        sub == sup
    }
    fn ancestors(&self, c: ClassId) -> Vec<ClassId> {
        vec![c]
    }
    fn class_name(&self, _c: ClassId) -> Symbol {
        Symbol::new("?")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_subtype_reflexively() {
        let g = NoClasses;
        for t in [Type::Bool, Type::Int, Type::Float, Type::Str] {
            assert!(t.is_subtype(&t, &g));
        }
        assert!(Type::Int.is_subtype(&Type::Float, &g));
        assert!(!Type::Float.is_subtype(&Type::Int, &g));
        assert!(!Type::Str.is_subtype(&Type::Int, &g));
    }

    #[test]
    fn nothing_and_any_bound_the_lattice() {
        let g = NoClasses;
        for t in [Type::Bool, Type::Str, Type::set(Type::Int)] {
            assert!(Type::Nothing.is_subtype(&t, &g));
            assert!(t.is_subtype(&Type::Any, &g));
            assert!(!t.is_subtype(&Type::Nothing, &g));
            assert!(!Type::Any.is_subtype(&t, &g));
        }
    }

    #[test]
    fn tuple_width_subtyping() {
        // "Such a class may have more attributes than B, but not fewer."
        let g = NoClasses;
        let spec = Type::tuple([("Price", Type::Float), ("Discount", Type::Int)]);
        let car = Type::tuple([
            ("Price", Type::Float),
            ("Discount", Type::Int),
            ("Brand", Type::Str),
        ]);
        let cheap = Type::tuple([("Price", Type::Float)]);
        assert!(car.is_subtype(&spec, &g));
        assert!(!cheap.is_subtype(&spec, &g));
        assert!(!spec.is_subtype(&car, &g));
    }

    #[test]
    fn tuple_depth_subtyping() {
        let g = NoClasses;
        let a = Type::tuple([("x", Type::Int)]);
        let b = Type::tuple([("x", Type::Float)]);
        assert!(a.is_subtype(&b, &g));
        assert!(!b.is_subtype(&a, &g));
    }

    #[test]
    fn set_and_list_are_covariant() {
        let g = NoClasses;
        assert!(Type::set(Type::Int).is_subtype(&Type::set(Type::Float), &g));
        assert!(Type::list(Type::Nothing).is_subtype(&Type::list(Type::Str), &g));
        assert!(!Type::set(Type::Int).is_subtype(&Type::list(Type::Int), &g));
    }

    #[test]
    fn lub_of_tuples_intersects_fields() {
        let g = NoClasses;
        let a = Type::tuple([("x", Type::Int), ("y", Type::Str)]);
        let b = Type::tuple([("x", Type::Float), ("z", Type::Bool)]);
        let lub = a.lub(&b, &g).unwrap();
        assert_eq!(lub, Type::tuple([("x", Type::Float)]));
    }

    #[test]
    fn glb_of_tuples_unions_fields() {
        let g = NoClasses;
        let a = Type::tuple([("x", Type::Int)]);
        let b = Type::tuple([("y", Type::Str)]);
        let glb = a.glb(&b, &g).unwrap();
        assert_eq!(glb, Type::tuple([("x", Type::Int), ("y", Type::Str)]));
    }

    #[test]
    fn lub_is_an_upper_bound() {
        let g = NoClasses;
        let pairs = [
            (Type::Int, Type::Float),
            (Type::Int, Type::Str),
            (Type::set(Type::Int), Type::set(Type::Float)),
            (
                Type::tuple([("a", Type::Int)]),
                Type::tuple([("a", Type::Int), ("b", Type::Str)]),
            ),
        ];
        for (a, b) in pairs {
            let l = a.lub(&b, &g).unwrap();
            assert!(a.is_subtype(&l, &g), "{a:?} </: lub {l:?}");
            assert!(b.is_subtype(&l, &g), "{b:?} </: lub {l:?}");
        }
    }

    #[test]
    fn mixed_kind_lub_is_any() {
        let g = NoClasses;
        assert_eq!(Type::Str.lub(&Type::Int, &g), Some(Type::Any));
        assert_eq!(Type::set(Type::Int).lub(&Type::Bool, &g), Some(Type::Any));
    }

    #[test]
    fn display_renders_structural_types() {
        let t = Type::set(Type::tuple([("City", Type::Str)]));
        assert_eq!(format!("{t:?}"), "{[City: string]}");
    }
}
