//! Process-wide metrics: relaxed-atomic counters and fixed-bucket latency
//! histograms, snapshot-able as JSON.
//!
//! This is the accounting half of the observability layer: the view layer's
//! per-view [`ViewStats`](../../ov_views/struct.ViewStats.html) counters say
//! what one view did; the registry here aggregates the same events — plus
//! store mutations, journal consumption, and index lookups — across the
//! whole process, so the bench harness (`--metrics out.json`) and the `ovq`
//! shell (`.metrics`) can report a single coherent picture.
//!
//! Design constraints: **no external dependencies** (hand-rolled JSON, std
//! atomics) and **no hot-path locking** — call sites cache their
//! `Arc<Counter>` in a `OnceLock` via [`metric_counter!`] /
//! [`metric_histogram!`], so steady-state cost is one relaxed
//! `fetch_add`.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

/// Is the query profiler (workload registry + slow-query log + statistics
/// feeding) enabled? One relaxed load — this is the *entire* cost of the
/// profiler on the disabled hot path, same discipline as the flight
/// recorder's enabled check.
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Turns the query profiler on or off (process-wide).
pub fn set_profiling(on: bool) {
    PROFILING.store(on, Ordering::Relaxed);
}

static PROFILING: AtomicBool = AtomicBool::new(false);

/// A monotonically increasing relaxed-atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Smallest histogram bucket upper bound, in nanoseconds. Bucket `i` counts
/// samples `< BUCKET_FLOOR_NS << i`; the last bucket also absorbs overflow.
pub const BUCKET_FLOOR_NS: u64 = 128;

/// A fixed-bucket latency histogram over nanosecond samples.
///
/// Buckets are powers of two starting at [`BUCKET_FLOOR_NS`] (128 ns, 256 ns,
/// … ≈ 275 s), which covers everything from a cache-hit population to a cold
/// full recompute with ≤ 2× relative error per bucket. All cells are relaxed
/// atomics: recording is wait-free and never synchronizes readers.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index for a nanosecond sample.
    fn bucket_of(nanos: u64) -> usize {
        let mut bound = BUCKET_FLOOR_NS;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            if nanos < bound {
                return i;
            }
            bound <<= 1;
        }
        HISTOGRAM_BUCKETS - 1
    }

    /// The inclusive upper bound of bucket `i`, in nanoseconds (the last
    /// bucket is unbounded; its nominal bound is returned).
    pub fn bucket_bound(i: usize) -> u64 {
        BUCKET_FLOOR_NS << i.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one nanosecond sample.
    pub fn record(&self, nanos: u64) {
        self.buckets[Self::bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Times `f` and records its wall-clock duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = std::time::Instant::now();
        let r = f();
        self.record(t0.elapsed().as_nanos() as u64);
        r
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the histogram (relaxed reads; exact only
    /// in quiescence, which is all observability needs).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum: u64,
    /// Per-bucket sample counts (see [`Histogram::bucket_bound`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample, in nanoseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The median (p50) latency estimate, in nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The p95 latency estimate, in nanoseconds.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The p99 latency estimate, in nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Upper-bound estimate of the `q`-quantile (0 ≤ q ≤ 1), in
    /// nanoseconds: the bound of the first bucket whose cumulative count
    /// reaches `q·count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                return Histogram::bucket_bound(i);
            }
        }
        Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// A process-wide registry of named counters and histograms.
///
/// Metric names are dot-separated paths (`"oodb.store.mutations"`,
/// `"views.population.recompute_ns"`). Lookup takes a read lock; hot call
/// sites should cache the returned `Arc` (see [`metric_counter!`]).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry (the process normally uses [`registry`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry.
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

/// A point-in-time copy of a [`MetricsRegistry`], serializable as JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a self-contained JSON document (counters
    /// as integers; histograms as count/sum/mean/quantile summaries plus
    /// the non-empty buckets as `[upper_bound_ns, count]` pairs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {value}", json_str(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"sum_ns\": {}, \"mean_ns\": {:.0}, \
                 \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
                json_str(name),
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    let sep = if first { "" } else { ", " };
                    let _ = write!(out, "{sep}[{}, {n}]", Histogram::bucket_bound(b));
                    first = false;
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

impl MetricsSnapshot {
    /// The movement between `earlier` and `self`: counters as saturating
    /// differences, histograms as per-bucket/count/sum saturating
    /// differences. Names absent from `earlier` keep their full value, so
    /// tests can assert on exactly the counters their own work moved
    /// without cross-test contamination from the process-wide registry.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let d = match earlier.histograms.get(k) {
                        Some(e) => HistogramSnapshot {
                            count: h.count.saturating_sub(e.count),
                            sum: h.sum.saturating_sub(e.sum),
                            buckets: std::array::from_fn(|i| {
                                h.buckets[i].saturating_sub(e.buckets[i])
                            }),
                        },
                        None => h.clone(),
                    };
                    (k.clone(), d)
                })
                .collect(),
        }
    }
}

// --- workload registry -----------------------------------------------------

/// Per-fingerprint workload aggregate: everything the profiler learns about
/// one query *shape* (see `ov_query::fingerprint`). All cells are relaxed
/// atomics; the entry is shared via `Arc` so recording never holds the
/// registry lock.
#[derive(Debug, Default)]
pub struct WorkloadEntry {
    /// The literal-normalized query text this fingerprint hashes (the
    /// first-seen exemplar; identical for every member by construction).
    pub normalized: String,
    /// Executions recorded.
    pub calls: Counter,
    /// Cumulative result rows across executions.
    pub rows: Counter,
    /// Wall-clock latency per execution.
    pub latency: Histogram,
    /// Executions whose top-level expression ran the compiled engine.
    pub compiled: Counter,
    /// Executions whose top-level expression ran the interpreter.
    pub interpreted: Counter,
    /// Population cache hits observed during executions.
    pub pop_cache_hits: Counter,
    /// Population delta patches observed during executions.
    pub pop_deltas: Counter,
    /// Population full recomputes observed during executions.
    pub pop_recomputes: Counter,
    /// Stale populations served during executions (degraded mode).
    pub pop_stale_serves: Counter,
    /// Executions whose plan was served from the fingerprint-keyed plan
    /// cache.
    pub plan_cache_hits: Counter,
    /// Executions that planned from scratch (cold cache, generation bump,
    /// or drift eviction).
    pub plan_cache_misses: Counter,
}

/// A process-wide registry of [`WorkloadEntry`]s keyed by fingerprint.
///
/// Populated by the query layer when [`profiling_enabled`] is on; read by
/// `ovq .workload` and `harness --workload FILE`.
#[derive(Debug, Default)]
pub struct WorkloadRegistry {
    entries: RwLock<BTreeMap<String, Arc<WorkloadEntry>>>,
}

impl WorkloadRegistry {
    /// An empty registry (the process normally uses [`workload`]).
    pub fn new() -> WorkloadRegistry {
        WorkloadRegistry::default()
    }

    /// The entry for `fingerprint`, created with `normalized` as its
    /// exemplar on first use.
    pub fn entry(&self, fingerprint: &str, normalized: &str) -> Arc<WorkloadEntry> {
        if let Some(e) = self.entries.read().get(fingerprint) {
            return e.clone();
        }
        self.entries
            .write()
            .entry(fingerprint.to_owned())
            .or_insert_with(|| {
                Arc::new(WorkloadEntry {
                    normalized: normalized.to_owned(),
                    ..WorkloadEntry::default()
                })
            })
            .clone()
    }

    /// Number of distinct fingerprints recorded.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// A point-in-time copy: `(fingerprint, entry)` pairs sorted by
    /// descending cumulative latency (the "what dominates this workload"
    /// order).
    pub fn snapshot(&self) -> Vec<(String, Arc<WorkloadEntry>)> {
        let mut v: Vec<_> = self
            .entries
            .read()
            .iter()
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect();
        v.sort_by_key(|(_, e)| std::cmp::Reverse(e.latency.snapshot().sum));
        v
    }

    /// Serializes the registry as a JSON array, dominant fingerprints
    /// first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (fp, e)) in self.snapshot().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let lat = e.latency.snapshot();
            let _ = write!(
                out,
                "{sep}\n  {{\"fingerprint\": {}, \"normalized\": {}, \"calls\": {}, \
                 \"rows\": {}, \"total_ns\": {}, \"mean_ns\": {:.0}, \"p95_ns\": {}, \
                 \"compiled\": {}, \"interpreted\": {}, \"pop_cache_hits\": {}, \
                 \"pop_deltas\": {}, \"pop_recomputes\": {}, \"pop_stale_serves\": {}, \
                 \"plan_cache_hits\": {}, \"plan_cache_misses\": {}}}",
                json_str(fp),
                json_str(&e.normalized),
                e.calls.get(),
                e.rows.get(),
                lat.sum,
                lat.mean(),
                lat.p95(),
                e.compiled.get(),
                e.interpreted.get(),
                e.pop_cache_hits.get(),
                e.pop_deltas.get(),
                e.pop_recomputes.get(),
                e.pop_stale_serves.get(),
                e.plan_cache_hits.get(),
                e.plan_cache_misses.get(),
            );
        }
        out.push_str("\n]\n");
        out
    }
}

/// The process-wide workload registry.
pub fn workload() -> &'static WorkloadRegistry {
    static GLOBAL: OnceLock<WorkloadRegistry> = OnceLock::new();
    GLOBAL.get_or_init(WorkloadRegistry::default)
}

// --- slow-query log --------------------------------------------------------

/// Maximum entries the slow-query ring retains (oldest evicted first).
pub const SLOW_QUERY_CAP: usize = 64;

/// Default slow-query threshold: 10 ms.
pub const DEFAULT_SLOW_QUERY_NS: u64 = 10_000_000;

/// One captured slow query: the text, its fingerprint, how long it took,
/// and the full rendered trace (stages, populations, actuals).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQuery {
    /// The original query text.
    pub query: String,
    /// The query's workload fingerprint.
    pub fingerprint: String,
    /// Wall-clock execution time, in nanoseconds.
    pub nanos: u64,
    /// The rendered `QueryTrace` (multi-line).
    pub trace: String,
}

/// A bounded ring of the most recent queries that exceeded the threshold.
///
/// Recording takes a short mutex — acceptable because only queries already
/// past the (multi-millisecond) threshold ever reach it; the per-query fast
/// path is the one relaxed threshold load.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_ns: AtomicU64,
    entries: Mutex<VecDeque<SlowQuery>>,
}

impl Default for SlowQueryLog {
    fn default() -> SlowQueryLog {
        SlowQueryLog {
            threshold_ns: AtomicU64::new(DEFAULT_SLOW_QUERY_NS),
            entries: Mutex::new(VecDeque::new()),
        }
    }
}

impl SlowQueryLog {
    /// An empty log (the process normally uses [`slow_queries`]).
    pub fn new() -> SlowQueryLog {
        SlowQueryLog::default()
    }

    /// The current threshold, in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Sets the threshold, in nanoseconds.
    pub fn set_threshold_ns(&self, ns: u64) {
        self.threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Records `entry` if it meets the threshold, evicting the oldest entry
    /// past [`SLOW_QUERY_CAP`]. Returns whether it was kept.
    pub fn record(&self, entry: SlowQuery) -> bool {
        if entry.nanos < self.threshold_ns() {
            return false;
        }
        let mut ring = self.entries.lock();
        if ring.len() >= SLOW_QUERY_CAP {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.entries.lock().iter().cloned().collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drops every entry (the threshold is kept).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Serializes the log as a JSON array, oldest first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries().iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n  {{\"query\": {}, \"fingerprint\": {}, \"nanos\": {}, \"trace\": {}}}",
                json_str(&e.query),
                json_str(&e.fingerprint),
                e.nanos,
                json_str(&e.trace),
            );
        }
        out.push_str("\n]\n");
        out
    }
}

/// The process-wide slow-query log.
pub fn slow_queries() -> &'static SlowQueryLog {
    static GLOBAL: OnceLock<SlowQueryLog> = OnceLock::new();
    GLOBAL.get_or_init(SlowQueryLog::default)
}

/// Quotes and escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The process-wide counter named by the literal, resolved once per call
/// site and cached in a `OnceLock` — steady-state cost is one relaxed
/// `fetch_add`, no locking.
#[macro_export]
macro_rules! metric_counter {
    ($name:expr) => {{
        static __METRIC: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**__METRIC.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// The process-wide histogram named by the literal, cached per call site
/// like [`metric_counter!`].
#[macro_export]
macro_rules! metric_histogram {
    ($name:expr) => {{
        static __METRIC: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__METRIC.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b").get(), 5);
        assert_eq!(r.snapshot().counters["a.b"], 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(127), 0);
        assert_eq!(Histogram::bucket_of(128), 1);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for ns in [50u64, 200, 200, 5_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 5_450);
        // p50 falls in the 200 ns bucket (bound 256), p95/p99 in the 5 µs
        // one.
        assert_eq!(s.quantile(0.5), 256);
        assert_eq!(s.p50(), s.quantile(0.5));
        assert!(s.p95() >= 5_000);
        assert_eq!(s.p99(), s.quantile(0.99));
        assert!(s.quantile(0.99) >= 5_000);
        assert!(s.mean() > 1_000.0);
        // Empty histograms report zero percentiles, not garbage.
        let empty = Histogram::new().snapshot();
        assert_eq!((empty.p50(), empty.p95(), empty.p99()), (0, 0, 0));
    }

    #[test]
    fn snapshot_serializes_as_json() {
        let r = MetricsRegistry::new();
        r.counter("x.count").add(3);
        r.histogram("y_ns").record(1_000);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"x.count\": 3"), "got: {json}");
        assert!(json.contains("\"y_ns\""), "got: {json}");
        assert!(json.contains("\"count\": 1"), "got: {json}");
        assert!(json.contains("\"p95_ns\""), "got: {json}");
        // Hand-rolled JSON must stay structurally balanced.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "got: {json}"
        );
    }

    #[test]
    fn global_registry_is_shared() {
        let a = registry().counter("test.metrics.shared");
        let before = a.get();
        metric_counter!("test.metrics.shared").inc();
        assert_eq!(a.get(), before + 1);
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn delta_since_isolates_counter_movement() {
        let r = MetricsRegistry::new();
        r.counter("a").add(10);
        r.counter("b").add(1);
        r.histogram("h_ns").record(200);
        let before = r.snapshot();
        r.counter("a").add(5);
        r.counter("c").add(7); // born after the baseline
        r.histogram("h_ns").record(200);
        r.histogram("h_ns").record(5_000);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counters["a"], 5);
        assert_eq!(delta.counters["b"], 0);
        assert_eq!(delta.counters["c"], 7);
        let h = &delta.histograms["h_ns"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 5_200);
        assert_eq!(h.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn profiling_flag_toggles() {
        let was = profiling_enabled();
        set_profiling(true);
        assert!(profiling_enabled());
        set_profiling(false);
        assert!(!profiling_enabled());
        set_profiling(was);
    }

    #[test]
    fn workload_registry_aggregates_per_fingerprint() {
        let w = WorkloadRegistry::new();
        let e = w.entry(
            "deadbeefdeadbeef",
            "(select P from P in Person where P.Age > ?)",
        );
        e.calls.inc();
        e.rows.add(41);
        e.latency.record(1_000);
        e.compiled.inc();
        // Second lookup hits the same entry; the exemplar is kept.
        let e2 = w.entry("deadbeefdeadbeef", "(ignored — first exemplar wins)");
        e2.calls.inc();
        assert_eq!(w.len(), 1);
        let snap = w.snapshot();
        assert_eq!(snap[0].0, "deadbeefdeadbeef");
        assert_eq!(snap[0].1.calls.get(), 2);
        assert_eq!(
            snap[0].1.normalized,
            "(select P from P in Person where P.Age > ?)"
        );
        let json = w.to_json();
        assert!(json.contains("\"calls\": 2"), "got: {json}");
        assert!(json.contains("deadbeefdeadbeef"), "got: {json}");
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn workload_snapshot_orders_by_cumulative_latency() {
        let w = WorkloadRegistry::new();
        let cheap = w.entry("aaaa", "cheap");
        let hot = w.entry("bbbb", "hot");
        cheap.latency.record(100);
        hot.latency.record(1_000_000);
        let snap = w.snapshot();
        assert_eq!(snap[0].0, "bbbb");
        assert_eq!(snap[1].0, "aaaa");
    }

    #[test]
    fn slow_query_log_thresholds_and_bounds() {
        let log = SlowQueryLog::new();
        log.set_threshold_ns(1_000);
        let mk = |i: u64, nanos: u64| SlowQuery {
            query: format!("q{i}"),
            fingerprint: "f".into(),
            nanos,
            trace: "t".into(),
        };
        assert!(!log.record(mk(0, 999)), "below threshold");
        assert!(log.record(mk(1, 1_000)));
        for i in 2..(SLOW_QUERY_CAP as u64 + 10) {
            log.record(mk(i, 2_000));
        }
        assert_eq!(log.len(), SLOW_QUERY_CAP);
        // Oldest entries were evicted.
        let entries = log.entries();
        assert_eq!(entries[0].query, "q10");
        let json = log.to_json();
        assert!(json.contains("\"nanos\": 2000"), "got: {json}");
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.threshold_ns(), 1_000, "clear keeps the threshold");
    }
}
