//! Error types for the data-model layer.

use std::fmt;

use crate::ids::{ClassId, Oid};
use crate::symbol::Symbol;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, OodbError>;

/// Errors raised by the schema/store layer.
#[derive(Clone, PartialEq, Debug)]
pub enum OodbError {
    /// A class name was not found in the schema.
    UnknownClass(Symbol),
    /// A class id was out of range for the schema.
    BadClassId(ClassId),
    /// A class with this name already exists.
    DuplicateClass(Symbol),
    /// An attribute was not found on the class (after upward resolution).
    UnknownAttr {
        /// The class the lookup started from.
        class: Symbol,
        /// The attribute name.
        attr: Symbol,
    },
    /// Attribute is defined more than once *within one class*.
    DuplicateAttr {
        /// The offending class.
        class: Symbol,
        /// The duplicated attribute.
        attr: Symbol,
    },
    /// Adding this superclass edge would create a cycle.
    CyclicInheritance {
        /// The class gaining a parent.
        class: Symbol,
        /// The would-be parent.
        parent: Symbol,
    },
    /// An oid that is not (or no longer) in the store.
    UnknownObject(Oid),
    /// A named root was not found.
    UnknownName(Symbol),
    /// A named root already exists.
    DuplicateName(Symbol),
    /// A value did not match the expected type.
    TypeMismatch {
        /// Where the check happened (attribute, argument, …).
        context: String,
        /// Rendered expected type.
        expected: String,
        /// Rendered offending value.
        found: String,
    },
    /// Tried to store into a computed attribute.
    NotStored {
        /// The class.
        class: Symbol,
        /// The computed attribute.
        attr: Symbol,
    },
    /// Upward resolution found several incomparable definitions — the
    /// paper's *schizophrenia* (§4.3).
    Schizophrenia {
        /// The class resolution started from.
        class: Symbol,
        /// The conflicted attribute.
        attr: Symbol,
        /// The incomparable classes each providing a definition.
        defined_in: Vec<Symbol>,
    },
    /// An attribute redefinition is not type-compatible with an inherited
    /// definition (covariance violation).
    IncompatibleOverride {
        /// The redefining class.
        class: Symbol,
        /// The attribute.
        attr: Symbol,
        /// The ancestor whose definition is violated.
        parent: Symbol,
    },
    /// A database with this name already exists in the system catalog.
    DuplicateDatabase(Symbol),
    /// A database name was not found in the system catalog.
    UnknownDatabase(Symbol),
    /// An object value referenced an oid of the wrong class.
    BadReference {
        /// Where the reference was found.
        context: String,
        /// The offending oid.
        oid: Oid,
    },
    /// A failpoint fired (see [`crate::faults`]). Deliberately transient:
    /// retry/degradation logic upstack keys off this variant.
    Fault(crate::faults::InjectedFault),
    /// An operating-system I/O failure in the durability layer. Carries the
    /// rendered OS message rather than the `std::io::Error` itself so the
    /// error type stays `Clone + PartialEq`.
    Io {
        /// What the engine was doing (e.g. `"wal append"`).
        context: String,
        /// The OS error message.
        message: String,
    },
    /// A persistent file failed validation: bad magic, checksum mismatch,
    /// or a truncated structure where the format demands more bytes.
    Corrupt {
        /// What was being decoded and what was wrong with it.
        context: String,
    },
    /// A persistent file carries a format version this build cannot read.
    UnsupportedFormat {
        /// The version found in the file.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
}

impl fmt::Display for OodbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OodbError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            OodbError::BadClassId(c) => write!(f, "class id {c:?} out of range"),
            OodbError::DuplicateClass(n) => write!(f, "class `{n}` already exists"),
            OodbError::UnknownAttr { class, attr } => {
                write!(f, "class `{class}` has no attribute `{attr}`")
            }
            OodbError::DuplicateAttr { class, attr } => {
                write!(f, "attribute `{attr}` defined twice in class `{class}`")
            }
            OodbError::CyclicInheritance { class, parent } => write!(
                f,
                "making `{parent}` a superclass of `{class}` would create an inheritance cycle"
            ),
            OodbError::UnknownObject(oid) => write!(f, "no object with oid {oid}"),
            OodbError::UnknownName(n) => write!(f, "no named object `{n}`"),
            OodbError::DuplicateName(n) => write!(f, "named object `{n}` already exists"),
            OodbError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            OodbError::NotStored { class, attr } => write!(
                f,
                "attribute `{attr}` of class `{class}` is computed, not stored"
            ),
            OodbError::Schizophrenia {
                class,
                attr,
                defined_in,
            } => {
                write!(
                    f,
                    "schizophrenia: attribute `{attr}` on `{class}` has conflicting definitions in "
                )?;
                for (i, c) in defined_in.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{c}`")?;
                }
                Ok(())
            }
            OodbError::IncompatibleOverride { class, attr, parent } => write!(
                f,
                "attribute `{attr}` in class `{class}` is not a subtype of its definition in superclass `{parent}`"
            ),
            OodbError::DuplicateDatabase(n) => write!(f, "database `{n}` already exists"),
            OodbError::UnknownDatabase(n) => write!(f, "unknown database `{n}`"),
            OodbError::BadReference { context, oid } => {
                write!(f, "{context}: dangling or ill-classed reference {oid}")
            }
            OodbError::Fault(inner) => write!(f, "{inner}"),
            OodbError::Io { context, message } => write!(f, "{context}: i/o error: {message}"),
            OodbError::Corrupt { context } => write!(f, "corrupt file: {context}"),
            OodbError::UnsupportedFormat { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
        }
    }
}

impl std::error::Error for OodbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OodbError::Fault(inner) => Some(inner),
            _ => None,
        }
    }
}

impl OodbError {
    /// Is this error an injected (or otherwise transient) failure that a
    /// retry could plausibly clear? Degradation logic in `ov-views` uses
    /// this to decide between retrying and serving a stale population.
    pub fn is_transient(&self) -> bool {
        matches!(self, OodbError::Fault(_))
    }

    /// Wraps a `std::io::Error` with the operation that hit it.
    pub fn io(context: &str, err: std::io::Error) -> OodbError {
        OodbError::Io {
            context: context.to_string(),
            message: err.to_string(),
        }
    }

    /// A corruption error with a rendered context.
    pub fn corrupt(context: impl Into<String>) -> OodbError {
        OodbError::Corrupt {
            context: context.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    #[test]
    fn messages_are_informative() {
        let e = OodbError::Schizophrenia {
            class: sym("Rich&Senior"),
            attr: sym("Print"),
            defined_in: vec![sym("Rich"), sym("Senior")],
        };
        let msg = e.to_string();
        assert!(msg.contains("schizophrenia"));
        assert!(msg.contains("`Rich`") && msg.contains("`Senior`"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(OodbError::UnknownClass(sym("Ghost")));
        assert_eq!(e.to_string(), "unknown class `Ghost`");
    }
}
