//! The write-ahead log: an append-only redo log of store mutations.
//!
//! Durability here follows the classic recipe the paper's platform (O₂,
//! like every disk-resident OODB) relied on: every mutation is encoded as a
//! [`WalRecord`] and **appended to the log before it is applied** to the
//! in-memory store, so the log is always a superset of volatile state and
//! replaying it after a crash recovers exactly the committed prefix.
//!
//! ## Frame format
//!
//! ```text
//! ┌─────────┬─────────┬─────────┬──────────────┐
//! │ len u32 │ crc u32 │ lsn u64 │ payload …    │   (all little-endian)
//! └─────────┴─────────┴─────────┴──────────────┘
//! ```
//!
//! `len` counts the lsn plus payload bytes; `crc` is CRC32 (IEEE) over those
//! same bytes. LSNs are **monotonic** starting at 1. On open the log is
//! scanned frame by frame; the first frame with a short body, a checksum
//! mismatch, or a non-monotonic LSN marks the *torn tail* — everything from
//! there on is truncated away (a crash mid-append must lose at most the
//! records that were never acknowledged as synced).
//!
//! ## Sync policy
//!
//! [`Durability::WalSync`] fsyncs after every commit; [`Durability::Wal`]
//! groups commits and fsyncs every [`GROUP_COMMIT_INTERVAL`] records (and on
//! checkpoint/close), trading a bounded crash-loss window for throughput.
//!
//! Failpoint sites: `wal.append` (reject an append before any byte is
//! written), `wal.torn_write` (write a deliberately partial frame, then
//! error — simulates a crash mid-write), `wal.fsync` (fail the sync).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::{self, crc32, Reader, Writer};
use crate::error::{OodbError, Result};
use crate::ids::{ClassId, Oid};
use crate::schema::AttrDef;
use crate::symbol::Symbol;
use crate::value::{Tuple, Value};

/// How many records may accumulate between fsyncs under
/// [`Durability::Wal`]. [`Durability::WalSync`] syncs every commit.
pub const GROUP_COMMIT_INTERVAL: u64 = 64;

/// Frame header bytes: `len` + `crc`.
const FRAME_HEADER: usize = 8;

/// Durability level of a database.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Durability {
    /// In-memory only: no WAL, no checkpoints (the pre-PR-9 behavior).
    #[default]
    None,
    /// Write-ahead logging with group fsync (every
    /// [`GROUP_COMMIT_INTERVAL`] records): a crash loses at most the
    /// unsynced tail.
    Wal,
    /// Write-ahead logging with an fsync per commit: a crash loses nothing
    /// that was acknowledged.
    WalSync,
}

impl Durability {
    /// Parses a durability level from its CLI spelling.
    pub fn parse(s: &str) -> Option<Durability> {
        Some(match s {
            "none" => Durability::None,
            "wal" => Durability::Wal,
            "walsync" | "wal-sync" | "wal_sync" => Durability::WalSync,
            _ => return None,
        })
    }

    /// The CLI spelling of this level.
    pub fn as_str(self) -> &'static str {
        match self {
            Durability::None => "none",
            Durability::Wal => "wal",
            Durability::WalSync => "walsync",
        }
    }
}

impl std::fmt::Display for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One redo record. Everything a [`crate::Store`]-backed database mutates is
/// represented: object mutations, schema DDL, index DDL, name bindings, and
/// — the paper-specific part — imaginary-identity assignments from the view
/// layer (§5.1's tuple→oid tables must survive restarts).
#[derive(Clone, PartialEq, Debug)]
pub enum WalRecord {
    /// An object was created with a pre-allocated oid.
    Insert {
        /// The allocated oid.
        oid: Oid,
        /// The class the object is real in.
        class: ClassId,
        /// The full stored tuple (after null-filling).
        value: Tuple,
    },
    /// An object's whole value was replaced.
    Update {
        /// The object.
        oid: Oid,
        /// The replacement tuple.
        value: Tuple,
    },
    /// One stored field was set.
    SetField {
        /// The object.
        oid: Oid,
        /// The field.
        name: Symbol,
        /// The new value.
        value: Value,
    },
    /// An object was removed.
    Remove {
        /// The removed oid.
        oid: Oid,
    },
    /// A secondary index was created on `(class, attr)`.
    CreateIndex {
        /// The indexed class (shallow extent).
        class: ClassId,
        /// The indexed stored attribute.
        attr: Symbol,
    },
    /// A secondary index was dropped.
    DropIndex {
        /// The class.
        class: ClassId,
        /// The attribute.
        attr: Symbol,
    },
    /// A persistent name was bound to an object.
    NameBind {
        /// The name.
        name: Symbol,
        /// The object it names.
        oid: Oid,
    },
    /// A class was added to the schema. Replay re-runs
    /// [`crate::Schema::add_class`], which assigns the same sequential
    /// [`ClassId`] — ids are deterministic in creation order.
    AddClass {
        /// The class name.
        name: Symbol,
        /// Direct superclasses (already existing at append time).
        parents: Vec<ClassId>,
        /// Own attribute definitions.
        attrs: Vec<AttrDef>,
    },
    /// An attribute was added to (or redefined on) an existing class.
    AddAttr {
        /// The class.
        class: ClassId,
        /// The definition.
        def: AttrDef,
    },
    /// A view assigned an imaginary oid to a core tuple (§5.1). Class is
    /// recorded *by name*: view-side class ids are rebuilt on every bind.
    IdentityAssign {
        /// The view that owns the identity table.
        view: Symbol,
        /// The imaginary class's name.
        class: Symbol,
        /// The core tuple keying the identity table.
        core: Tuple,
        /// The assigned imaginary oid.
        oid: Oid,
    },
    /// A view dropped an identity entry (GC of unreachable imaginaries).
    IdentityDrop {
        /// The view.
        view: Symbol,
        /// The imaginary class's name.
        class: Symbol,
        /// The dropped core tuple.
        core: Tuple,
    },
}

impl WalRecord {
    /// Encodes the record payload (tag byte + fields).
    pub fn encode(&self, w: &mut Writer) {
        match self {
            WalRecord::Insert { oid, class, value } => {
                w.put_u8(0);
                w.put_u64(oid.0);
                w.put_u32(class.0);
                codec::put_tuple(w, value);
            }
            WalRecord::Update { oid, value } => {
                w.put_u8(1);
                w.put_u64(oid.0);
                codec::put_tuple(w, value);
            }
            WalRecord::SetField { oid, name, value } => {
                w.put_u8(2);
                w.put_u64(oid.0);
                w.put_symbol(*name);
                codec::put_value(w, value);
            }
            WalRecord::Remove { oid } => {
                w.put_u8(3);
                w.put_u64(oid.0);
            }
            WalRecord::CreateIndex { class, attr } => {
                w.put_u8(4);
                w.put_u32(class.0);
                w.put_symbol(*attr);
            }
            WalRecord::DropIndex { class, attr } => {
                w.put_u8(5);
                w.put_u32(class.0);
                w.put_symbol(*attr);
            }
            WalRecord::NameBind { name, oid } => {
                w.put_u8(6);
                w.put_symbol(*name);
                w.put_u64(oid.0);
            }
            WalRecord::AddClass {
                name,
                parents,
                attrs,
            } => {
                w.put_u8(7);
                w.put_symbol(*name);
                w.put_u32(parents.len() as u32);
                for p in parents {
                    w.put_u32(p.0);
                }
                w.put_u32(attrs.len() as u32);
                for a in attrs {
                    codec::put_attr_def(w, a);
                }
            }
            WalRecord::AddAttr { class, def } => {
                w.put_u8(8);
                w.put_u32(class.0);
                codec::put_attr_def(w, def);
            }
            WalRecord::IdentityAssign {
                view,
                class,
                core,
                oid,
            } => {
                w.put_u8(9);
                w.put_symbol(*view);
                w.put_symbol(*class);
                codec::put_tuple(w, core);
                w.put_u64(oid.0);
            }
            WalRecord::IdentityDrop { view, class, core } => {
                w.put_u8(10);
                w.put_symbol(*view);
                w.put_symbol(*class);
                codec::put_tuple(w, core);
            }
        }
    }

    /// Decodes a record payload.
    pub fn decode(r: &mut Reader<'_>) -> Result<WalRecord> {
        Ok(match r.take_u8()? {
            0 => WalRecord::Insert {
                oid: Oid(r.take_u64()?),
                class: ClassId(r.take_u32()?),
                value: codec::take_tuple(r)?,
            },
            1 => WalRecord::Update {
                oid: Oid(r.take_u64()?),
                value: codec::take_tuple(r)?,
            },
            2 => WalRecord::SetField {
                oid: Oid(r.take_u64()?),
                name: r.take_symbol()?,
                value: codec::take_value(r)?,
            },
            3 => WalRecord::Remove {
                oid: Oid(r.take_u64()?),
            },
            4 => WalRecord::CreateIndex {
                class: ClassId(r.take_u32()?),
                attr: r.take_symbol()?,
            },
            5 => WalRecord::DropIndex {
                class: ClassId(r.take_u32()?),
                attr: r.take_symbol()?,
            },
            6 => WalRecord::NameBind {
                name: r.take_symbol()?,
                oid: Oid(r.take_u64()?),
            },
            7 => {
                let name = r.take_symbol()?;
                let np = r.take_len(4)?;
                let mut parents = Vec::with_capacity(np);
                for _ in 0..np {
                    parents.push(ClassId(r.take_u32()?));
                }
                let na = r.take_len(5)?;
                let mut attrs = Vec::with_capacity(na);
                for _ in 0..na {
                    attrs.push(codec::take_attr_def(r)?);
                }
                WalRecord::AddClass {
                    name,
                    parents,
                    attrs,
                }
            }
            8 => WalRecord::AddAttr {
                class: ClassId(r.take_u32()?),
                def: codec::take_attr_def(r)?,
            },
            9 => WalRecord::IdentityAssign {
                view: r.take_symbol()?,
                class: r.take_symbol()?,
                core: codec::take_tuple(r)?,
                oid: Oid(r.take_u64()?),
            },
            10 => WalRecord::IdentityDrop {
                view: r.take_symbol()?,
                class: r.take_symbol()?,
                core: codec::take_tuple(r)?,
            },
            tag => {
                return Err(OodbError::corrupt(format!(
                    "wal record: unknown record tag {tag}"
                )))
            }
        })
    }

    /// Does this record mutate the object store (as opposed to schema,
    /// names, indexes, or identity tables)? Store mutations bump the store
    /// version on replay.
    pub fn is_store_mutation(&self) -> bool {
        matches!(
            self,
            WalRecord::Insert { .. }
                | WalRecord::Update { .. }
                | WalRecord::SetField { .. }
                | WalRecord::Remove { .. }
        )
    }
}

/// An open write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// The LSN the next append will carry.
    next_lsn: u64,
    /// Appended records not yet covered by an fsync.
    unsynced: u64,
    /// Records appended since the last [`Wal::reset`] (i.e. since the last
    /// checkpoint).
    records_since_reset: u64,
    /// Current byte length of the log.
    bytes: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, scanning and returning
    /// every valid record, and truncating any torn tail left by a crash
    /// mid-append.
    pub fn open(path: &Path) -> Result<(Wal, Vec<(u64, WalRecord)>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| OodbError::io("wal open", e))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)
            .map_err(|e| OodbError::io("wal read", e))?;

        let mut records = Vec::new();
        let mut good = 0usize; // byte offset of the end of the last valid frame
        let mut next_lsn = 1u64;
        while raw.len() - good >= FRAME_HEADER {
            let len = u32::from_le_bytes(raw[good..good + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(raw[good + 4..good + 8].try_into().expect("4 bytes"));
            // A frame body is at least the 8-byte LSN.
            if len < 8 || raw.len() - good - FRAME_HEADER < len {
                break; // torn tail: header claims more bytes than exist
            }
            let body = &raw[good + FRAME_HEADER..good + FRAME_HEADER + len];
            if crc32(body) != crc {
                break; // torn or corrupted tail
            }
            let mut r = Reader::new(body, "wal record");
            let lsn = r.take_u64().expect("length checked above");
            if lsn != next_lsn {
                break; // non-monotonic LSN: treat as tail damage
            }
            let Ok(rec) = WalRecord::decode(&mut r) else {
                break; // payload decodes are all bounds-checked
            };
            if !r.is_exhausted() {
                break; // trailing garbage inside a "valid" frame
            }
            records.push((lsn, rec));
            next_lsn = lsn + 1;
            good += FRAME_HEADER + len;
        }

        if good < raw.len() {
            let dropped = (raw.len() - good) as u64;
            crate::metric_counter!("wal.truncated_bytes").add(dropped);
            file.set_len(good as u64)
                .map_err(|e| OodbError::io("wal truncate torn tail", e))?;
            file.sync_all()
                .map_err(|e| OodbError::io("wal fsync after truncation", e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| OodbError::io("wal seek", e))?;

        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_lsn,
                unsynced: 0,
                records_since_reset: records.len() as u64,
                bytes: good as u64,
            },
            records,
        ))
    }

    /// Appends one record, returning its LSN. The record is written (and
    /// buffered by the OS) but **not** fsynced — call [`Wal::commit`].
    ///
    /// If the `wal.append` failpoint fires, nothing is written. If
    /// `wal.torn_write` fires, a deliberately partial frame is written
    /// before the error — simulating a crash mid-write; the torn bytes are
    /// truncated away on the next open.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64> {
        let mut span = crate::span!("wal.append", lsn = self.next_lsn);
        crate::failpoint!("wal.append");
        let lsn = self.next_lsn;
        let mut body = Writer::new();
        body.put_u64(lsn);
        rec.encode(&mut body);
        let body = body.into_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);

        if crate::faults::hit("wal.torn_write").is_err() {
            // Write a partial frame (half the bytes, at least cutting into
            // the body) and report failure, as a crash mid-write would.
            let cut = (frame.len() / 2).max(FRAME_HEADER + 1).min(frame.len() - 1);
            let _ = self.file.write_all(&frame[..cut]);
            let _ = self.file.flush();
            self.bytes += cut as u64;
            span.field("outcome", "torn_write");
            return Err(OodbError::Io {
                context: "wal append".to_string(),
                message: "injected torn write".to_string(),
            });
        }

        self.file
            .write_all(&frame)
            .map_err(|e| OodbError::io("wal append", e))?;
        self.next_lsn += 1;
        self.unsynced += 1;
        self.records_since_reset += 1;
        self.bytes += frame.len() as u64;
        crate::metric_counter!("wal.appends").inc();
        span.field("bytes", frame.len());
        Ok(lsn)
    }

    /// Makes appended records durable according to `durability`:
    /// [`Durability::WalSync`] fsyncs now, [`Durability::Wal`] fsyncs once
    /// [`GROUP_COMMIT_INTERVAL`] records have accumulated.
    pub fn commit(&mut self, durability: Durability) -> Result<()> {
        match durability {
            Durability::None => Ok(()),
            Durability::WalSync => self.sync(),
            Durability::Wal => {
                if self.unsynced >= GROUP_COMMIT_INTERVAL {
                    self.sync()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Forces an fsync of everything appended so far.
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        crate::failpoint!("wal.fsync");
        let t0 = std::time::Instant::now();
        self.file
            .sync_data()
            .map_err(|e| OodbError::io("wal fsync", e))?;
        crate::metric_histogram!("wal_fsync_ns").record(t0.elapsed().as_nanos() as u64);
        crate::metric_counter!("wal.fsyncs").inc();
        self.unsynced = 0;
        Ok(())
    }

    /// Truncates the log after a successful checkpoint. LSNs keep counting
    /// from where they were (they are monotonic for the life of the
    /// database directory, not of one log file) — except that a fresh scan
    /// of the now-empty file restarts at 1, so the checkpoint records the
    /// LSN watermark instead.
    pub fn reset(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| OodbError::io("wal reset", e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| OodbError::io("wal seek", e))?;
        self.file
            .sync_all()
            .map_err(|e| OodbError::io("wal fsync after reset", e))?;
        self.next_lsn = 1;
        self.unsynced = 0;
        self.records_since_reset = 0;
        self.bytes = 0;
        Ok(())
    }

    /// The LSN the next append will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Records appended since the last reset (checkpoint).
    pub fn records_since_reset(&self) -> u64 {
        self.records_since_reset
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ov-wal-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.ovl")
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                oid: Oid(1),
                class: ClassId(0),
                value: Tuple::from_fields([("Name", Value::str("Maggy"))]),
            },
            WalRecord::SetField {
                oid: Oid(1),
                name: sym("Age"),
                value: Value::Int(65),
            },
            WalRecord::IdentityAssign {
                view: sym("V"),
                class: sym("Addr"),
                core: Tuple::from_fields([("City", Value::str("Paris"))]),
                oid: Oid(crate::ids::IMAGINARY_OID_BASE + 4),
            },
            WalRecord::Remove { oid: Oid(1) },
        ]
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let path = tmp("roundtrip");
        let (mut wal, recs) = Wal::open(&path).unwrap();
        assert!(recs.is_empty());
        let originals = sample_records();
        for (i, rec) in originals.iter().enumerate() {
            assert_eq!(wal.append(rec).unwrap(), i as u64 + 1);
        }
        wal.sync().unwrap();
        drop(wal);
        let (wal, recs) = Wal::open(&path).unwrap();
        assert_eq!(wal.next_lsn(), 5);
        let got: Vec<WalRecord> = recs.iter().map(|(_, r)| r.clone()).collect();
        assert_eq!(got, originals);
        let lsns: Vec<u64> = recs.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4]);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        drop(wal);
        // Chop bytes off the end: every cut point must recover a prefix.
        // The full image is restored before each cut (recovery itself
        // truncates the file to the good prefix).
        let full_bytes = std::fs::read(&path).unwrap();
        for cut in [1u64, 3, 7, 11] {
            std::fs::write(&path, &full_bytes[..(full - cut) as usize]).unwrap();
            let (wal, recs) = Wal::open(&path).unwrap();
            assert!(recs.len() < 4, "cut {cut} must lose the last record");
            // The file was physically truncated to the good prefix.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), wal.bytes());
            drop(wal);
            // Reopening again is stable (idempotent truncation).
            let (_, recs2) = Wal::open(&path).unwrap();
            assert_eq!(recs.len(), recs2.len());
        }
    }

    #[test]
    fn corrupt_byte_in_tail_drops_only_the_tail() {
        let path = tmp("flip");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the last frame's payload.
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 3, "only the damaged record is lost");
    }

    #[test]
    fn injected_torn_write_recovers_prefix() {
        let path = tmp("fp-torn");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Remove { oid: Oid(9) }).unwrap();
        crate::faults::arm(
            "wal.torn_write",
            crate::FaultSchedule::Nth(1),
            crate::FaultAction::Error,
        );
        let err = wal.append(&WalRecord::Remove { oid: Oid(10) }).unwrap_err();
        crate::faults::clear();
        assert!(matches!(err, OodbError::Io { .. }));
        wal.sync().unwrap();
        drop(wal);
        let (_, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs, vec![(1, WalRecord::Remove { oid: Oid(9) })]);
    }

    #[test]
    fn group_commit_syncs_on_interval() {
        let path = tmp("group");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for _ in 0..GROUP_COMMIT_INTERVAL - 1 {
            wal.append(&WalRecord::Remove { oid: Oid(1) }).unwrap();
            wal.commit(Durability::Wal).unwrap();
        }
        assert_eq!(wal.unsynced, GROUP_COMMIT_INTERVAL - 1);
        wal.append(&WalRecord::Remove { oid: Oid(1) }).unwrap();
        wal.commit(Durability::Wal).unwrap();
        assert_eq!(wal.unsynced, 0, "interval reached → synced");
        wal.append(&WalRecord::Remove { oid: Oid(1) }).unwrap();
        wal.commit(Durability::WalSync).unwrap();
        assert_eq!(wal.unsynced, 0, "walsync syncs every commit");
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for rec in sample_records() {
            wal.append(&rec).unwrap();
        }
        wal.reset().unwrap();
        assert_eq!(wal.records_since_reset(), 0);
        assert_eq!(wal.bytes(), 0);
        wal.append(&WalRecord::Remove { oid: Oid(5) }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn durability_parses_cli_spellings() {
        assert_eq!(Durability::parse("none"), Some(Durability::None));
        assert_eq!(Durability::parse("wal"), Some(Durability::Wal));
        assert_eq!(Durability::parse("walsync"), Some(Durability::WalSync));
        assert_eq!(Durability::parse("wal-sync"), Some(Durability::WalSync));
        assert_eq!(Durability::parse("bogus"), None);
        assert_eq!(Durability::WalSync.to_string(), "walsync");
    }
}
