//! # ov-oodb — an O₂-style object-oriented database engine
//!
//! This crate is the storage and data-model substrate for the reproduction of
//! *Objects and Views* (Abiteboul & Bonner, SIGMOD 1991). The paper presents
//! its view mechanism "in the context of the O₂ model" (§2); this crate
//! implements that model from the paper's description:
//!
//! * a database is a **hierarchy of classes** with multiple inheritance;
//! * each class has an associated **type**; every object in a class has a
//!   value of that type (assumed to be a tuple, per the paper);
//! * classes have **attributes** attached, where — following the paper's
//!   central simplification — stored values and methods are *not*
//!   distinguished: an attribute may be stored or computed, and may take
//!   arguments ("These virtual attributes may have zero or more arguments
//!   (besides the receiver)");
//! * **inheritance of types and methods** and **method overloading**;
//! * the **unique root rule**: an object is *real* in exactly one class and
//!   virtual in every superclass;
//! * **upward resolution** of attributes along the class hierarchy, with
//!   detection of multiple-inheritance conflicts (the paper's
//!   *schizophrenia*).
//!
//! The crate deliberately contains no query language and no view mechanism:
//! those live in `ov-query` and `ov-views` respectively. What it does export
//! is everything those layers need — an interned [`Symbol`] type, total-ordered
//! [`Value`]s, a structural+nominal [`Type`] lattice with subtyping and
//! least-upper-bound computation, a [`Schema`] of classes, a versioned object
//! [`Store`], and a multi-database [`System`] catalog.
//!
//! ## Quick taste
//!
//! ```
//! use ov_oodb::{Database, Type, Value, AttrDef, sym};
//!
//! let mut db = Database::new(sym("Staff"));
//! let person = db
//!     .create_class(sym("Person"), &[], vec![
//!         AttrDef::stored(sym("Name"), Type::Str),
//!         AttrDef::stored(sym("Age"), Type::Int),
//!     ])
//!     .unwrap();
//! let maggy = db
//!     .create_object(person, Value::tuple([("Name", Value::str("Maggy")), ("Age", Value::Int(65))]))
//!     .unwrap();
//! assert_eq!(db.stored_attr(maggy, sym("Age")).unwrap(), &Value::Int(65));
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod codec;
pub mod database;
pub mod dump;
pub mod durable;
pub mod error;
pub mod expr;
pub mod faults;
pub mod ids;
pub mod index;
pub mod metrics;
pub mod pager;
pub mod resolve;
pub mod schema;
pub mod stats;
pub mod store;
pub mod symbol;
pub mod trace;
pub mod types;
pub mod value;
pub mod wal;

pub use catalog::{DbHandle, System};
pub use database::{Database, DeleteMode};
pub use dump::{
    dump_database, dump_database_with_offset, read_checked, wrap_checked, DUMP_FORMAT, DUMP_MAGIC,
};
pub use durable::{DurableCore, IdentityMirror, WalStatus};
pub use error::{OodbError, Result};
pub use expr::{AggFunc, BinOp, Expr, SelectExpr, UnOp};
pub use faults::{FaultAction, FaultSchedule, InjectedFault};
pub use ids::{ClassId, DbId, Oid};
pub use index::{AttrIndex, IndexSet};
pub use metrics::{
    profiling_enabled, registry, set_profiling, slow_queries, workload, Counter, Histogram,
    MetricsRegistry, MetricsSnapshot, SlowQuery, SlowQueryLog, WorkloadEntry, WorkloadRegistry,
};
pub use pager::{IdentityEntry, SnapshotImage};
pub use resolve::{resolve_attr, ConflictPolicy, Resolution};
pub use schema::{AttrBody, AttrDef, AttrSig, Class, Schema};
pub use stats::{stats, AttrStatistics, ClassStatistics, ClassStats, Statistics, StatsRegistry};
pub use store::{Store, StoredObject};
pub use symbol::{sym, Symbol};
pub use trace::{recorder, FieldValue, SpanGuard, SpanRecord, TraceRecorder};
pub use types::{ClassGraph, Type};
pub use value::{Tuple, Value};
pub use wal::{Durability, Wal, WalRecord};
