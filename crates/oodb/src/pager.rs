//! Snapshot checkpoints: a versioned, checksummed page file.
//!
//! A checkpoint serializes the whole durable state of a database — schema,
//! objects, names, index definitions, and the view layer's imaginary
//! identity tables (§5.1) — into `snapshot.ovp`, after which the WAL can be
//! truncated: recovery is *snapshot + replay of the WAL tail*.
//!
//! ## File format
//!
//! ```text
//! header page:  magic "OVSNAP01" · format u32 · page_size u32 ·
//!               page_count u32 · body_len u64 · checkpoint_lsn u64 ·
//!               header crc u32
//! data pages:   page_count × ( crc u32 · chunk bytes )
//! ```
//!
//! Every page carries its own CRC32; a flipped bit anywhere surfaces as
//! [`OodbError::Corrupt`] naming the page. A foreign file fails the magic
//! check; a newer format version fails with
//! [`OodbError::UnsupportedFormat`] instead of misparsing.
//!
//! ## Atomicity
//!
//! The snapshot is written to `snapshot.ovp.tmp`, fsynced, then renamed
//! over `snapshot.ovp` (atomic on POSIX), then the directory is fsynced. A
//! crash at any point leaves either the old snapshot or the new one, never
//! a mix. Failpoint sites: `checkpoint.write` (fail while writing the temp
//! file), `checkpoint.rename` (fail before the rename commits).

use std::fs;
use std::io::Write;
use std::path::Path;

use crate::codec::{self, crc32, Reader, Writer};
use crate::error::{OodbError, Result};
use crate::ids::{ClassId, Oid};
use crate::schema::{AttrDef, Schema};
use crate::store::StoredObject;
use crate::symbol::Symbol;
use crate::value::Tuple;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"OVSNAP01";

/// Newest snapshot format version this build writes and reads.
pub const SNAPSHOT_FORMAT: u32 = 1;

/// Payload bytes per data page.
pub const PAGE_SIZE: usize = 8192;

/// File name of the snapshot within a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.ovp";

/// One durable identity-table entry: view × class name × core tuple → oid.
#[derive(Clone, PartialEq, Debug)]
pub struct IdentityEntry {
    /// The view owning the table.
    pub view: Symbol,
    /// The imaginary class's *name* (ids are rebuilt on every bind).
    pub class: Symbol,
    /// The core tuple keying the entry.
    pub core: Tuple,
    /// The imaginary oid assigned to it.
    pub oid: Oid,
}

/// The complete durable state captured by a checkpoint.
#[derive(Clone, Debug)]
pub struct SnapshotImage {
    /// The database name.
    pub name: Symbol,
    /// Store mutation counter at checkpoint time. Recovery re-seats
    /// `journal_floor` here (never back to 0).
    pub store_version: u64,
    /// The WAL LSN watermark: every record with LSN < this is reflected in
    /// the snapshot. The WAL is truncated at checkpoint, so after recovery
    /// replayed LSNs are *relative to* this watermark.
    pub checkpoint_lsn: u64,
    /// Classes in creation order: `(name, parents, own attrs)`.
    pub classes: Vec<(Symbol, Vec<ClassId>, Vec<AttrDef>)>,
    /// All objects (oid order for determinism).
    pub objects: Vec<StoredObject>,
    /// Named roots.
    pub names: Vec<(Symbol, Oid)>,
    /// Secondary index definitions (indexes themselves are rebuilt).
    pub index_defs: Vec<(ClassId, Symbol)>,
    /// The imaginary identity tables, flattened.
    pub identity: Vec<IdentityEntry>,
    /// Lowest imaginary oid not yet assigned (allocator seed).
    pub next_imaginary: u64,
}

impl Default for SnapshotImage {
    fn default() -> SnapshotImage {
        SnapshotImage {
            name: crate::symbol::sym(""),
            store_version: 0,
            checkpoint_lsn: 1,
            classes: Vec::new(),
            objects: Vec::new(),
            names: Vec::new(),
            index_defs: Vec::new(),
            identity: Vec::new(),
            next_imaginary: crate::ids::IMAGINARY_OID_BASE,
        }
    }
}

impl SnapshotImage {
    /// Flattens `schema` into the snapshot's class list. Parent edges whose
    /// id is ≥ the child's (added later via `add_superclass`) survive: the
    /// decoder re-applies them after all classes exist.
    pub fn capture_schema(&mut self, schema: &Schema) {
        self.classes = schema
            .classes()
            .map(|c| (c.name, c.parents.clone(), c.attrs.clone()))
            .collect();
    }

    /// Rebuilds a [`Schema`] from the captured class list.
    pub fn restore_schema(&self) -> Result<Schema> {
        let mut schema = Schema::new();
        let mut deferred: Vec<(ClassId, ClassId)> = Vec::new();
        for (i, (name, parents, attrs)) in self.classes.iter().enumerate() {
            let id = ClassId(i as u32);
            // Parents created before this class go through add_class (so
            // override checks see them); forward edges are re-applied after.
            let (early, late): (Vec<ClassId>, Vec<ClassId>) =
                parents.iter().partition(|p| (p.0 as usize) < i);
            let got = schema.add_class(*name, &early, attrs.clone())?;
            if got != id {
                return Err(OodbError::corrupt(format!(
                    "snapshot: class `{name}` restored with id {got:?}, expected {id:?}"
                )));
            }
            for p in late {
                deferred.push((id, p));
            }
        }
        for (class, parent) in deferred {
            if parent.0 as usize >= self.classes.len() {
                return Err(OodbError::corrupt(format!(
                    "snapshot: class {class:?} references unknown parent {parent:?}"
                )));
            }
            schema.add_superclass(class, parent)?;
        }
        Ok(schema)
    }

    /// Encodes the image body (the bytes that get paged and checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_symbol(self.name);
        w.put_u64(self.store_version);
        w.put_u64(self.checkpoint_lsn);
        w.put_u64(self.next_imaginary);
        w.put_u32(self.classes.len() as u32);
        for (name, parents, attrs) in &self.classes {
            w.put_symbol(*name);
            w.put_u32(parents.len() as u32);
            for p in parents {
                w.put_u32(p.0);
            }
            w.put_u32(attrs.len() as u32);
            for a in attrs {
                codec::put_attr_def(&mut w, a);
            }
        }
        w.put_u32(self.objects.len() as u32);
        for obj in &self.objects {
            w.put_u64(obj.oid.0);
            w.put_u32(obj.class.0);
            codec::put_tuple(&mut w, &obj.value);
        }
        w.put_u32(self.names.len() as u32);
        for (name, oid) in &self.names {
            w.put_symbol(*name);
            w.put_u64(oid.0);
        }
        w.put_u32(self.index_defs.len() as u32);
        for (class, attr) in &self.index_defs {
            w.put_u32(class.0);
            w.put_symbol(*attr);
        }
        w.put_u32(self.identity.len() as u32);
        for e in &self.identity {
            w.put_symbol(e.view);
            w.put_symbol(e.class);
            codec::put_tuple(&mut w, &e.core);
            w.put_u64(e.oid.0);
        }
        w.into_bytes()
    }

    /// Decodes an image body.
    pub fn decode(bytes: &[u8]) -> Result<SnapshotImage> {
        let mut r = Reader::new(bytes, "snapshot body");
        let name = r.take_symbol()?;
        let store_version = r.take_u64()?;
        let checkpoint_lsn = r.take_u64()?;
        let next_imaginary = r.take_u64()?;
        let nc = r.take_len(5)?;
        let mut classes = Vec::with_capacity(nc);
        for _ in 0..nc {
            let cname = r.take_symbol()?;
            let np = r.take_len(4)?;
            let mut parents = Vec::with_capacity(np);
            for _ in 0..np {
                parents.push(ClassId(r.take_u32()?));
            }
            let na = r.take_len(5)?;
            let mut attrs = Vec::with_capacity(na);
            for _ in 0..na {
                attrs.push(codec::take_attr_def(&mut r)?);
            }
            classes.push((cname, parents, attrs));
        }
        let no = r.take_len(13)?;
        let mut objects = Vec::with_capacity(no);
        for _ in 0..no {
            let oid = Oid(r.take_u64()?);
            let class = ClassId(r.take_u32()?);
            objects.push(StoredObject {
                oid,
                class,
                value: codec::take_tuple(&mut r)?,
            });
        }
        let nn = r.take_len(12)?;
        let mut names = Vec::with_capacity(nn);
        for _ in 0..nn {
            let n = r.take_symbol()?;
            names.push((n, Oid(r.take_u64()?)));
        }
        let ni = r.take_len(8)?;
        let mut index_defs = Vec::with_capacity(ni);
        for _ in 0..ni {
            let c = ClassId(r.take_u32()?);
            index_defs.push((c, r.take_symbol()?));
        }
        let ne = r.take_len(20)?;
        let mut identity = Vec::with_capacity(ne);
        for _ in 0..ne {
            let view = r.take_symbol()?;
            let class = r.take_symbol()?;
            let core = codec::take_tuple(&mut r)?;
            identity.push(IdentityEntry {
                view,
                class,
                core,
                oid: Oid(r.take_u64()?),
            });
        }
        if !r.is_exhausted() {
            return Err(OodbError::corrupt(format!(
                "snapshot body: {} trailing bytes after image",
                r.remaining()
            )));
        }
        Ok(SnapshotImage {
            name,
            store_version,
            checkpoint_lsn,
            classes,
            objects,
            names,
            index_defs,
            identity,
            next_imaginary,
        })
    }
}

/// Writes `image` as the snapshot of the database directory `dir`,
/// atomically (temp file → fsync → rename → directory fsync).
pub fn write_snapshot(dir: &Path, image: &SnapshotImage) -> Result<()> {
    let mut span = crate::span!("checkpoint.write", version = image.store_version);
    let body = image.encode();
    let pages: Vec<&[u8]> = if body.is_empty() {
        Vec::new()
    } else {
        body.chunks(PAGE_SIZE).collect()
    };

    let mut header = Writer::new();
    header.put_bytes(SNAPSHOT_MAGIC);
    header.put_u32(SNAPSHOT_FORMAT);
    header.put_u32(PAGE_SIZE as u32);
    header.put_u32(pages.len() as u32);
    header.put_u64(body.len() as u64);
    header.put_u64(image.checkpoint_lsn);
    let header_bytes = header.into_bytes();
    let header_crc = crc32(&header_bytes);

    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let fin = dir.join(SNAPSHOT_FILE);
    {
        crate::failpoint!("checkpoint.write");
        let mut f = fs::File::create(&tmp).map_err(|e| OodbError::io("checkpoint write", e))?;
        f.write_all(&header_bytes)
            .map_err(|e| OodbError::io("checkpoint write", e))?;
        f.write_all(&header_crc.to_le_bytes())
            .map_err(|e| OodbError::io("checkpoint write", e))?;
        for page in &pages {
            f.write_all(&crc32(page).to_le_bytes())
                .map_err(|e| OodbError::io("checkpoint write", e))?;
            f.write_all(page)
                .map_err(|e| OodbError::io("checkpoint write", e))?;
        }
        f.sync_all()
            .map_err(|e| OodbError::io("checkpoint fsync", e))?;
    }
    crate::failpoint!("checkpoint.rename");
    fs::rename(&tmp, &fin).map_err(|e| OodbError::io("checkpoint rename", e))?;
    // Make the rename itself durable.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    crate::metric_counter!("checkpoint.writes").inc();
    span.field("bytes", body.len());
    span.field("pages", pages.len());
    Ok(())
}

/// Reads the snapshot of `dir`, if one exists. `Ok(None)` when the
/// directory has never been checkpointed; typed errors for foreign,
/// truncated, or bit-rotted files.
pub fn read_snapshot(dir: &Path) -> Result<Option<SnapshotImage>> {
    let path = dir.join(SNAPSHOT_FILE);
    let raw = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(OodbError::io("snapshot read", e)),
    };
    // Header: magic(8) + format(4) + page_size(4) + page_count(4) +
    // body_len(8) + checkpoint_lsn(8) = 36, then its crc(4).
    const HEADER_LEN: usize = 36;
    if raw.len() < HEADER_LEN + 4 {
        return Err(OodbError::corrupt(format!(
            "snapshot header: file is only {} bytes",
            raw.len()
        )));
    }
    if &raw[..8] != SNAPSHOT_MAGIC {
        return Err(OodbError::corrupt(
            "snapshot header: bad magic (not an ov snapshot file)",
        ));
    }
    let stored_crc =
        u32::from_le_bytes(raw[HEADER_LEN..HEADER_LEN + 4].try_into().expect("4 bytes"));
    if crc32(&raw[..HEADER_LEN]) != stored_crc {
        return Err(OodbError::corrupt("snapshot header: checksum mismatch"));
    }
    let mut r = Reader::new(&raw[8..HEADER_LEN], "snapshot header");
    let format = r.take_u32()?;
    if format > SNAPSHOT_FORMAT {
        return Err(OodbError::UnsupportedFormat {
            found: format,
            supported: SNAPSHOT_FORMAT,
        });
    }
    let page_size = r.take_u32()? as usize;
    let page_count = r.take_u32()? as usize;
    let body_len = r.take_u64()? as usize;
    let _checkpoint_lsn = r.take_u64()?;
    if page_size == 0 || page_size > (1 << 24) {
        return Err(OodbError::corrupt(format!(
            "snapshot header: implausible page size {page_size}"
        )));
    }
    let expected_pages = body_len.div_ceil(page_size);
    if page_count != expected_pages {
        return Err(OodbError::corrupt(format!(
            "snapshot header: {page_count} pages for {body_len} body bytes (expected {expected_pages})"
        )));
    }

    let mut body = Vec::with_capacity(body_len);
    let mut pos = HEADER_LEN + 4;
    for page_no in 0..page_count {
        let chunk_len = (body_len - body.len()).min(page_size);
        if raw.len() < pos + 4 + chunk_len {
            return Err(OodbError::corrupt(format!(
                "snapshot page {page_no}: truncated ({} of {} bytes present)",
                raw.len() - pos,
                4 + chunk_len
            )));
        }
        let page_crc = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes"));
        let chunk = &raw[pos + 4..pos + 4 + chunk_len];
        if crc32(chunk) != page_crc {
            return Err(OodbError::corrupt(format!(
                "snapshot page {page_no}: checksum mismatch"
            )));
        }
        body.extend_from_slice(chunk);
        pos += 4 + chunk_len;
    }
    if pos != raw.len() {
        return Err(OodbError::corrupt(format!(
            "snapshot: {} trailing bytes after last page",
            raw.len() - pos
        )));
    }
    Ok(Some(SnapshotImage::decode(&body)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;
    use crate::types::Type;
    use crate::value::Value;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ov-pager-test-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_image() -> SnapshotImage {
        let mut schema = Schema::new();
        let person = schema
            .add_class(
                sym("Person"),
                &[],
                vec![
                    AttrDef::stored(sym("Name"), Type::Str),
                    AttrDef::stored(sym("Age"), Type::Int),
                ],
            )
            .unwrap();
        schema
            .add_class(sym("Employee"), &[person], vec![])
            .unwrap();
        let mut img = SnapshotImage {
            name: sym("Staff"),
            store_version: 17,
            checkpoint_lsn: 42,
            next_imaginary: crate::ids::IMAGINARY_OID_BASE + 9,
            ..SnapshotImage::default()
        };
        img.capture_schema(&schema);
        img.objects = vec![StoredObject {
            oid: Oid(3),
            class: person,
            value: Tuple::from_fields([("Name", Value::str("Maggy")), ("Age", Value::Int(65))]),
        }];
        img.names = vec![(sym("maggy"), Oid(3))];
        img.index_defs = vec![(person, sym("Age"))];
        img.identity = vec![IdentityEntry {
            view: sym("V"),
            class: sym("Addr"),
            core: Tuple::from_fields([("City", Value::str("Paris"))]),
            oid: Oid(crate::ids::IMAGINARY_OID_BASE + 8),
        }];
        img
    }

    #[test]
    fn snapshot_roundtrips_through_disk() {
        let dir = tmpdir("roundtrip");
        let img = sample_image();
        write_snapshot(&dir, &img).unwrap();
        let back = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(back.name, img.name);
        assert_eq!(back.store_version, 17);
        assert_eq!(back.checkpoint_lsn, 42);
        assert_eq!(back.objects, img.objects);
        assert_eq!(back.names, img.names);
        assert_eq!(back.index_defs, img.index_defs);
        assert_eq!(back.identity, img.identity);
        assert_eq!(back.next_imaginary, img.next_imaginary);
        let schema = back.restore_schema().unwrap();
        assert_eq!(schema.len(), 2);
        use crate::types::ClassGraph;
        assert!(schema.is_subclass(
            schema.class_by_name(sym("Employee")).unwrap(),
            schema.class_by_name(sym("Person")).unwrap()
        ));
    }

    #[test]
    fn missing_snapshot_is_none_not_error() {
        let dir = tmpdir("missing");
        assert!(read_snapshot(&dir).unwrap().is_none());
    }

    #[test]
    fn foreign_file_rejected_with_typed_error() {
        let dir = tmpdir("foreign");
        std::fs::write(
            dir.join(SNAPSHOT_FILE),
            b"#!/bin/sh\n# definitely not a snapshot file, but long enough to parse\nexit 1\n",
        )
        .unwrap();
        match read_snapshot(&dir) {
            Err(OodbError::Corrupt { context }) => assert!(context.contains("magic")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn future_format_version_rejected() {
        let dir = tmpdir("future");
        write_snapshot(&dir, &sample_image()).unwrap();
        let mut raw = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        raw[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal the header CRC so only the version differs.
        let crc = crc32(&raw[..36]);
        raw[36..40].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(dir.join(SNAPSHOT_FILE), &raw).unwrap();
        match read_snapshot(&dir) {
            Err(OodbError::UnsupportedFormat {
                found: 99,
                supported,
            }) => {
                assert_eq!(supported, SNAPSHOT_FORMAT);
            }
            other => panic!("expected UnsupportedFormat, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_in_page_detected() {
        let dir = tmpdir("bitflip");
        write_snapshot(&dir, &sample_image()).unwrap();
        let mut raw = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0x01;
        std::fs::write(dir.join(SNAPSHOT_FILE), &raw).unwrap();
        match read_snapshot(&dir) {
            Err(OodbError::Corrupt { context }) => {
                assert!(context.contains("checksum"), "got: {context}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_snapshot_detected() {
        let dir = tmpdir("trunc");
        write_snapshot(&dir, &sample_image()).unwrap();
        let raw = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        std::fs::write(dir.join(SNAPSHOT_FILE), &raw[..raw.len() - 10]).unwrap();
        assert!(matches!(
            read_snapshot(&dir),
            Err(OodbError::Corrupt { .. })
        ));
    }

    #[test]
    fn multi_page_bodies_roundtrip() {
        let dir = tmpdir("large");
        let mut img = sample_image();
        // Blow past one page with many objects.
        for i in 0..2000u64 {
            img.objects.push(StoredObject {
                oid: Oid(100 + i),
                class: ClassId(0),
                value: Tuple::from_fields([("Name", Value::str(&format!("obj-{i}")))]),
            });
        }
        write_snapshot(&dir, &img).unwrap();
        assert!(std::fs::metadata(dir.join(SNAPSHOT_FILE)).unwrap().len() > PAGE_SIZE as u64);
        let back = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(back.objects.len(), img.objects.len());
        assert_eq!(back.objects, img.objects);
    }
}
