//! The expression AST.
//!
//! One expression language serves three roles in the paper:
//!
//! 1. bodies of computed attributes — `attribute Address in class Person has
//!    value [City: self.City, …]` (§2, Example 1);
//! 2. queries populating virtual classes — `class Adult includes (select P
//!    from Person where P.Age >= 21)` (§4.1);
//! 3. ad-hoc user queries against databases and views.
//!
//! The AST lives in `ov-oodb` (rather than `ov-query`) because class
//! definitions *contain* computed-attribute bodies; the parser, type
//! inference and evaluator live in `ov-query`.
//!
//! Expressions carry no source positions and are pretty-printable; the
//! printer output reparses to an equal AST (property-tested in `ov-query`).

use std::fmt;

use crate::symbol::Symbol;
use crate::value::Value;

/// A binary operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Addition (`+`), with int/float promotion.
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`); by zero is a runtime error, int/int truncates.
    Div,
    /// Remainder (`%`).
    Mod,
    /// String (or list) concatenation (`++`).
    Concat,
    /// Equality (`=`), with numeric coercion and `null = null`.
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Less-than (`<`).
    Lt,
    /// Less-or-equal (`<=`).
    Le,
    /// Greater-than (`>`).
    Gt,
    /// Greater-or-equal (`>=`).
    Ge,
    /// Short-circuit conjunction.
    And,
    /// Short-circuit disjunction.
    Or,
    /// Set/list membership: `x in S`.
    In,
    /// Set union.
    Union,
    /// Set intersection.
    Intersect,
    /// Set difference.
    Except,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "++",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::In => "in",
            BinOp::Union => "union",
            BinOp::Intersect => "intersect",
            BinOp::Except => "except",
        }
    }

    /// Binding strength; higher binds tighter. Mirrors the parser's
    /// precedence climbing table in `ov-query`.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::In => 3,
            BinOp::Union | BinOp::Except => 4,
            BinOp::Intersect => 5,
            BinOp::Add | BinOp::Sub | BinOp::Concat => 6,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 7,
        }
    }
}

/// A unary operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Boolean negation (of truthiness).
    Not,
    /// Numeric negation.
    Neg,
}

/// An aggregate function over a collection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// Number of elements.
    Count,
    /// Numeric sum (int unless any element is a float).
    Sum,
    /// Least element (nulls skipped).
    Min,
    /// Greatest element (nulls skipped).
    Max,
    /// Arithmetic mean as a float.
    Avg,
    /// Union of a set/list of sets (O₂'s `flatten`).
    Flatten,
}

impl AggFunc {
    /// Surface-syntax name of the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
            AggFunc::Flatten => "flatten",
        }
    }

    /// Parses an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            "flatten" => AggFunc::Flatten,
            _ => None?,
        })
    }
}

/// A `select … from … where …` query block.
#[derive(Clone, PartialEq, Debug)]
pub struct SelectExpr {
    /// `select distinct` — deduplicate the result (sets always deduplicate;
    /// this matters only for the list-producing form).
    pub distinct: bool,
    /// `select the` — the result must contain exactly one element, which is
    /// returned bare (paper's Example 5: "select the A in Address …").
    pub the: bool,
    /// The projected expression.
    pub proj: Box<Expr>,
    /// `from` bindings: `var in collection` pairs, evaluated left to right
    /// (later collections may refer to earlier variables).
    pub bindings: Vec<(Symbol, Expr)>,
    /// Optional `where` filter.
    pub filter: Option<Box<Expr>>,
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// The receiver of a computed attribute.
    SelfRef,
    /// A name: a query variable, or — if no variable is in scope — a class
    /// name denoting that class's (deep) extent, or a named object.
    Name(Symbol),
    /// Attribute access / method call: `recv.Attr` or `recv.Attr(args…)`.
    /// The dot "combines both dereferencing … and field selection" (§2):
    /// the receiver may be an oid (the attribute is resolved on its class)
    /// or a tuple (plain field selection).
    Attr {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Attribute (or tuple-field) name.
        name: Symbol,
        /// Call arguments, empty for plain attribute access.
        args: Vec<Expr>,
    },
    /// Tuple construction: `[Name: e1, …]`.
    TupleCons(Vec<(Symbol, Expr)>),
    /// Set construction: `{e1, …}`.
    SetCons(Vec<Expr>),
    /// List construction: `list(e1, …)`.
    ListCons(Vec<Expr>),
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `if c then a else b` (expression-level conditional).
    If {
        /// Condition (truthy test).
        cond: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value otherwise.
        els: Box<Expr>,
    },
    /// A nested query.
    Select(SelectExpr),
    /// `exists(select …)` — true iff the subquery is non-empty.
    Exists(SelectExpr),
    /// Aggregate over a collection-valued expression: `count(e)`, `sum(e)`…
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// The collection-valued argument.
        arg: Box<Expr>,
    },
    /// Runtime class-membership test: `e isa ClassName`. Used internally by
    /// the view layer and available in the surface syntax.
    IsA {
        /// The object-valued expression to test.
        expr: Box<Expr>,
        /// The class name to test membership in.
        class: Symbol,
    },
    /// Application of a named, parameterized collection: `Resident(X)`
    /// denotes an instance of the parameterized virtual class `Resident`
    /// (§4.1). Only views give this meaning; in a base database it is an
    /// error.
    Apply {
        /// The parameterized class's name.
        name: Symbol,
        /// Argument values.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Literal helper.
    pub fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }

    /// `name` helper.
    pub fn name(n: &str) -> Expr {
        Expr::Name(Symbol::new(n))
    }

    /// `recv.name` helper (no arguments).
    pub fn attr(recv: Expr, name: &str) -> Expr {
        Expr::Attr {
            recv: Box::new(recv),
            name: Symbol::new(name),
            args: Vec::new(),
        }
    }

    /// `self.name` helper.
    pub fn self_attr(name: &str) -> Expr {
        Expr::attr(Expr::SelfRef, name)
    }

    /// Binary-operation helper.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Walks the expression tree, calling `f` on every node (pre-order).
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::SelfRef | Expr::Name(_) => {}
            Expr::Attr { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::TupleCons(fields) => {
                for (_, e) in fields {
                    e.walk(f);
                }
            }
            Expr::SetCons(es) | Expr::ListCons(es) => {
                for e in es {
                    e.walk(f);
                }
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::If { cond, then, els } => {
                cond.walk(f);
                then.walk(f);
                els.walk(f);
            }
            Expr::Select(s) | Expr::Exists(s) => s.walk(f),
            Expr::Aggregate { arg, .. } => arg.walk(f),
            Expr::IsA { expr, .. } => expr.walk(f),
            Expr::Apply { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// The free names referenced by this expression (query variables and/or
    /// class names — resolution is contextual). Bound select variables are
    /// excluded. Used by the view layer to find class dependencies.
    pub fn free_names(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.free_names_into(&mut Vec::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn free_names_into(&self, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
        match self {
            Expr::Name(n) => {
                if !bound.contains(n) {
                    out.push(*n);
                }
            }
            Expr::Lit(_) | Expr::SelfRef => {}
            Expr::Attr { recv, args, .. } => {
                recv.free_names_into(bound, out);
                for a in args {
                    a.free_names_into(bound, out);
                }
            }
            Expr::TupleCons(fields) => {
                for (_, e) in fields {
                    e.free_names_into(bound, out);
                }
            }
            Expr::SetCons(es) | Expr::ListCons(es) => {
                for e in es {
                    e.free_names_into(bound, out);
                }
            }
            Expr::Unary { expr, .. } => expr.free_names_into(bound, out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.free_names_into(bound, out);
                rhs.free_names_into(bound, out);
            }
            Expr::If { cond, then, els } => {
                cond.free_names_into(bound, out);
                then.free_names_into(bound, out);
                els.free_names_into(bound, out);
            }
            Expr::Select(s) | Expr::Exists(s) => s.free_names_into(bound, out),
            Expr::Aggregate { arg, .. } => arg.free_names_into(bound, out),
            Expr::IsA { expr, class } => {
                expr.free_names_into(bound, out);
                out.push(*class);
            }
            Expr::Apply { name, args } => {
                out.push(*name);
                for a in args {
                    a.free_names_into(bound, out);
                }
            }
        }
    }
}

impl SelectExpr {
    /// Walks all sub-expressions.
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        self.proj.walk(f);
        for (_, c) in &self.bindings {
            c.walk(f);
        }
        if let Some(w) = &self.filter {
            w.walk(f);
        }
    }

    fn free_names_into(&self, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
        let depth = bound.len();
        for (var, coll) in &self.bindings {
            coll.free_names_into(bound, out);
            bound.push(*var);
        }
        self.proj.free_names_into(bound, out);
        if let Some(w) = &self.filter {
            w.free_names_into(bound, out);
        }
        bound.truncate(depth);
    }
}

// ---------------------------------------------------------------------------
// Pretty printing. The output is valid surface syntax for the `ov-query`
// parser.
// ---------------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Expr {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Lit(v) => {
                // A negative numeric literal prints with a leading minus; in
                // tight positions (`-1.A`) that would reparse as unary
                // negation of a path, so parenthesize it.
                let negative = matches!(v, Value::Int(i) if *i < 0)
                    || matches!(v, Value::Float(x) if *x < 0.0 || x.is_sign_negative());
                if negative && parent_prec > 8 {
                    write!(f, "({v})")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::SelfRef => write!(f, "self"),
            Expr::Name(n) => write!(f, "{n}"),
            Expr::Attr { recv, name, args } => {
                recv.fmt_prec(f, 10)?;
                write!(f, ".{name}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        a.fmt_prec(f, 0)?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::TupleCons(fields) => {
                write!(f, "[")?;
                for (i, (n, e)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: ")?;
                    e.fmt_prec(f, 0)?;
                }
                write!(f, "]")
            }
            Expr::SetCons(es) => {
                write!(f, "{{")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    e.fmt_prec(f, 0)?;
                }
                write!(f, "}}")
            }
            Expr::ListCons(es) => {
                write!(f, "list(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    e.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::Unary { op, expr } => {
                // Unary binds between the multiplicative level (7) and
                // postfix attribute access (10).
                let parens = parent_prec > 8;
                if parens {
                    write!(f, "(")?;
                }
                let tok = match op {
                    UnOp::Not => "not ",
                    UnOp::Neg => "-",
                };
                write!(f, "{tok}")?;
                expr.fmt_prec(f, 9)?;
                if parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Binary { op, lhs, rhs } => {
                let p = op.precedence();
                let parens = p < parent_prec;
                if parens {
                    write!(f, "(")?;
                }
                lhs.fmt_prec(f, p)?;
                write!(f, " {} ", op.token())?;
                // Left associative: the rhs needs strictly higher precedence.
                rhs.fmt_prec(f, p + 1)?;
                if parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::If { cond, then, els } => {
                let parens = parent_prec > 0;
                if parens {
                    write!(f, "(")?;
                }
                write!(f, "if ")?;
                cond.fmt_prec(f, 0)?;
                write!(f, " then ")?;
                then.fmt_prec(f, 0)?;
                write!(f, " else ")?;
                els.fmt_prec(f, 0)?;
                if parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Select(s) => {
                write!(f, "({s})")
            }
            Expr::Exists(s) => {
                write!(f, "exists({s})")
            }
            Expr::Aggregate { func, arg } => {
                write!(f, "{}(", func.name())?;
                arg.fmt_prec(f, 0)?;
                write!(f, ")")
            }
            Expr::Apply { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::IsA { expr, class } => {
                let parens = parent_prec > 3;
                if parens {
                    write!(f, "(")?;
                }
                expr.fmt_prec(f, 4)?;
                write!(f, " isa {class}")?;
                if parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for SelectExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        if self.the {
            write!(f, "the ")?;
        }
        if self.distinct {
            write!(f, "distinct ")?;
        }
        // The projection position parses at the precedence just above `in`
        // (so the binding keyword is unambiguous); print accordingly.
        self.proj.fmt_prec(f, 4)?;
        write!(f, " from ")?;
        for (i, (var, coll)) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var} in ")?;
            coll.fmt_prec(f, 4)?;
        }
        if let Some(w) = &self.filter {
            write!(f, " where ")?;
            w.fmt_prec(f, 0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::sym;

    fn adult_query() -> SelectExpr {
        SelectExpr {
            distinct: false,
            the: false,
            proj: Box::new(Expr::name("P")),
            bindings: vec![(sym("P"), Expr::name("Person"))],
            filter: Some(Box::new(Expr::bin(
                BinOp::Ge,
                Expr::attr(Expr::name("P"), "Age"),
                Expr::lit(Value::Int(21)),
            ))),
        }
    }

    #[test]
    fn displays_paper_example_query() {
        assert_eq!(
            adult_query().to_string(),
            "select P from P in Person where P.Age >= 21"
        );
    }

    #[test]
    fn displays_tuple_construction() {
        // Paper Example 1: merging City/Street/Zip_Code into Address.
        let e = Expr::TupleCons(vec![
            (sym("City"), Expr::self_attr("City")),
            (sym("Street"), Expr::self_attr("Street")),
        ]);
        assert_eq!(e.to_string(), "[City: self.City, Street: self.Street]");
    }

    #[test]
    fn precedence_parenthesizes_only_when_needed() {
        // (a + b) * c needs parens; a + b * c does not.
        let a = || Expr::name("a");
        let b = || Expr::name("b");
        let c = || Expr::name("c");
        let sum_first = Expr::bin(BinOp::Mul, Expr::bin(BinOp::Add, a(), b()), c());
        assert_eq!(sum_first.to_string(), "(a + b) * c");
        let mul_first = Expr::bin(BinOp::Add, a(), Expr::bin(BinOp::Mul, b(), c()));
        assert_eq!(mul_first.to_string(), "a + b * c");
    }

    #[test]
    fn left_associativity_prints_minimally() {
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bin(BinOp::Sub, Expr::name("a"), Expr::name("b")),
            Expr::name("c"),
        );
        assert_eq!(e.to_string(), "a - b - c");
        let e2 = Expr::bin(
            BinOp::Sub,
            Expr::name("a"),
            Expr::bin(BinOp::Sub, Expr::name("b"), Expr::name("c")),
        );
        assert_eq!(e2.to_string(), "a - (b - c)");
    }

    #[test]
    fn free_names_excludes_bound_variables() {
        let q = Expr::Select(adult_query());
        let names: Vec<&str> = q.free_names().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["Person"]);
    }

    #[test]
    fn free_names_sees_nested_collections() {
        // select X from X in (select Y from Y in Rich where Y in Beautiful)
        let inner = SelectExpr {
            distinct: false,
            the: false,
            proj: Box::new(Expr::name("Y")),
            bindings: vec![(sym("Y"), Expr::name("Rich"))],
            filter: Some(Box::new(Expr::bin(
                BinOp::In,
                Expr::name("Y"),
                Expr::name("Beautiful"),
            ))),
        };
        let outer = Expr::Select(SelectExpr {
            distinct: false,
            the: false,
            proj: Box::new(Expr::name("X")),
            bindings: vec![(sym("X"), Expr::Select(inner))],
            filter: None,
        });
        let names: Vec<&str> = outer.free_names().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["Beautiful", "Rich"]);
    }

    #[test]
    fn select_the_displays() {
        let q = SelectExpr {
            distinct: false,
            the: true,
            proj: Box::new(Expr::name("A")),
            bindings: vec![(sym("A"), Expr::name("Address"))],
            filter: None,
        };
        assert_eq!(q.to_string(), "select the A from A in Address");
    }

    #[test]
    fn walk_visits_every_node() {
        let q = Expr::Select(adult_query());
        let mut count = 0;
        q.walk(&mut |_| count += 1);
        // Select, proj Name, binding Name, filter Binary, Attr, Name(P), Lit.
        assert_eq!(count, 7);
    }
}
