//! The flight recorder: always-on span tracing with bounded per-thread
//! ring buffers and Chrome-trace / JSON-lines exporters.
//!
//! The paper's view mechanism makes cost *invisible by design*: a caller
//! cannot tell a stored attribute from a computed one (§2), or a cache hit
//! from a full virtual-class recompute. [`crate::metrics`] aggregates those
//! events into counters; this module keeps the **time dimension** — what
//! every thread was doing, span by span, in the moments before a latency
//! spike. All three crates emit here: store mutations, journal delta
//! serving and index lookups (`ov-oodb`), query stages and parallel scan
//! chunks (`ov-query`), and view binding / population / hide processing
//! (`ov-views`).
//!
//! ## Design
//!
//! * **Disabled path is one relaxed atomic load.** [`span!`](crate::span) checks
//!   [`enabled`] first and returns an inert guard without touching
//!   thread-local state — proved by `disabled_path_touches_nothing` below.
//! * **Bounded.** Each thread owns a ring of the last
//!   [`DEFAULT_THREAD_CAPACITY`] (~64K) completed spans; the oldest are
//!   overwritten, never reallocated past the cap, so the recorder can stay
//!   on in production indefinitely.
//! * **Writers never block.** Every ring has exactly one writer (its owning
//!   thread), so writers never contend with each other. The only reader is
//!   a dump, which briefly holds the ring's lock; an emitting thread that
//!   loses that race `try_lock`s a side buffer instead, and in the
//!   (doubly-rare) worst case drops the span and counts it in
//!   [`TraceRecorder::dropped`]. No emit path ever parks a thread.
//! * **Exporters.** [`TraceRecorder::dump_chrome_trace`] writes the Chrome
//!   trace-event format (loadable in `chrome://tracing` and
//!   [Perfetto](https://ui.perfetto.dev)); [`TraceRecorder::dump_jsonl`]
//!   writes one JSON object per span. Both emit spans and argument keys in
//!   sorted order so dumps diff cleanly across runs.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::symbol::Symbol;

/// Default per-thread ring capacity, in spans (~64K).
pub const DEFAULT_THREAD_CAPACITY: usize = 64 * 1024;

/// Maximum key/value fields a span can carry.
pub const MAX_FIELDS: usize = 4;

/// Master switch. Reading it is the *entire* cost of the disabled path.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Span id allocator (0 is reserved for "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Is tracing enabled? One relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on or off. Spans already recorded are kept.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One value of a span field. Deliberately `Copy`: ring slots are
/// overwritten in place and must not drag heap allocations around.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned quantity (counts, sizes, versions).
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A static label (path names, outcomes).
    Str(&'static str),
    /// An interned identifier (class and attribute names).
    Sym(Symbol),
}

impl FieldValue {
    /// Renders the value as it should appear in JSON (numbers bare,
    /// strings quoted).
    fn to_json(self) -> String {
        match self {
            FieldValue::U64(n) => n.to_string(),
            FieldValue::I64(n) => n.to_string(),
            FieldValue::Str(s) => json_str(s),
            FieldValue::Sym(s) => json_str(s.as_str()),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(n: u64) -> FieldValue {
        FieldValue::U64(n)
    }
}
impl From<usize> for FieldValue {
    fn from(n: usize) -> FieldValue {
        FieldValue::U64(n as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(n: i64) -> FieldValue {
        FieldValue::I64(n)
    }
}
impl From<bool> for FieldValue {
    fn from(b: bool) -> FieldValue {
        FieldValue::Str(if b { "true" } else { "false" })
    }
}
impl From<&'static str> for FieldValue {
    fn from(s: &'static str) -> FieldValue {
        FieldValue::Str(s)
    }
}
impl From<Symbol> for FieldValue {
    fn from(s: Symbol) -> FieldValue {
        FieldValue::Sym(s)
    }
}

/// One span key/value pair.
pub type Field = (&'static str, FieldValue);

/// One completed span, as stored in a ring slot.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Unique span id (process-wide, monotonically increasing).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root span.
    pub parent: u64,
    /// Static span name (`"view.population"`, `"store.insert"`, …).
    pub name: &'static str,
    /// Recorder-assigned thread ordinal (1, 2, …) — stable per thread.
    pub thread: u64,
    /// Start time, in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
    /// Up to [`MAX_FIELDS`] key/value fields, in insertion order.
    pub fields: [Option<Field>; MAX_FIELDS],
}

impl SpanRecord {
    /// The fields actually set, sorted by key (stable JSON output).
    fn sorted_fields(&self) -> Vec<Field> {
        let mut v: Vec<Field> = self.fields.iter().flatten().copied().collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }
}

/// The bounded span storage of one thread: a ring of the last `capacity`
/// completed spans, oldest overwritten first.
#[derive(Debug)]
struct RingBuf {
    slots: Vec<SpanRecord>,
    /// Next slot to (over)write.
    next: usize,
    /// Has the ring wrapped at least once?
    wrapped: bool,
    capacity: usize,
}

impl RingBuf {
    fn new(capacity: usize) -> RingBuf {
        RingBuf {
            // Grow lazily: a short-lived worker thread that emits a handful
            // of spans must not pay for 64K slots up front.
            slots: Vec::new(),
            next: 0,
            wrapped: false,
            capacity: capacity.max(1),
        }
    }

    fn push(&mut self, rec: SpanRecord) {
        if self.slots.len() < self.capacity {
            self.slots.push(rec);
            self.next = self.slots.len() % self.capacity;
            if self.next == 0 && self.slots.len() == self.capacity {
                self.wrapped = true;
            }
        } else {
            self.slots[self.next] = rec;
            self.next = (self.next + 1) % self.capacity;
            self.wrapped = true;
        }
    }

    /// The retained spans, oldest first.
    fn in_order(&self) -> Vec<SpanRecord> {
        if !self.wrapped || self.slots.len() < self.capacity {
            return self.slots.clone();
        }
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
        out
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.next = 0;
        self.wrapped = false;
    }
}

/// One registered thread's recorder state. Exactly one writer (the owning
/// thread); a dump is the only other reader, so the `try_lock` on `buf`
/// fails for a writer only while a dump is copying this very ring.
#[derive(Debug)]
struct ThreadRing {
    /// Recorder-assigned ordinal, starting at 1.
    ordinal: u64,
    /// The thread's name at registration (for Chrome metadata events).
    name: String,
    buf: Mutex<RingBuf>,
    /// Overflow for spans emitted while a dump holds `buf`; drained into
    /// the ring on the next uncontended emit or dump.
    pending: Mutex<VecDeque<SpanRecord>>,
    /// Spans dropped because both locks were held (a dump raced two deep).
    dropped: AtomicU64,
}

impl ThreadRing {
    /// Non-blocking emit: ring first, side buffer second, drop-and-count
    /// last. Never parks the calling thread.
    fn emit(&self, rec: SpanRecord) {
        if let Some(mut buf) = self.buf.try_lock() {
            if let Some(mut pending) = self.pending.try_lock() {
                for r in pending.drain(..) {
                    buf.push(r);
                }
            }
            buf.push(rec);
        } else if let Some(mut pending) = self.pending.try_lock() {
            pending.push_back(rec);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The retained spans, oldest first (dump path; may block briefly).
    fn snapshot(&self) -> Vec<SpanRecord> {
        let mut buf = self.buf.lock();
        let mut pending = self.pending.lock();
        for r in pending.drain(..) {
            buf.push(r);
        }
        buf.in_order()
    }
}

/// The process-wide flight recorder: the registry of per-thread rings and
/// the exporters. Obtain it with [`recorder`].
#[derive(Debug)]
pub struct TraceRecorder {
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    epoch: Instant,
    thread_capacity: AtomicUsize,
}

/// The process-wide recorder.
pub fn recorder() -> &'static TraceRecorder {
    static GLOBAL: OnceLock<TraceRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| TraceRecorder {
        rings: Mutex::new(Vec::new()),
        epoch: Instant::now(),
        thread_capacity: AtomicUsize::new(DEFAULT_THREAD_CAPACITY),
    })
}

impl TraceRecorder {
    /// Nanoseconds since the recorder epoch (all span timestamps share it).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Sets the per-thread ring capacity for threads registered *after*
    /// this call (existing rings keep theirs). Mainly for tests.
    pub fn set_thread_capacity(&self, capacity: usize) {
        self.thread_capacity
            .store(capacity.max(1), Ordering::Relaxed);
    }

    /// Number of threads that have ever registered a ring.
    pub fn thread_count(&self) -> usize {
        self.rings.lock().len()
    }

    /// Total spans dropped across all threads (emit raced a dump twice).
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Empties every ring (rings stay registered; ids keep increasing).
    pub fn clear(&self) {
        for ring in self.rings.lock().iter() {
            ring.buf.lock().clear();
            ring.pending.lock().clear();
        }
    }

    fn register_thread(&self) -> Arc<ThreadRing> {
        let mut rings = self.rings.lock();
        let ordinal = rings.len() as u64 + 1;
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{ordinal}"), str::to_owned);
        let ring = Arc::new(ThreadRing {
            ordinal,
            name,
            buf: Mutex::new(RingBuf::new(self.thread_capacity.load(Ordering::Relaxed))),
            pending: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        });
        rings.push(ring.clone());
        ring
    }

    /// Every retained span across all threads, sorted by
    /// `(thread, start_ns, id)` — a deterministic order for exporters and
    /// tests.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let rings: Vec<Arc<ThreadRing>> = self.rings.lock().clone();
        let mut out: Vec<SpanRecord> = rings.iter().flat_map(|r| r.snapshot()).collect();
        out.sort_by_key(|s| (s.thread, s.start_ns, s.id));
        out
    }

    /// Serializes the retained spans in the Chrome trace-event format —
    /// load the result in `chrome://tracing` or
    /// [Perfetto](https://ui.perfetto.dev). Complete (`"ph":"X"`) events
    /// with microsecond timestamps; span fields appear under `args`, keys
    /// sorted.
    pub fn dump_chrome_trace(&self) -> String {
        let spans = self.snapshot();
        let threads: Vec<(u64, String)> = self
            .rings
            .lock()
            .iter()
            .map(|r| (r.ordinal, r.name.clone()))
            .collect();
        let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
        let mut first = true;
        for (tid, name) in &threads {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": {}}}}}",
                json_str(name)
            );
        }
        for s in &spans {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": {}, \
                 \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{",
                s.thread,
                json_str(s.name),
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
            );
            // The span's own id/parent ride along in `args`; merge them
            // with the user fields so the whole object stays key-sorted.
            let mut args: Vec<(&str, String)> = s
                .sorted_fields()
                .into_iter()
                .map(|(k, v)| (k, v.to_json()))
                .collect();
            args.push(("id", s.id.to_string()));
            args.push(("parent", s.parent.to_string()));
            args.sort_by_key(|&(k, _)| k);
            for (i, (k, v)) in args.into_iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{}: {v}", json_str(k));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Serializes the retained spans as JSON lines: one object per span,
    /// keys in sorted order, spans in `(thread, start_ns, id)` order.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            let _ = write!(out, "{{\"dur_ns\": {}, \"fields\": {{", s.dur_ns);
            for (i, (k, v)) in s.sorted_fields().into_iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{}: {}", json_str(k), v.to_json());
            }
            let _ = writeln!(
                out,
                "}}, \"id\": {}, \"name\": {}, \"parent\": {}, \"thread\": {}, \"ts_ns\": {}}}",
                s.id,
                json_str(s.name),
                s.parent,
                s.thread,
                s.start_ns,
            );
        }
        out
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// Quotes and escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-thread recorder state: this thread's ring plus the stack of open
/// span ids (for parent links). Touched only on the *enabled* path.
struct ThreadState {
    ring: Arc<ThreadRing>,
    open: Vec<u64>,
}

thread_local! {
    static THREAD_STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's state, registering the thread on first use.
fn with_state<R>(f: impl FnOnce(&mut ThreadState) -> R) -> R {
    THREAD_STATE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let state = slot.get_or_insert_with(|| ThreadState {
            ring: recorder().register_thread(),
            open: Vec::new(),
        });
        f(state)
    })
}

/// An in-flight span. Created by [`span!`](crate::span) (or [`SpanGuard::begin`]); the
/// span is completed and recorded when the guard drops. When tracing is
/// disabled the guard is inert: no id, no thread-local access, no record.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard(Option<OpenSpan>);

struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    fields: [Option<Field>; MAX_FIELDS],
    nfields: usize,
}

impl SpanGuard {
    /// Opens a span named `name`. The disabled path is one relaxed atomic
    /// load and a `None`.
    #[inline]
    pub fn begin(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard(None);
        }
        SpanGuard::begin_enabled(name)
    }

    /// The enabled slow path, out of line so the disabled branch stays
    /// small at every call site.
    #[cold]
    fn begin_enabled(name: &'static str) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let start_ns = recorder().now_ns();
        let parent = with_state(|s| {
            let parent = s.open.last().copied().unwrap_or(0);
            s.open.push(id);
            parent
        });
        SpanGuard(Some(OpenSpan {
            id,
            parent,
            name,
            start: Instant::now(),
            start_ns,
            fields: [None; MAX_FIELDS],
            nfields: 0,
        }))
    }

    /// Attaches a key/value field (up to [`MAX_FIELDS`]; extras are
    /// silently ignored). No-op on an inert guard.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(open) = &mut self.0 {
            if open.nfields < MAX_FIELDS {
                open.fields[open.nfields] = Some((key, value.into()));
                open.nfields += 1;
            }
        }
    }

    /// Is this guard actually recording? (False when tracing was disabled
    /// at creation.)
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// This span's id, or 0 when inert.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |o| o.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.0.take() else { return };
        let dur_ns = open.start.elapsed().as_nanos() as u64;
        with_state(|s| {
            // Pop this span (and anything leaked above it, defensively).
            while let Some(top) = s.open.pop() {
                if top == open.id {
                    break;
                }
            }
            s.ring.emit(SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.name,
                thread: s.ring.ordinal,
                start_ns: open.start_ns,
                dur_ns,
                fields: open.fields,
            });
        });
    }
}

/// Records an already-measured span (used to bridge externally timed
/// events — e.g. the query layer's population traces — into the
/// recorder). The parent is the innermost span currently open on this
/// thread. No-op when tracing is disabled.
pub fn emit_complete(name: &'static str, start_ns: u64, dur_ns: u64, fields: &[Field]) {
    if !enabled() {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let mut arr: [Option<Field>; MAX_FIELDS] = [None; MAX_FIELDS];
    for (slot, f) in arr.iter_mut().zip(fields.iter()) {
        *slot = Some(*f);
    }
    with_state(|s| {
        let parent = s.open.last().copied().unwrap_or(0);
        s.ring.emit(SpanRecord {
            id,
            parent,
            name,
            thread: s.ring.ordinal,
            start_ns,
            dur_ns,
            fields: arr,
        });
    });
}

/// Opens a [`SpanGuard`] over the rest of the enclosing scope:
///
/// ```
/// use ov_oodb::span;
/// # fn scan() {}
/// let mut s = span!("store.insert", class = 3u64);
/// scan();
/// s.field("rows", 41u64);
/// // recorded when `s` drops
/// ```
///
/// When tracing is disabled the entire expansion is one relaxed atomic
/// load and an inert guard — fields are not evaluated eagerly into the
/// recorder (their expressions still evaluate; keep them cheap).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::SpanGuard::begin($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut __span = $crate::trace::SpanGuard::begin($name);
        if __span.is_recording() {
            $(__span.field(stringify!($key), $value);)+
        }
        __span
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Tracing state is process-global; tests that toggle it serialize
    /// here so they cannot observe each other's spans.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Spans emitted on this thread since `f` started.
    fn spans_of(f: impl FnOnce()) -> Vec<SpanRecord> {
        let before = NEXT_SPAN_ID.load(Ordering::Relaxed);
        f();
        recorder()
            .snapshot()
            .into_iter()
            .filter(|s| s.id >= before)
            .collect()
    }

    #[test]
    fn spans_nest_and_carry_fields() {
        let _guard = test_lock();
        set_enabled(true);
        let spans = spans_of(|| {
            let mut outer = span!("test.outer", n = 3u64);
            {
                let _inner = span!("test.inner", label = "x", flag = true);
            }
            outer.field("late", 9u64);
        });
        set_enabled(false);
        let outer = spans.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(
            outer.sorted_fields(),
            vec![("late", FieldValue::U64(9)), ("n", FieldValue::U64(3))]
        );
        assert_eq!(
            inner.sorted_fields(),
            vec![
                ("flag", FieldValue::Str("true")),
                ("label", FieldValue::Str("x"))
            ]
        );
        // Inner completed first but started after.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.id > outer.id);
    }

    #[test]
    fn disabled_path_touches_nothing() {
        let _guard = test_lock();
        set_enabled(false);
        // A *fresh* thread emitting with tracing disabled must not even
        // register a ring: the only work the disabled path is allowed to
        // do is the relaxed load in `enabled()`.
        let before = recorder().thread_count();
        std::thread::spawn(|| {
            for _ in 0..1_000 {
                let g = span!("test.disabled", n = 1u64);
                assert!(!g.is_recording());
                assert_eq!(g.id(), 0);
            }
            emit_complete("test.disabled_complete", 0, 1, &[]);
        })
        .join()
        .unwrap();
        assert_eq!(
            recorder().thread_count(),
            before,
            "disabled emit registered a thread ring"
        );
        // And it must be cheap: 1M disabled spans in well under a second
        // (the real cost is ~1-2ns each; the bound is deliberately slack
        // for CI machines).
        let t0 = Instant::now();
        for _ in 0..1_000_000 {
            let _g = span!("test.disabled_hot");
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(500),
            "disabled span path too slow: {:?} for 1M spans",
            t0.elapsed()
        );
    }

    #[test]
    fn ring_wraps_keeping_newest_and_consistent_parents() {
        let _guard = test_lock();
        set_enabled(true);
        recorder().set_thread_capacity(8);
        let spans = std::thread::spawn(|| {
            let before = NEXT_SPAN_ID.load(Ordering::Relaxed);
            // 20 parent/child pairs = 40 spans through a ring of 8.
            for i in 0..20u64 {
                let _p = span!("test.wrap_parent", i = i);
                let _c = span!("test.wrap_child", i = i);
            }
            recorder()
                .snapshot()
                .into_iter()
                .filter(|s| s.id >= before && s.name.starts_with("test.wrap"))
                .collect::<Vec<_>>()
        })
        .join()
        .unwrap();
        set_enabled(false);
        recorder().set_thread_capacity(DEFAULT_THREAD_CAPACITY);
        assert_eq!(spans.len(), 8, "ring must retain exactly its capacity");
        // The survivors are the newest 8, in chronological order.
        let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "snapshot must be oldest-first");
        // Children completed before their parents here (guards drop in
        // reverse order), so each surviving child's parent id must be the
        // id of the matching surviving parent span when present.
        for child in spans.iter().filter(|s| s.name == "test.wrap_child") {
            assert_ne!(child.parent, 0);
            if let Some(parent) = spans.iter().find(|s| s.id == child.parent) {
                assert_eq!(parent.name, "test.wrap_parent");
                assert_eq!(parent.sorted_fields(), child.sorted_fields());
            }
        }
    }

    #[test]
    fn concurrent_emit_under_dumps() {
        let _guard = test_lock();
        set_enabled(true);
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 500;
        let before = NEXT_SPAN_ID.load(Ordering::Relaxed);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..THREADS)
                .map(|t| {
                    scope.spawn(move || {
                        for i in 0..PER_THREAD {
                            let _s = span!("test.concurrent", t = t, i = i);
                        }
                    })
                })
                .collect();
            // Dump concurrently the whole time the workers run: exercises
            // the try_lock emit fallback.
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = recorder().dump_chrome_trace();
                }
            });
            for w in workers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        set_enabled(false);
        let mine: Vec<SpanRecord> = recorder()
            .snapshot()
            .into_iter()
            .filter(|s| s.id >= before && s.name == "test.concurrent")
            .collect();
        let emitted = THREADS as u64 * PER_THREAD;
        let landed = mine.len() as u64 + recorder().dropped();
        assert!(
            landed >= emitted,
            "spans lost without being counted: landed+dropped={landed} < emitted={emitted}"
        );
        // Per-thread ordering survives concurrency.
        for t in 0..THREADS as u64 {
            let ids: Vec<u64> = mine
                .iter()
                .filter(|s| s.sorted_fields().contains(&("t", FieldValue::U64(t))))
                .map(|s| s.id)
                .collect();
            let mut sorted = ids.clone();
            sorted.sort();
            assert_eq!(ids, sorted);
        }
    }

    #[test]
    fn chrome_trace_and_jsonl_are_well_formed_and_sorted() {
        let _guard = test_lock();
        set_enabled(true);
        {
            let _a = span!("test.dump_b", z = 1u64, a = 2u64);
        }
        {
            let _b = span!("test.dump_a");
        }
        set_enabled(false);
        let chrome = recorder().dump_chrome_trace();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\": \"X\""));
        assert!(chrome.contains("\"test.dump_b\""));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
        assert_eq!(chrome.matches('[').count(), chrome.matches(']').count());
        // Args keys sorted: "a" before "z".
        let line = chrome.lines().find(|l| l.contains("test.dump_b")).unwrap();
        assert!(line.find("\"a\":").unwrap() < line.find("\"z\":").unwrap());
        let jsonl = recorder().dump_jsonl();
        let line = jsonl.lines().find(|l| l.contains("test.dump_b")).unwrap();
        assert!(line.starts_with("{\"dur_ns\""));
        assert!(line.find("\"a\":").unwrap() < line.find("\"z\":").unwrap());
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn emit_complete_uses_open_parent() {
        let _guard = test_lock();
        set_enabled(true);
        let spans = spans_of(|| {
            let outer = span!("test.bridge_outer");
            emit_complete(
                "test.bridge",
                recorder().now_ns(),
                1_234,
                &[("rows", FieldValue::U64(7))],
            );
            drop(outer);
        });
        set_enabled(false);
        let outer = spans
            .iter()
            .find(|s| s.name == "test.bridge_outer")
            .unwrap();
        let bridged = spans.iter().find(|s| s.name == "test.bridge").unwrap();
        assert_eq!(bridged.parent, outer.id);
        assert_eq!(bridged.dur_ns, 1_234);
        assert_eq!(bridged.sorted_fields(), vec![("rows", FieldValue::U64(7))]);
    }
}
