//! Property tests: total order and hash coherence of `Value`, tuple
//! semantics. These invariants underpin the imaginary-object identity
//! tables (tuples as map keys, §5.1 of the paper).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use ov_oodb::{Oid, Tuple, Value};
use proptest::prelude::*;

/// A generator for arbitrary (bounded-depth) values.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN payloads are ordered by total_cmp but we
        // keep printable values for debugging ease.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| Value::str(&s)),
        (0u64..1000).prop_map(|n| Value::Oid(Oid(n))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::list),
            prop::collection::vec(("[A-Z][a-z]{0,6}", inner), 0..4).prop_map(|fields| {
                Value::Tuple(Tuple::from_fields(
                    fields
                        .into_iter()
                        .map(|(n, v)| (ov_oodb::sym(n.as_str()), v)),
                ))
            }),
        ]
    })
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    /// Antisymmetry: cmp(a,b) is the reverse of cmp(b,a).
    #[test]
    fn ordering_is_antisymmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
    }

    /// Transitivity over sorted triples.
    #[test]
    fn ordering_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    /// Reflexivity / Eq-consistency.
    #[test]
    fn equality_is_reflexive(a in arb_value()) {
        prop_assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
        prop_assert_eq!(&a, &a.clone());
    }

    /// Hash agrees with Eq (clone hashes identically; used for tuple→oid
    /// identity tables).
    #[test]
    fn hash_consistent_with_eq(a in arb_value()) {
        let b = a.clone();
        prop_assert_eq!(hash_of(&a), hash_of(&b));
    }

    /// Sets deduplicate by the same equality used everywhere else.
    #[test]
    fn set_insertion_is_idempotent(a in arb_value()) {
        let s = Value::set([a.clone(), a.clone()]);
        prop_assert_eq!(s.as_set().unwrap().len(), 1);
    }

    /// Tuple field order never matters.
    #[test]
    fn tuple_equality_ignores_insertion_order(
        fields in prop::collection::btree_map("[A-Z][a-z]{0,6}", any::<i64>(), 0..6)
    ) {
        let fields: Vec<_> = fields.into_iter().collect();
        let fwd = Tuple::from_fields(
            fields.iter().map(|(n, v)| (ov_oodb::sym(n.as_str()), Value::Int(*v))),
        );
        let rev = Tuple::from_fields(
            fields.iter().rev().map(|(n, v)| (ov_oodb::sym(n.as_str()), Value::Int(*v))),
        );
        prop_assert_eq!(fwd, rev);
    }

    /// Projection is contained in the original and keeps values intact.
    #[test]
    fn projection_is_a_sub_tuple(
        fields in prop::collection::vec(("[A-Z][a-z]{0,4}", any::<i64>()), 0..6),
        keep in prop::collection::vec("[A-Z][a-z]{0,4}", 0..4),
    ) {
        let t = Tuple::from_fields(
            fields.iter().map(|(n, v)| (ov_oodb::sym(n.as_str()), Value::Int(*v))),
        );
        let p = t.project(keep.iter().map(|k| ov_oodb::sym(k.as_str())));
        for (name, v) in p.iter() {
            prop_assert_eq!(t.get(name), Some(v));
        }
        prop_assert!(p.len() <= t.len());
    }

    /// collect_oids finds exactly the oids that Display renders.
    #[test]
    fn collect_oids_matches_display(v in arb_value()) {
        let mut oids = Vec::new();
        v.collect_oids(&mut oids);
        let shown = v.to_string();
        for oid in &oids {
            prop_assert!(shown.contains(&oid.to_string()));
        }
    }
}
