//! Property test for crash recovery: a random mutation sequence against a
//! durable database, a crash at a *random byte offset* of the WAL (the
//! file is truncated mid-frame, as a power cut would), then recovery. The
//! recovered database must equal the reference replay of **some prefix**
//! of the committed operations — never a mix, never a suffix, never a
//! corrupted hybrid — and longer surviving WALs must recover longer
//! prefixes (monotonicity).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ov_oodb::{sym, AttrDef, Database, Durability, Type, Value};
use proptest::prelude::*;

/// One store mutation, victim-addressed by *index* into the oid-sorted
/// extent so the same op sequence replays identically on any database
/// regardless of absolute oid allocation.
#[derive(Clone, Debug)]
enum Op {
    Insert { age: i64 },
    SetAge { idx: usize, age: i64 },
    Remove { idx: usize },
    IndexAge,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..100).prop_map(|age| Op::Insert { age }),
        (0i64..100).prop_map(|age| Op::Insert { age: age + 100 }),
        (0usize..64, 0i64..100).prop_map(|(idx, age)| Op::SetAge { idx, age }),
        (0usize..64).prop_map(|idx| Op::Remove { idx }),
        Just(Op::IndexAge),
    ]
}

/// Applies `op` to `db`. Index-addressed ops on an empty (or shorter)
/// extent are no-ops, so the sequence is total on every database.
fn apply(db: &mut Database, class: ov_oodb::ClassId, op: &Op) {
    match op {
        Op::Insert { age } => {
            db.create_object(class, Value::tuple([(sym("Age"), Value::Int(*age))]))
                .unwrap();
        }
        Op::SetAge { idx, age } => {
            let oids = db.store.sorted_oids();
            if !oids.is_empty() {
                db.set_attr(oids[idx % oids.len()], sym("Age"), Value::Int(*age))
                    .unwrap();
            }
        }
        Op::Remove { idx } => {
            let oids = db.store.sorted_oids();
            if !oids.is_empty() {
                db.delete_object(oids[idx % oids.len()]).unwrap();
            }
        }
        Op::IndexAge => {
            if db.store.index_defs().is_empty() {
                db.store.create_index(class, sym("Age"));
            }
        }
    }
}

/// A database's comparable fingerprint: the renumbered DDL dump (schema,
/// objects, names — position-independent) plus the persisted index defs.
fn fingerprint(db: &Database) -> (String, Vec<(ov_oodb::ClassId, ov_oodb::Symbol)>) {
    (ov_oodb::dump_database(db), db.store.index_defs())
}

/// A fresh scratch dir per case (proptest runs many cases per process).
fn scratch() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("ov-prop-recovery-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn person_class(db: &mut Database) -> ov_oodb::ClassId {
    db.create_class(
        sym("Person"),
        &[],
        vec![AttrDef::stored(sym("Age"), Type::Int)],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash anywhere in the WAL → recover exactly a prefix of the
    /// committed operation sequence.
    #[test]
    fn truncated_wal_recovers_an_exact_prefix(
        ops in prop::collection::vec(arb_op(), 1..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch();
        // Durable run: every op WAL-logged, no checkpoint, no clean close.
        {
            let mut db = Database::open(sym("P"), &dir, Durability::Wal).unwrap();
            let class = person_class(&mut db);
            for op in &ops {
                apply(&mut db, class, op);
            }
        }
        // Reference replay: fingerprints of every committed prefix,
        // including the empty database (DDL record may be cut too).
        let mut prefixes = vec![fingerprint(&Database::new(sym("P")))];
        let mut reference = Database::new(sym("P"));
        let class = person_class(&mut reference);
        prefixes.push(fingerprint(&reference));
        for op in &ops {
            apply(&mut reference, class, op);
            prefixes.push(fingerprint(&reference));
        }
        // The crash: truncate the WAL at an arbitrary byte offset.
        let wal = dir.join("wal.ovl");
        let len = std::fs::metadata(&wal).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(cut)
            .unwrap();
        // Recovery must succeed and land on exactly one reference prefix.
        let recovered = Database::open(sym("P"), &dir, Durability::Wal).unwrap();
        let got = fingerprint(&recovered);
        prop_assert!(
            prefixes.contains(&got),
            "recovered state (cut {cut}/{len}) matches no committed prefix:\n{}",
            got.0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Monotonicity: keeping more of the WAL never recovers less. The
    /// recovered prefix index is non-decreasing in the truncation offset.
    #[test]
    fn longer_wal_survivals_recover_longer_prefixes(
        ops in prop::collection::vec(arb_op(), 1..25),
        cuts in prop::collection::vec(0.0f64..1.0, 2..4),
    ) {
        let dir = scratch();
        {
            let mut db = Database::open(sym("P"), &dir, Durability::Wal).unwrap();
            let class = person_class(&mut db);
            for op in &ops {
                apply(&mut db, class, op);
            }
        }
        let mut prefixes = vec![fingerprint(&Database::new(sym("P")))];
        let mut reference = Database::new(sym("P"));
        let class = person_class(&mut reference);
        prefixes.push(fingerprint(&reference));
        for op in &ops {
            apply(&mut reference, class, op);
            prefixes.push(fingerprint(&reference));
        }
        let wal_bytes = std::fs::read(dir.join("wal.ovl")).unwrap();
        let mut cuts = cuts;
        cuts.sort_by(f64::total_cmp);
        // States can repeat (insert + remove returns to a prior
        // fingerprint), so a recovered state may match several prefix
        // indices. Monotonicity holds iff a non-decreasing assignment of
        // indices exists; the greedy choice — smallest matching index not
        // below the previous pick — finds one exactly when it does.
        let mut last_idx = 0usize;
        for frac in cuts {
            let cut = (wal_bytes.len() as f64 * frac) as usize;
            // Restore the full WAL, then truncate to this cut.
            std::fs::write(dir.join("wal.ovl"), &wal_bytes[..cut]).unwrap();
            let recovered = Database::open(sym("P"), &dir, Durability::Wal).unwrap();
            let got = fingerprint(&recovered);
            let idx = prefixes
                .iter()
                .enumerate()
                .position(|(i, p)| i >= last_idx && *p == got);
            prop_assert!(
                idx.is_some(),
                "cut {cut}: no committed prefix at or beyond {last_idx} matches — \
                 a longer WAL survival recovered a shorter history"
            );
            last_idx = idx.unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
