//! Property tests: the type lattice. Subtyping must be a preorder and the
//! lub must actually be an upper bound — upward inheritance (paper §4.3)
//! silently depends on both.

use ov_oodb::types::NoClasses;
use ov_oodb::{sym, ClassGraph, Schema, Type};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Any),
        Just(Type::Nothing),
        Just(Type::Bool),
        Just(Type::Int),
        Just(Type::Float),
        Just(Type::Str),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Type::set),
            inner.clone().prop_map(Type::list),
            prop::collection::btree_map("[A-Z][a-z]{0,4}".prop_map(|s| sym(&s)), inner, 0..3)
                .prop_map(Type::Tuple),
        ]
    })
}

proptest! {
    #[test]
    fn subtyping_is_reflexive(t in arb_type()) {
        prop_assert!(t.is_subtype(&t, &NoClasses));
    }

    #[test]
    fn subtyping_is_transitive(a in arb_type(), b in arb_type(), c in arb_type()) {
        let g = NoClasses;
        if a.is_subtype(&b, &g) && b.is_subtype(&c, &g) {
            prop_assert!(a.is_subtype(&c, &g));
        }
    }

    #[test]
    fn lub_is_an_upper_bound(a in arb_type(), b in arb_type()) {
        let g = NoClasses;
        // Structural types always have a lub (no class ambiguity possible).
        let l = a.lub(&b, &g).expect("structural lub exists");
        prop_assert!(a.is_subtype(&l, &g), "{a:?} </: {l:?}");
        prop_assert!(b.is_subtype(&l, &g), "{b:?} </: {l:?}");
    }

    #[test]
    fn lub_is_commutative(a in arb_type(), b in arb_type()) {
        let g = NoClasses;
        prop_assert_eq!(a.lub(&b, &g), b.lub(&a, &g));
    }

    #[test]
    fn lub_is_idempotent(a in arb_type()) {
        let g = NoClasses;
        prop_assert_eq!(a.lub(&a, &g), Some(a.clone()));
    }

    #[test]
    fn glb_is_a_lower_bound_when_defined(a in arb_type(), b in arb_type()) {
        let g = NoClasses;
        if let Some(l) = a.glb(&b, &g) {
            prop_assert!(l.is_subtype(&a, &g), "{l:?} </: {a:?}");
            prop_assert!(l.is_subtype(&b, &g), "{l:?} </: {b:?}");
        }
    }

    /// Subtype pairs agree with lub: a <: b  ⟺  lub(a,b) = b (for
    /// structural types).
    #[test]
    fn subtype_iff_lub_is_upper(a in arb_type(), b in arb_type()) {
        let g = NoClasses;
        if a.is_subtype(&b, &g) {
            prop_assert_eq!(a.lub(&b, &g), Some(b.clone()));
        }
    }
}

// Random class DAGs: `is_subclass` must be a partial order and agree with
// `ancestors`.
proptest! {
    #[test]
    fn class_hierarchy_is_a_partial_order(
        // parents[i] ⊆ {0..i}: guarantees acyclicity by construction.
        parent_picks in prop::collection::vec(prop::collection::vec(any::<prop::sample::Index>(), 0..3), 1..12)
    ) {
        let mut schema = Schema::new();
        let mut ids = Vec::new();
        for (i, picks) in parent_picks.iter().enumerate() {
            let parents: Vec<_> = if ids.is_empty() {
                Vec::new()
            } else {
                let mut p: Vec<_> = picks
                    .iter()
                    .map(|ix| ids[ix.index(ids.len())])
                    .collect();
                p.sort();
                p.dedup();
                p
            };
            let id = schema
                .add_class(sym(&format!("C{i}_{}", parent_picks.len())), &parents, vec![])
                .unwrap();
            ids.push(id);
        }
        for &a in &ids {
            prop_assert!(schema.is_subclass(a, a));
            for &b in &ids {
                // Antisymmetry: mutual subclassing implies equality.
                if schema.is_subclass(a, b) && schema.is_subclass(b, a) {
                    prop_assert_eq!(a, b);
                }
                // ancestors agrees with is_subclass.
                prop_assert_eq!(
                    schema.ancestors(a).contains(&b),
                    schema.is_subclass(a, b)
                );
                for &c in &ids {
                    if schema.is_subclass(a, b) && schema.is_subclass(b, c) {
                        prop_assert!(schema.is_subclass(a, c));
                    }
                }
            }
        }
    }
}
