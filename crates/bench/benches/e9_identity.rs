//! E9 — Imaginary-object identity (paper §5/§5.1).
//!
//! Measures imaginary population evaluation with the identity-table
//! semantics vs the naive fresh-oid baseline, and verifies/measures the
//! paper's "two seemingly equivalent queries": under identity tables the
//! nested-membership query costs two population evaluations but returns
//! the same objects; under fresh oids it returns nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::{people, staff_view};
use ov_oodb::sym;
use ov_views::{IdentityMode, Materialization, ViewOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_identity");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[500usize, 4_000] {
        let sys = people(n);
        let table = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        );
        let fresh = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .identity_mode(IdentityMode::Fresh)
                .build(),
        );
        group.bench_with_input(BenchmarkId::new("table_population", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(table.extent_of(sym("Family")).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("fresh_population", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(fresh.extent_of(sym("Family")).unwrap()))
        });
        let nested = "count((select F from F in Family \
                      where F in (select G from G in Family where G.Husband.Age < 50)))";
        group.bench_with_input(BenchmarkId::new("nested_query_table", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(table.query(nested).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
