//! E7 — Parameterized classes (paper §4.1).
//!
//! Measures first instantiation of `Resident(X)` (definition + hierarchy
//! inference + population) vs repeated use of a cached instance, and the
//! total cost of partitioning the population by a parameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::people;
use ov_oodb::Value;
use ov_views::ViewDef;

const CITIES: &[&str] = &["London", "Paris", "Roma", "Berlin"];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_parameterized");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[1_000usize, 10_000] {
        let sys = people(n);
        let def = ViewDef::from_script(
            "create view V; import all classes from database Staff; \
             class Resident(X) includes (select P from Person where P.City = X);",
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("first_instantiation", n), &n, |b, _| {
            // A fresh view per iteration so the instance cache is cold.
            b.iter_with_setup(
                || def.binder(&sys).bind().unwrap(),
                |view| {
                    std::hint::black_box(view.query(r#"count(Resident("London"))"#).unwrap());
                },
            )
        });
        let view = def.binder(&sys).bind().unwrap();
        view.query(r#"count(Resident("London"))"#).unwrap();
        group.bench_with_input(BenchmarkId::new("cached_instance", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(view.query(r#"count(Resident("London"))"#).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("partition_4_cities", n), &n, |b, _| {
            let view = def.binder(&sys).bind().unwrap();
            b.iter(|| {
                for city in CITIES {
                    std::hint::black_box(
                        view.instantiate(ov_oodb::sym("Resident"), &[Value::str(city)])
                            .unwrap(),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
