//! E3 — Import/hide view construction (paper §3).
//!
//! Measures the cost of *binding* a view (copying the imported schema,
//! applying hides) as the schema grows, and — with a data-size sweep at a
//! constant schema — demonstrates that binding is a schema-sized operation
//! ("a view has a schema, like all databases, but no proper data of its
//! own").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::market;
use ov_views::ViewDef;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_import_hide");
    group.sample_size(20);
    // Schema size sweep with constant tiny data.
    for &classes in &[10usize, 50, 200] {
        let sys = market(classes, 8, 1);
        let def = ViewDef::from_script(
            "create view V; import all classes from database Market; \
             hide attribute Id in class Item;",
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("bind_schema_classes", classes),
            &classes,
            |b, _| b.iter(|| std::hint::black_box(def.binder(&sys).bind().unwrap())),
        );
    }
    // Data size sweep with constant schema: binding must not scale with it.
    for &objs in &[10usize, 1_000] {
        let sys = market(20, 8, objs);
        let def = ViewDef::from_script("create view V; import all classes from database Market;")
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("bind_data_objects", objs),
            &objs,
            |b, _| b.iter(|| std::hint::black_box(def.binder(&sys).bind().unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
