//! E5 — Attribute resolution and schizophrenia (paper §2 overloading, §4.3).
//!
//! Measures upward resolution through a deep inheritance chain, resolution
//! through a view with overlapping virtual classes (membership checks), and
//! the conflict policies when schizophrenia actually occurs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::{people, person_oids};
use ov_oodb::{sym, ConflictPolicy};
use ov_query::eval_attr;
use ov_views::{ViewDef, ViewOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_resolution");
    group.sample_size(30);
    let sys = people(2_000);
    let oids = person_oids(&sys, 64);

    // Overlapping virtual classes that both define Print.
    let def = ViewDef::from_script(
        r#"
        create view V;
        import all classes from database Staff;
        class Rich includes (select P from Person where P.Income >= 100000);
        class Senior includes (select P from Person where P.Age >= 65);
        attribute Print in class Rich has value "rich";
        attribute Print in class Senior has value "senior";
        attribute Plain in class Person has value "plain";
        "#,
    )
    .unwrap();
    let creation = def.binder(&sys).bind().unwrap();
    let priority = def
        .binder(&sys)
        .options(
            ViewOptions::builder()
                .policy(ConflictPolicy::Priority(vec![sym("Senior"), sym("Rich")]))
                .build(),
        )
        .bind()
        .unwrap();

    // Resolution that never needs virtual memberships (Plain is defined on
    // Person): the relevance filter should keep this cheap.
    group.bench_function("base_chain_attr", |b| {
        b.iter(|| {
            for &o in &oids {
                std::hint::black_box(eval_attr(&creation, o, sym("Plain"), &[]).unwrap());
            }
        })
    });
    // Resolution that must consult virtual memberships (Print lives on
    // Rich/Senior only) — includes the population lookups. Some objects are
    // in neither class, so errors are expected and blackboxed.
    group.bench_function("overlap_attr_creation_order", |b| {
        b.iter(|| {
            for &o in &oids {
                std::hint::black_box(eval_attr(&creation, o, sym("Print"), &[]).ok());
            }
        })
    });
    group.bench_function("overlap_attr_priority", |b| {
        b.iter(|| {
            for &o in &oids {
                std::hint::black_box(eval_attr(&priority, o, sym("Print"), &[]).ok());
            }
        })
    });

    // Deep chains in a plain schema: resolution vs depth.
    for &depth in &[2usize, 8, 32] {
        let mut db = ov_oodb::Database::new(sym(&format!("Deep{depth}")));
        let mut parent = db
            .create_class(
                sym(&format!("D{depth}_0")),
                &[],
                vec![ov_oodb::AttrDef::stored(sym("X"), ov_oodb::Type::Int)],
            )
            .unwrap();
        for i in 1..depth {
            parent = db
                .create_class(sym(&format!("D{depth}_{i}")), &[parent], vec![])
                .unwrap();
        }
        let oid = db
            .create_object(
                parent,
                ov_oodb::Value::tuple([("X", ov_oodb::Value::Int(1))]),
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::new("chain_depth", depth), &depth, |b, _| {
            b.iter(|| std::hint::black_box(eval_attr(&db, oid, sym("X"), &[]).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
