//! E11 — Identity churn under update workloads (paper §5.1, Example 6).
//!
//! Measures the two Client-view designs under an address-update workload:
//! the poorly designed view (Address as a core attribute) re-creates a
//! client object per update and its identity table grows without bound;
//! the fixed design (Address virtual) keeps identity stable. The benchmark
//! measures population re-evaluation after each update; churn *counts* are
//! reported by the harness binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::insurance;
use ov_oodb::{sym, Value};
use ov_views::ViewDef;

const POOR: &str = r#"
    create view Poor;
    import all classes from database Insurance;
    class Client includes imaginary
        (select [CName: P.PName, SS: P.SS, CAddress: P.PAddress, Policy: P]
         from P in Policy);
"#;
const FIXED: &str = r#"
    create view Fixed;
    import all classes from database Insurance;
    class Client includes imaginary
        (select [CName: P.PName, SS: P.SS, Policy: P] from P in Policy);
    attribute CAddress in class Client has value self.Policy.PAddress;
"#;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_churn");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, script) in [("poor", POOR), ("fixed", FIXED)] {
        {
            let n = 1_000usize;
            let sys = insurance(n);
            let view = ViewDef::from_script(script)
                .unwrap()
                .binder(&sys)
                .bind()
                .unwrap();
            let db = sys.database(sym("Insurance")).unwrap();
            let policies = {
                let d = db.read();
                d.deep_extent(d.schema.class_by_name(sym("Policy")).unwrap())
            };
            let mut i = 0usize;
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_update_then_extent"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let p = policies[i % policies.len()];
                        i += 1;
                        db.write()
                            .set_attr(p, sym("PAddress"), Value::str(&format!("new {i}")))
                            .unwrap();
                        std::hint::black_box(view.extent_of(sym("Client")).unwrap());
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
