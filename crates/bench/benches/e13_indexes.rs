//! E13 (extension) — index pushdown for specialization populations.
//!
//! An ablation beyond the paper: population queries with an equality
//! conjunct on an indexed stored attribute are answered from a secondary
//! index instead of scanning the deep extent. Expected shape: scan is
//! linear in the extent, the indexed path is proportional to the result
//! size — the crossover favors the index as selectivity sharpens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::people;
use ov_oodb::sym;
use ov_views::{Materialization, ViewDef, ViewOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_indexes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[1_000usize, 10_000] {
        for (label, indexed) in [("scan", false), ("indexed", true)] {
            let sys = people(n);
            if indexed {
                let db = sys.database(sym("Staff")).unwrap();
                let mut db = db.write();
                let person = db.schema.class_by_name(sym("Person")).unwrap();
                db.create_index(person, sym("City")).unwrap();
            }
            let view = ViewDef::from_script(
                r#"
                create view V;
                import all classes from database Staff;
                class Londoner includes
                    (select P from Person where P.City = "London");
                "#,
            )
            .unwrap()
            .binder(&sys)
            .options(
                ViewOptions::builder()
                    .materialization(Materialization::AlwaysRecompute)
                    .build(),
            )
            .bind()
            .unwrap();
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| std::hint::black_box(view.extent_of(sym("Londoner")).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
