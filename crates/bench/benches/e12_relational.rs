//! E12 — Object views of relational data (paper §5, application 1).
//!
//! Measures staging a relational database into the object world, building
//! the imaginary-class view, querying through it, and re-staging after
//! updates (identity stability maintained by the §5.1 tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::payroll;
use ov_oodb::sym;
use ov_relational::bridge;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_relational");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[1_000usize, 10_000] {
        let rdb = payroll(n, 16);
        group.bench_with_input(BenchmarkId::new("stage", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(bridge::stage(&rdb).unwrap()))
        });
        let (sys, _) = bridge::stage(&rdb).unwrap();
        let view = bridge::object_view(&rdb, &sys).unwrap();
        group.bench_with_input(BenchmarkId::new("populate", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(view.extent_of(sym("Emp")).unwrap()))
        });
        view.extent_of(sym("Emp")).unwrap();
        group.bench_with_input(BenchmarkId::new("select_through_view", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    view.query("count((select E from E in Emp where E.Salary > 100000))")
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("restage", n), &n, |b, _| {
            b.iter(|| {
                bridge::restage(&rdb, &sys).unwrap();
                std::hint::black_box(());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
