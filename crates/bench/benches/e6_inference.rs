//! E6 — Hierarchy inference (paper §4.2).
//!
//! Measures binding views whose virtual classes must be positioned by rules
//! R1/R2 — generalizations over k siblings, and behavioral (`like`)
//! matching over schemas of growing width. Expected shape: inference is
//! polynomial in schema size and independent of data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::market;
use ov_views::ViewDef;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_inference");
    group.sample_size(20);
    for &classes in &[10usize, 50, 200] {
        let sys = market(classes, 6, 1);
        // One generalization over every fifth class.
        let picked: Vec<String> = (0..classes)
            .step_by(5)
            .map(|i| format!("Kind{i}"))
            .collect();
        let gen_script = format!(
            "create view V; import all classes from database Market; \
             class Grouped includes {};",
            picked.join(", ")
        );
        let gen_def = ViewDef::from_script(&gen_script).unwrap();
        group.bench_with_input(
            BenchmarkId::new("generalization_bind", classes),
            &classes,
            |b, _| b.iter(|| std::hint::black_box(gen_def.binder(&sys).bind().unwrap())),
        );
        // Behavioral generalization: conformance test against every class.
        let like_def = ViewDef::from_script(
            "create view V; import all classes from database Market; \
             class On_Sale includes like Sale_Spec;",
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("behavioral_bind", classes),
            &classes,
            |b, _| b.iter(|| std::hint::black_box(like_def.binder(&sys).bind().unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
