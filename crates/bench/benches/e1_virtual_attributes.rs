//! E1 — Virtual attributes (paper §2, Example 1).
//!
//! Measures the cost of the paper's central move: erasing the
//! stored/computed distinction. Series:
//! * `stored_base`   — reading a stored attribute directly on the database;
//! * `stored_view`   — the same read through a view (indirection only);
//! * `computed_view` — a computed Address tuple (merge of two stored
//!   attributes), i.e. a genuine virtual attribute.
//!
//! Expected shape: virtuality costs a constant factor per access (a body
//! evaluation), not an asymptotic blowup; stored access through a view is
//! close to base access and independent of database size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::{bench_syms, people, person_oids, staff_view};
use ov_query::eval_attr;
use ov_views::ViewOptions;

fn bench(c: &mut Criterion) {
    let (age, address, _) = bench_syms();
    let mut group = c.benchmark_group("e1_virtual_attributes");
    group.sample_size(30);
    for &n in &[1_000usize, 10_000] {
        let sys = people(n);
        let view = staff_view(&sys, ViewOptions::default());
        let oids = person_oids(&sys, 64);
        let db = sys.database(ov_oodb::sym("Staff")).unwrap();

        group.bench_with_input(BenchmarkId::new("stored_base", n), &n, |b, _| {
            let db = db.read();
            b.iter(|| {
                for &o in &oids {
                    std::hint::black_box(eval_attr(&*db, o, age, &[]).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("stored_view", n), &n, |b, _| {
            b.iter(|| {
                for &o in &oids {
                    std::hint::black_box(eval_attr(&view, o, age, &[]).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("computed_view", n), &n, |b, _| {
            b.iter(|| {
                for &o in &oids {
                    std::hint::black_box(eval_attr(&view, o, address, &[]).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
