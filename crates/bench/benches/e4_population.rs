//! E4 — Virtual-class population (paper §4.1).
//!
//! Measures evaluating the population of a specialization class (`Adult`)
//! against extent size, and what the version-keyed cache buys on repeated
//! access (`cached` vs `recompute`). Expected shape: population evaluation
//! is linear in the base extent; cached access is near-constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ov_bench::{people, staff_view};
use ov_oodb::sym;
use ov_views::{Materialization, ViewOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_population");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for &n in &[1_000usize, 10_000] {
        let sys = people(n);
        let cached = staff_view(&sys, ViewOptions::default());
        let incremental = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::Incremental)
                .build(),
        );
        let recompute = staff_view(
            &sys,
            ViewOptions::builder()
                .materialization(Materialization::AlwaysRecompute)
                .build(),
        );
        group.bench_with_input(BenchmarkId::new("cached", n), &n, |b, _| {
            // Warm the cache, then measure repeated access.
            cached.extent_of(sym("Adult")).unwrap();
            b.iter(|| std::hint::black_box(cached.extent_of(sym("Adult")).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("recompute", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(recompute.extent_of(sym("Adult")).unwrap()))
        });
        // Chained specialization (Senior over Adult): two query layers.
        group.bench_with_input(BenchmarkId::new("chained_recompute", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(recompute.extent_of(sym("Senior")).unwrap()))
        });
        // Update-heavy access: one base update then one extent read.
        // Incremental maintenance re-tests only the changed object; the
        // plain cache must recompute from scratch.
        let db = sys.database(sym("Staff")).unwrap();
        let victims = ov_bench::person_oids(&sys, 16);
        for (label, view) in [
            ("update_cached", &cached),
            ("update_incremental", &incremental),
        ] {
            view.extent_of(sym("Adult")).unwrap();
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let o = victims[i % victims.len()];
                    i += 1;
                    db.write()
                        .set_attr(o, sym("Age"), ov_oodb::Value::Int((i % 90) as i64))
                        .unwrap();
                    std::hint::black_box(view.extent_of(sym("Adult")).unwrap());
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
