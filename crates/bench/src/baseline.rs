//! Bench baseline snapshots: record, save, load, compare.
//!
//! The harness records one mean-nanoseconds sample per timed table cell
//! under a stable `"Experiment/label/column"` key (e.g.
//! `"E1/10000/computed@view"`). A *baseline* is the flat JSON object of
//! those keys, written with sorted keys so snapshots diff cleanly:
//!
//! ```json
//! {
//!   "E1/1000/computed@view": 1234.5,
//!   "E1/1000/stored@base": 210.0
//! }
//! ```
//!
//! `harness --save-baseline [FILE]` writes one; `harness --baseline [FILE]`
//! re-runs the experiments, compares against the saved snapshot, prints
//! per-key deltas grouped by experiment, and exits nonzero when any key
//! regressed beyond the threshold. Comparison is deliberately coarse — the
//! harness takes wall-clock means, so a regression needs BOTH a ratio above
//! `threshold` AND an absolute delta above a noise floor before it counts.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Ratio (new/old) above which a timing counts as regressed, by default.
pub const DEFAULT_THRESHOLD: f64 = 2.0;

/// Absolute delta (ns) below which a ratio blowup is ignored as noise:
/// a 30 ns → 90 ns cell is a 3× "regression" that means nothing.
pub const NOISE_FLOOR_NS: f64 = 1_000.0;

/// Default snapshot filename used when `--baseline`/`--save-baseline` are
/// given without an argument.
pub const DEFAULT_FILE: &str = "BENCH_baseline.json";

static RECORDS: Mutex<Option<BTreeMap<String, f64>>> = Mutex::new(None);

/// Records one timed cell under `experiment/label/column`.
///
/// Always on: recording a few hundred keys per harness run costs nothing
/// next to the experiments themselves, and keeps the call sites free of
/// mode checks.
pub fn record(experiment: &str, label: &str, column: &str, ns: f64) {
    let key = format!("{experiment}/{label}/{column}");
    RECORDS
        .lock()
        .expect("baseline records poisoned")
        .get_or_insert_with(BTreeMap::new)
        .insert(key, ns);
}

/// All records so far, keyed `"Experiment/label/column"` → mean ns.
pub fn snapshot() -> BTreeMap<String, f64> {
    RECORDS
        .lock()
        .expect("baseline records poisoned")
        .clone()
        .unwrap_or_default()
}

/// Renders a snapshot as pretty JSON with sorted keys (BTreeMap order).
pub fn to_json(map: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("  \"{}\": {:.1}", escape(k), v));
    }
    out.push_str("\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

/// Parses a flat `{"key": number, ...}` JSON object (the only shape
/// [`to_json`] produces). Rejects anything nested; good errors, no deps.
pub fn parse_json(src: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut map = BTreeMap::new();
    let s = src.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "baseline file is not a JSON object".to_string())?;
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest)?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected `:` after key {key:?}"))?;
        let t = after_colon.trim_start();
        let num_len = t
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(t.len());
        let ns: f64 = t[..num_len]
            .parse()
            .map_err(|e| format!("bad number for key {key:?}: {e}"))?;
        map.insert(key, ns);
        rest = t[num_len..].trim_start();
        match rest.strip_prefix(',') {
            Some(r) => rest = r.trim_start(),
            None if rest.is_empty() => break,
            None => return Err(format!("expected `,` or end of object near {rest:.20?}")),
        }
    }
    Ok(map)
}

/// Parses one leading JSON string, returning (contents, remainder).
fn parse_string(s: &str) -> Result<(String, &str), String> {
    let body = s
        .trim_start()
        .strip_prefix('"')
        .ok_or_else(|| format!("expected a string near {s:.20?}"))?;
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &body[i + 1..])),
            '\\' => match chars.next() {
                Some((_, e @ ('"' | '\\' | '/'))) => out.push(e),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                other => return Err(format!("unsupported escape {other:?} in baseline key")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string in baseline file".into())
}

/// One compared key.
#[derive(Clone, Debug)]
pub struct Delta {
    /// `"Experiment/label/column"`.
    pub key: String,
    /// Baseline mean ns.
    pub old_ns: f64,
    /// Current mean ns.
    pub new_ns: f64,
    /// `new / old` (∞-safe: old ≤ 0 counts as ratio 1).
    pub ratio: f64,
    /// Did this key regress past the threshold and noise floor?
    pub regressed: bool,
}

/// The result of comparing a current run against a saved baseline.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// One row per key present in both snapshots, sorted by key.
    pub rows: Vec<Delta>,
    /// Keys in the baseline but absent from the current run.
    pub missing: Vec<String>,
    /// Keys in the current run but absent from the baseline.
    pub added: Vec<String>,
}

impl Comparison {
    /// Number of regressed rows.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|d| d.regressed).count()
    }
}

/// Compares `current` against `baseline`. A key regresses when
/// `new/old > threshold` AND `new - old > NOISE_FLOOR_NS`.
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    threshold: f64,
) -> Comparison {
    let mut cmp = Comparison::default();
    for (key, &old_ns) in baseline {
        match current.get(key) {
            None => cmp.missing.push(key.clone()),
            Some(&new_ns) => {
                let ratio = if old_ns > 0.0 { new_ns / old_ns } else { 1.0 };
                let regressed = ratio > threshold && (new_ns - old_ns) > NOISE_FLOOR_NS;
                cmp.rows.push(Delta {
                    key: key.clone(),
                    old_ns,
                    new_ns,
                    ratio,
                    regressed,
                });
            }
        }
    }
    for key in current.keys() {
        if !baseline.contains_key(key) {
            cmp.added.push(key.clone());
        }
    }
    cmp
}

/// Renders a comparison as the per-experiment delta report the harness
/// prints. Keys share sort order with the snapshots, so rows group by
/// experiment naturally; a blank line separates experiments.
pub fn render(cmp: &Comparison, threshold: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# baseline comparison ({} keys, threshold {threshold}x)\n",
        cmp.rows.len()
    ));
    let mut last_exp = String::new();
    for d in &cmp.rows {
        let exp = d.key.split('/').next().unwrap_or("").to_string();
        if exp != last_exp {
            out.push('\n');
            last_exp = exp;
        }
        let flag = if d.regressed {
            "  REGRESSED"
        } else if d.ratio < 1.0 / DEFAULT_THRESHOLD {
            "  (improved)"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:<44} {:>12} -> {:>12}  {:>6.2}x{}\n",
            d.key,
            crate::fmt_ns(d.old_ns),
            crate::fmt_ns(d.new_ns),
            d.ratio,
            flag
        ));
    }
    if !cmp.missing.is_empty() {
        out.push_str(&format!(
            "\n{} baseline key(s) not produced by this run:\n",
            cmp.missing.len()
        ));
        for k in &cmp.missing {
            out.push_str(&format!("  - {k}\n"));
        }
    }
    if !cmp.added.is_empty() {
        out.push_str(&format!(
            "\n{} new key(s) absent from the baseline:\n",
            cmp.added.len()
        ));
        for k in &cmp.added {
            out.push_str(&format!("  + {k}\n"));
        }
    }
    out.push_str(&format!("\nregressions: {}\n", cmp.regressions()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reset() {
        *RECORDS.lock().unwrap() = None;
    }

    #[test]
    fn json_round_trips_with_sorted_keys() {
        reset();
        record("E2", "b", "col", 2_000.0);
        record("E1", "a", "col with \"quote\"", 1_500.5);
        let snap = snapshot();
        let json = to_json(&snap);
        // Sorted: E1 before E2.
        assert!(json.find("E1/a").unwrap() < json.find("E2/b").unwrap());
        let back = parse_json(&json).unwrap();
        assert_eq!(back, snap);
        reset();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("[1,2]").is_err());
        assert!(parse_json("{\"k\": }").is_err());
        assert!(parse_json("{\"k: 1}").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn compare_flags_real_regressions_only() {
        let mut old = BTreeMap::new();
        let mut new = BTreeMap::new();
        // 3x over a microsecond: regression.
        old.insert("E1/a/x".into(), 10_000.0);
        new.insert("E1/a/x".into(), 30_000.0);
        // 3x but tiny absolute delta: noise, not a regression.
        old.insert("E1/a/y".into(), 100.0);
        new.insert("E1/a/y".into(), 300.0);
        // Within threshold.
        old.insert("E2/b/z".into(), 10_000.0);
        new.insert("E2/b/z".into(), 12_000.0);
        // Missing + added.
        old.insert("E3/gone/x".into(), 1.0);
        new.insert("E3/new/x".into(), 1.0);
        let cmp = compare(&old, &new, 2.0);
        assert_eq!(cmp.regressions(), 1);
        assert_eq!(cmp.rows.iter().find(|d| d.regressed).unwrap().key, "E1/a/x");
        assert_eq!(cmp.missing, vec!["E3/gone/x".to_string()]);
        assert_eq!(cmp.added, vec!["E3/new/x".to_string()]);
        let report = render(&cmp, 2.0);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("regressions: 1"));
    }

    #[test]
    fn same_snapshot_has_zero_regressions() {
        let mut snap = BTreeMap::new();
        snap.insert("E1/a/x".into(), 5_000.0);
        snap.insert("E9/b/pop".into(), 123_456.0);
        let cmp = compare(&snap, &snap, 2.0);
        assert_eq!(cmp.regressions(), 0);
        assert!(cmp.missing.is_empty() && cmp.added.is_empty());
    }
}
