//! # ov-bench — workloads and the experiment harness
//!
//! Deterministic synthetic workload generators for the experiment suite in
//! `EXPERIMENTS.md`, shared between the Criterion benches
//! (`crates/bench/benches/*`) and the table-printing harness
//! (`cargo run -p ov-bench --bin harness`).
//!
//! The paper has no quantitative evaluation, so the workloads here are
//! sized to exercise the mechanisms the paper *argues* about: virtual
//! attribute indirection (§2), import/hide view construction (§3), virtual
//! class populations and hierarchy inference (§4), resolution with
//! schizophrenia (§4.3), and imaginary-object identity (§5).

pub mod baseline;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ov_oodb::{sym, AttrDef, ClassId, Database, Symbol, System, Type, Value};
use ov_relational::{Relation, RelationalDb};
use ov_views::{View, ViewDef, ViewOptions};

/// Fixed seed: every generator is deterministic.
pub const SEED: u64 = 0x0b1ec75;

const CITIES: &[&str] = &[
    "London", "Paris", "Roma", "Berlin", "Madrid", "Wien", "Praha", "Oslo",
];

/// A people database: `Person` with `n` objects, roughly a third of which
/// are real in `Employee`, a ninth in `Manager`. Ages 0..100, incomes
/// 0..200_000, cities from a fixed pool, ~40% married into spouse pairs.
pub fn people(n: usize) -> System {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut sys = System::new();
    let mut db = Database::new(sym("Staff"));
    let person = db
        .create_class(
            sym("Person"),
            &[],
            vec![
                AttrDef::stored(sym("Name"), Type::Str),
                AttrDef::stored(sym("Age"), Type::Int),
                AttrDef::stored(sym("Sex"), Type::Str),
                AttrDef::stored(sym("City"), Type::Str),
                AttrDef::stored(sym("Street"), Type::Str),
                AttrDef::stored(sym("Income"), Type::Int),
                AttrDef::stored(sym("Spouse"), Type::Class(ClassId(0))),
                AttrDef::stored(sym("Kids"), Type::Int),
            ],
        )
        .unwrap();
    let employee = db
        .create_class(
            sym("Employee"),
            &[person],
            vec![AttrDef::stored(sym("Salary"), Type::Int)],
        )
        .unwrap();
    let manager = db
        .create_class(
            sym("Manager"),
            &[employee],
            vec![AttrDef::stored(sym("Budget"), Type::Int)],
        )
        .unwrap();
    let mut oids = Vec::with_capacity(n);
    for i in 0..n {
        let class = match i % 9 {
            0 => manager,
            1 | 2 => employee,
            _ => person,
        };
        let mut fields = vec![
            (sym("Name"), Value::str(&format!("p{i}"))),
            (sym("Age"), Value::Int(rng.gen_range(0..100))),
            (
                sym("Sex"),
                Value::str(if i % 2 == 0 { "male" } else { "female" }),
            ),
            (
                sym("City"),
                Value::str(CITIES[rng.gen_range(0..CITIES.len())]),
            ),
            (sym("Street"), Value::str(&format!("{} St", i % 97))),
            (sym("Income"), Value::Int(rng.gen_range(0..200_000))),
            (sym("Kids"), Value::Int(rng.gen_range(0..9))),
        ];
        if class != person {
            fields.push((sym("Salary"), Value::Int(rng.gen_range(20_000..150_000))));
        }
        if class == manager {
            fields.push((sym("Budget"), Value::Int(rng.gen_range(0..5_000_000))));
        }
        let oid = db
            .create_object(class, Value::Tuple(ov_oodb::Tuple::from_fields(fields)))
            .unwrap();
        oids.push(oid);
    }
    // Marry adjacent pairs (even index = husband).
    for pair in oids.chunks(2) {
        if let [h, w] = pair {
            if rng.gen_bool(0.4) {
                db.set_attr(*h, sym("Spouse"), Value::Oid(*w)).unwrap();
                db.set_attr(*w, sym("Spouse"), Value::Oid(*h)).unwrap();
            }
        }
    }
    sys.add_database(db).unwrap();
    sys
}

/// The first `k` person oids of a [`people`] system (deterministic order).
pub fn person_oids(sys: &System, k: usize) -> Vec<ov_oodb::Oid> {
    let db = sys.database(sym("Staff")).unwrap();
    let db = db.read();
    let person = db.schema.class_by_name(sym("Person")).unwrap();
    db.deep_extent(person).into_iter().take(k).collect()
}

/// A wide schema: `classes` sibling classes under one root, each carrying
/// `attrs_per_class` integer attributes plus `Price`/`Discount` on the
/// first half (for behavioral matching), with `objs_per_class` objects.
pub fn market(classes: usize, attrs_per_class: usize, objs_per_class: usize) -> System {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    let mut sys = System::new();
    let mut db = Database::new(sym("Market"));
    let root = db
        .create_class(
            sym("Item"),
            &[],
            vec![AttrDef::stored(sym("Id"), Type::Int)],
        )
        .unwrap();
    db.create_class(
        sym("Sale_Spec"),
        &[],
        vec![
            AttrDef::stored(sym("Price"), Type::Float),
            AttrDef::stored(sym("Discount"), Type::Int),
        ],
    )
    .unwrap();
    for c in 0..classes {
        let mut attrs: Vec<AttrDef> = (0..attrs_per_class)
            .map(|a| AttrDef::stored(sym(&format!("A{a}")), Type::Int))
            .collect();
        let for_sale = c < classes / 2;
        if for_sale {
            attrs.push(AttrDef::stored(sym("Price"), Type::Float));
            attrs.push(AttrDef::stored(sym("Discount"), Type::Int));
        }
        let id = db
            .create_class(sym(&format!("Kind{c}")), &[root], attrs)
            .unwrap();
        for o in 0..objs_per_class {
            let mut fields = vec![(sym("Id"), Value::Int(o as i64))];
            if for_sale {
                fields.push((sym("Price"), Value::Float(rng.gen_range(1.0..1e5))));
                fields.push((sym("Discount"), Value::Int(rng.gen_range(0..50))));
            }
            db.create_object(id, Value::Tuple(ov_oodb::Tuple::from_fields(fields)))
                .unwrap();
        }
    }
    sys.add_database(db).unwrap();
    sys
}

/// An insurance database with `n` policies (for the E11 churn experiment).
pub fn insurance(n: usize) -> System {
    let mut rng = StdRng::seed_from_u64(SEED ^ 2);
    let mut sys = System::new();
    let mut db = Database::new(sym("Insurance"));
    let policy = db
        .create_class(
            sym("Policy"),
            &[],
            vec![
                AttrDef::stored(sym("Policy_Number"), Type::Int),
                AttrDef::stored(sym("PName"), Type::Str),
                AttrDef::stored(sym("PAddress"), Type::Str),
                AttrDef::stored(sym("SS"), Type::Int),
                AttrDef::stored(sym("Cost"), Type::Int),
            ],
        )
        .unwrap();
    for i in 0..n {
        db.create_object(
            policy,
            Value::tuple([
                ("Policy_Number", Value::Int(i as i64)),
                ("PName", Value::str(&format!("client{i}"))),
                (
                    "PAddress",
                    Value::str(&format!("{} Main St", rng.gen_range(1..500))),
                ),
                ("SS", Value::Int(i as i64 + 10_000)),
                ("Cost", Value::Int(rng.gen_range(50..500))),
            ]),
        )
        .unwrap();
    }
    sys.add_database(db).unwrap();
    sys
}

/// A relational payroll with `n` employee rows over `depts` departments.
pub fn payroll(n: usize, depts: usize) -> RelationalDb {
    let mut rng = StdRng::seed_from_u64(SEED ^ 3);
    let mut rdb = RelationalDb::new(sym("Payroll"));
    rdb.create_relation(Relation::new(
        sym("Emp"),
        vec![
            (sym("EName"), Type::Str),
            (sym("Dept"), Type::Str),
            (sym("Salary"), Type::Int),
        ],
    ))
    .unwrap();
    for i in 0..n {
        rdb.insert(
            sym("Emp"),
            vec![
                Value::str(&format!("e{i}")),
                Value::str(&format!("d{}", i % depts.max(1))),
                Value::Int(rng.gen_range(20_000..150_000)),
            ],
        )
        .unwrap();
    }
    rdb
}

/// Binds a standard "staff" view over a [`people`] system: a virtual
/// Address attribute, the Adult/Senior specialization chain, and a Family
/// imaginary class.
pub fn staff_view(sys: &System, options: ViewOptions) -> View {
    ViewDef::from_script(
        r#"
        create view Bench;
        import all classes from database Staff;
        attribute Address in class Person has value
            [City: self.City, Street: self.Street];
        class Adult includes (select P from Person where P.Age >= 21);
        class Senior includes (select A from Adult where A.Age >= 65);
        class Family includes imaginary
            (select [Husband: H, Wife: H.Spouse]
             from H in Person where H.Sex = "male" and H.Spouse != null);
        "#,
    )
    .unwrap()
    .binder(sys)
    .options(options)
    .bind()
    .unwrap()
}

/// Wall-clock nanoseconds per run of `f`: the fastest batch mean over up
/// to four batches of `iters / 4` runs (after one warmup). The minimum is
/// a robust estimator of the uncontended cost on shared or single-vCPU
/// machines, where scheduler steal inflates arbitrary batches and a plain
/// mean makes regression gates flaky. Used by the harness binary;
/// Criterion does the serious measuring.
pub fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let batches = if iters >= 4 { 4 } else { 1 };
    let per = (iters / batches).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = std::time::Instant::now();
        for _ in 0..per {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / f64::from(per));
    }
    best
}

/// Formats nanoseconds human-readably.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The attribute names used by benches, pre-interned.
pub fn bench_syms() -> (Symbol, Symbol, Symbol) {
    (sym("Age"), sym("Address"), sym("City"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn people_generator_is_deterministic() {
        let a = people(50);
        let b = people(50);
        let da = a.database(sym("Staff")).unwrap();
        let db_ = b.database(sym("Staff")).unwrap();
        let (da, db_) = (da.read(), db_.read());
        assert_eq!(da.store.len(), 50);
        // Same ages in the same iteration order (oids differ: global
        // counter).
        let person = da.schema.class_by_name(sym("Person")).unwrap();
        let ages = |d: &Database| -> Vec<Value> {
            d.deep_extent(person)
                .iter()
                .map(|&o| d.stored_attr(o, sym("Age")).unwrap().clone())
                .collect()
        };
        assert_eq!(ages(&da), ages(&db_));
    }

    #[test]
    fn staff_view_binds_and_queries() {
        let sys = people(30);
        let view = staff_view(&sys, ViewOptions::default());
        let n = view.query("count((select A from A in Adult))").unwrap();
        assert!(matches!(n, Value::Int(k) if k > 0));
        let f = view.query("count(Family)").unwrap();
        assert!(matches!(f, Value::Int(_)));
    }

    #[test]
    fn market_generator_shapes() {
        let sys = market(8, 3, 5);
        let db = sys.database(sym("Market")).unwrap();
        let db = db.read();
        assert_eq!(db.schema.len(), 8 + 2);
        assert_eq!(db.store.len(), 8 * 5);
    }

    #[test]
    fn payroll_generator_shapes() {
        let rdb = payroll(20, 4);
        assert_eq!(rdb.relation(sym("Emp")).unwrap().len(), 20);
    }
}
